"""Tests for the coherence oracle — including broken protocols it must catch."""

import pytest

from conftest import trace_of
from repro.core.oracle import (
    CoherenceOracle,
    CoherenceViolation,
    validate_coherence,
)
from repro.interconnect.bus import BusOp
from repro.protocols import create_protocol, protocol_names
from repro.protocols.base import AccessOutcome
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.events import Event
from repro.trace import standard_trace, take
from repro.trace.record import AccessType


class TestAllProtocolsAreCoherent:
    @pytest.mark.parametrize("name", sorted(protocol_names()))
    def test_protocol_is_coherent_on_shared_trace(self, name):
        trace = take(standard_trace("POPS", scale=1 / 128), 8000)
        report = validate_coherence(create_protocol(name, 4), trace)
        assert report.copies_checked > 0
        assert report.writes > 0

    def test_report_counts_references(self):
        trace = trace_of([(0, "r", 0), (0, "w", 0), (1, "r", 0)])
        report = validate_coherence(create_protocol("dir0b", 4), trace)
        assert report.references == 3
        assert report.writes == 1


class _ForgetsToInvalidate(Dir0B):
    """Deliberately broken: writes never invalidate the other copies."""

    name = "broken-no-invalidate"

    def _write_hit_clean(self, cache, block):
        self.sharing.set_dirty(block, cache)  # others keep their stale copies
        return AccessOutcome(
            event=Event.WH_BLK_CLEAN, ops=(), invalidation_fanout=0
        )


class _ForgetsToFlush(Dir0B):
    """Deliberately broken: read misses to dirty blocks read stale memory."""

    name = "broken-no-flush"

    def _read(self, cache, block, first_ref):
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        # Bug: ignore any dirty owner and fetch (stale) memory.
        sharing.add_holder(block, cache)
        return AccessOutcome(
            event=Event.RM_BLK_CLEAN, ops=((BusOp.MEM_ACCESS, 1),)
        )


class TestOracleCatchesBugs:
    def test_missing_invalidation_detected(self):
        trace = trace_of(
            [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0)]
        )
        with pytest.raises(CoherenceViolation, match="version"):
            validate_coherence(_ForgetsToInvalidate(4), trace)

    def test_missing_flush_detected(self):
        # Cache 0 dirties the block; cache 1 fetches stale memory and then
        # re-reads it (a hit on the stale copy).
        trace = trace_of(
            [(0, "w", 0), (1, "r", 0), (1, "r", 0)]
        )
        with pytest.raises(CoherenceViolation):
            validate_coherence(_ForgetsToFlush(4), trace)

    def test_final_sweep_catches_resting_stale_copies(self):
        # Even without a re-read, the end-of-run sweep flags the stale copy.
        oracle = CoherenceOracle(_ForgetsToInvalidate(4))
        oracle.access(0, AccessType.READ, 0)
        oracle.access(1, AccessType.READ, 0)
        oracle.access(0, AccessType.WRITE, 0)
        with pytest.raises(CoherenceViolation, match="final sweep"):
            oracle.check_all_copies()


class TestOracleSemantics:
    def test_update_protocol_survivors_are_current(self):
        # Dragon: the other holder's copy is refreshed by the write update.
        trace = trace_of(
            [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0)]
        )
        report = validate_coherence(create_protocol("dragon", 4), trace)
        assert report.copies_checked >= 1

    def test_snarfed_writeback_hands_over_current_data(self):
        trace = trace_of([(0, "w", 0), (1, "r", 0), (1, "r", 0)])
        validate_coherence(create_protocol("dir0b", 4), trace)

    def test_owner_supply_without_memory_update_is_coherent(self):
        # Berkeley keeps memory stale but the owner supplies current data.
        trace = trace_of(
            [(0, "w", 0), (1, "r", 0), (1, "r", 0), (2, "r", 0), (2, "r", 0)]
        )
        validate_coherence(create_protocol("berkeley", 4), trace)

    def test_instructions_are_ignored(self):
        trace = trace_of([(0, "i", 0), (0, "w", 0), (0, "i", 0)])
        report = validate_coherence(create_protocol("wti", 4), trace)
        assert report.references == 3
        assert report.writes == 1
