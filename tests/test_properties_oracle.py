"""Property-based coherence validation: every protocol, random programs.

This is the strongest correctness statement in the suite: for *any* access
sequence hypothesis can construct, every registered protocol delivers
coherent data — no cache ever reads a stale version.  The oracle tracks
actual data movement through the emitted bus operations, so a protocol that
"passes" here genuinely moves current data around, not just plausible
state bits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.oracle import CoherenceOracle
from repro.protocols.registry import PROTOCOLS, create_protocol
from repro.trace.record import AccessType

N_CACHES = 4
N_BLOCKS = 10

accesses = st.tuples(
    st.integers(min_value=0, max_value=N_CACHES - 1),
    st.sampled_from((AccessType.READ, AccessType.WRITE)),
    st.integers(min_value=0, max_value=N_BLOCKS - 1),
)
programs = st.lists(accesses, min_size=1, max_size=150)


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
class TestCoherenceUnderRandomPrograms:
    @given(program=programs)
    @settings(max_examples=40, deadline=None)
    def test_no_stale_read_ever(self, name, program):
        oracle = CoherenceOracle(create_protocol(name, N_CACHES))
        for cache, access, block in program:
            oracle.access(cache, access, block)
        oracle.check_all_copies()

    @given(program=programs)
    @settings(max_examples=20, deadline=None)
    def test_oracle_and_protocol_agree_on_outcomes(self, name, program):
        """The oracle is a transparent wrapper: outcomes pass through."""
        wrapped = CoherenceOracle(create_protocol(name, N_CACHES))
        plain = create_protocol(name, N_CACHES)
        for cache, access, block in program:
            via_oracle = wrapped.access(cache, access, block)
            direct = plain.access(cache, access, block)
            assert via_oracle.event is direct.event
            assert via_oracle.ops == direct.ops
