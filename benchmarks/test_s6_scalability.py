"""Section 6: directory scheme alternatives for scalability.

Four paper claims are regenerated:

1. sequential invalidation costs almost nothing over broadcast
   (DirnNB 0.0499 vs Dir0B 0.0491);
2. Dir1B's cost is linear in the broadcast price with a tiny slope
   (0.0485 + 0.0006*b);
3. limited-pointer sweeps: DiriB trades broadcasts for pointers, DiriNB
   trades misses for pointers;
4. directory storage: the digit code needs 2*log2(n) bits vs n for the
   full map.
"""

import pytest

from conftest import SCALE
from repro.analysis.scalability import (
    broadcast_cost_line,
    directory_storage_bits,
    sweep_dirib,
    sweep_dirinb,
)
from repro.core.simulator import simulate
from repro.protocols import Dir1B
from repro.trace import standard_trace, standard_trace_names


def test_s6_sequential_invalidation(benchmark, comparison, pipe_bus, save_result):
    def measure():
        return (
            comparison.average_cycles("dir0b", pipe_bus),
            comparison.average_cycles("dirnnb", pipe_bus),
        )

    dir0b, dirnnb = benchmark(measure)
    save_result(
        "s6_sequential_invalidation",
        "Sequential invalidation (DirnNB) vs broadcast (Dir0B), pipelined:\n"
        f"  Dir0B  {dir0b:.4f} (paper 0.0491)\n"
        f"  DirnNB {dirnnb:.4f} (paper 0.0499)\n"
        f"  overhead {100 * (dirnnb / dir0b - 1):.1f}% (paper ~1.6%)",
    )
    assert dirnnb >= dir0b * 0.999
    assert dirnnb < dir0b * 1.06  # "performance degradation is small"


def test_s6_dir1b_broadcast_cost_model(benchmark, save_result):
    def run():
        lines = []
        for name in standard_trace_names():
            result = simulate(
                Dir1B(4), standard_trace(name, scale=SCALE), trace_name=name
            )
            lines.append(broadcast_cost_line(result))
        intercept = sum(line.intercept for line in lines) / len(lines)
        slope = sum(line.slope for line in lines) / len(lines)
        return intercept, slope

    intercept, slope = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "s6_dir1b_broadcast_model",
        "Dir1B cost model: cycles(b) = intercept + slope*b\n"
        f"  measured: {intercept:.4f} + {slope:.4f}*b\n"
        "  paper:    0.0485 + 0.0006*b",
    )
    # The broadcast slope is small relative to the base cost: single
    # invalidation covers the common case.  (The paper's slope is 0.0006;
    # our synthetic traces have somewhat more multi-copy invalidation
    # situations, so the slope is larger but still an order of magnitude
    # below the base.)
    assert slope < intercept / 8
    # Even a 16-cycle broadcast stays within ~2x of the base cost.
    assert intercept + 16 * slope < 2.2 * intercept


def test_s6_pointer_sweeps(benchmark, trace_factories, save_result):
    def run():
        with_broadcast = sweep_dirib(trace_factories, pointer_counts=(1, 2, 4))
        without_broadcast = sweep_dirinb(
            trace_factories, pointer_counts=(1, 2, 4)
        )
        return with_broadcast, without_broadcast

    dirib, dirinb = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DiriB / DiriNB pointer sweeps (trace average):"]
    for point in dirib + dirinb:
        lines.append("  " + point.render())
    save_result("s6_pointer_sweeps", "\n".join(lines))

    # DiriB: broadcasts monotonically fall with pointer count; the miss
    # rate is untouched (copies are never restricted).
    broadcasts = [p.broadcasts_per_thousand_refs for p in dirib]
    assert broadcasts == sorted(broadcasts, reverse=True)
    assert len({round(p.data_miss_rate, 6) for p in dirib}) == 1
    # DiriNB: displacements and the miss rate fall as pointers grow —
    # "trades off a slightly increased miss rate for avoiding broadcasts".
    displacements = [p.displacements_per_thousand_refs for p in dirinb]
    assert displacements == sorted(displacements, reverse=True)
    assert dirinb[0].data_miss_rate >= dirinb[-1].data_miss_rate
    # With 4 pointers on a 4-cache system both behave like the full map.
    assert broadcasts[-1] == 0.0
    assert displacements[-1] == 0.0
    assert dirinb[-1].cycles_per_reference == pytest.approx(
        dirib[-1].cycles_per_reference, rel=0.02
    )


def test_s6_directory_storage(benchmark, save_result):
    cache_counts = (4, 16, 64, 256, 1024)
    bits = benchmark(directory_storage_bits, cache_counts)
    header = f"{'Scheme':<20}" + "".join(f"{n:>8}" for n in cache_counts)
    lines = ["Directory bits per main-memory block:", header]
    for scheme, row in bits.items():
        lines.append(f"{scheme:<20}" + "".join(f"{row[n]:>8}" for n in cache_counts))
    save_result("s6_directory_storage", "\n".join(lines))

    # The digit code grows as 2*log2(n)+1; the full map as n+1.
    assert bits["Digit code (coarse)"][1024] == 21
    assert bits["DirnNB (full map)"][1024] == 1025
    # At scale, every limited scheme is far below the full map.
    for scheme in ("Dir1B", "Dir4B", "Dir4NB", "Digit code (coarse)"):
        assert bits[scheme][1024] < bits["DirnNB (full map)"][1024] / 10
