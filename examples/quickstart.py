#!/usr/bin/env python3
"""Quickstart: compare the paper's four coherence schemes in one run.

Simulates the calibrated POPS / THOR / PERO workloads through Dir1NB, WTI,
Dir0B and Dragon, then prints the paper's Table 4 (event frequencies),
Table 5 (cycle breakdown) and the Figure 2 bus-cycle ranges.

Run:  python examples/quickstart.py [scale_denominator]

The optional argument divides the paper's ~3.2M-reference trace lengths
(default 64, i.e. ~50k references per trace, a few seconds of runtime;
use 16 for the calibration-grade runs the benchmarks use).
"""

import sys

from repro import (
    effective_processors,
    figure2,
    nonpipelined_bus,
    pipelined_bus,
    run_standard_comparison,
    table4,
    table5,
)

PAPER = {"dir1nb": 0.3210, "wti": 0.1466, "dir0b": 0.0491, "dragon": 0.0336}


def main() -> None:
    denominator = float(sys.argv[1]) if len(sys.argv) > 1 else 64.0
    print(f"Simulating 3 traces x 4 schemes at 1/{denominator:g} scale ...")
    comparison = run_standard_comparison(scale=1.0 / denominator)

    print()
    print(table4(comparison).render())

    print()
    print(table5(comparison, bus=pipelined_bus()).render())

    print()
    print(figure2(comparison).render())

    print()
    print("Pipelined-bus cycles per reference vs the paper:")
    pipe = pipelined_bus()
    for scheme in comparison.protocols:
        measured = comparison.average_cycles(scheme, pipe)
        print(f"  {scheme:<8} {measured:.4f}   (paper {PAPER[scheme]:.4f})")

    best = min(
        comparison.average_cycles(s, pipe) for s in ("dir0b", "dragon")
    )
    print()
    print(
        "A single 100ns bus with 10-MIPS processors sustains about "
        f"{effective_processors(best):.0f} effective processors at the best "
        "scheme's traffic (the paper estimates ~15 at 0.03 cycles/ref)."
    )
    nonpipe = nonpipelined_bus()
    print(
        "The ordering is the same on the non-pipelined bus: "
        + " < ".join(
            sorted(
                comparison.protocols,
                key=lambda s: comparison.average_cycles(s, nonpipe),
            )
        )
    )


if __name__ == "__main__":
    main()
