"""Builders for the paper's tables (1, 2, 3, 4 and 5).

Each builder returns a small structured object with the table's data plus a
``render()`` method producing the text layout the benchmark harness prints,
so a bench run visually mirrors the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.comparison import ComparisonResult
from ..interconnect.bus import (
    BusCostModel,
    BusTiming,
    Table5Category,
    nonpipelined_bus,
)
from ..trace.stats import TraceStats
from ._defaults import _default_bus

__all__ = [
    "table1",
    "table2",
    "table3",
    "Table4",
    "table4",
    "Table5",
    "table5",
    "EnergyTable",
    "energy_table",
    "TABLE4_ROWS",
]


def table1(timing: BusTiming = BusTiming()) -> Dict[str, int]:
    """Table 1: timing for fundamental bus operations."""
    return timing.rows()


def render_table1(timing: BusTiming = BusTiming()) -> str:
    lines = ["Table 1: Timing for fundamental bus operations", "-" * 46]
    for name, cycles in table1(timing).items():
        lines.append(f"{name:<28} {cycles:>3}")
    return "\n".join(lines)


def table2(
    pipelined: Optional[BusCostModel] = None,
    nonpipelined: Optional[BusCostModel] = None,
) -> Dict[str, Dict[str, float]]:
    """Table 2: per-access-type bus cycle costs for both bus models."""
    pipelined = _default_bus(pipelined)
    nonpipelined = (
        nonpipelined if nonpipelined is not None else nonpipelined_bus()
    )
    rows: Dict[str, Dict[str, float]] = {}
    pipe_rows = pipelined.table2_rows()
    nonpipe_rows = nonpipelined.table2_rows()
    for name in pipe_rows:
        rows[name] = {
            "Pipelined Bus": pipe_rows[name],
            "Non-Pipelined Bus": nonpipe_rows[name],
        }
    return rows


def render_table2() -> str:
    lines = [
        "Table 2: Summary of bus cycle costs",
        f"{'Access type':<24} {'Pipelined':>10} {'Non-Pipelined':>14}",
        "-" * 50,
    ]
    for name, row in table2().items():
        lines.append(
            f"{name:<24} {row['Pipelined Bus']:>10.0f} "
            f"{row['Non-Pipelined Bus']:>14.0f}"
        )
    return "\n".join(lines)


def table3(stats: Sequence[TraceStats]) -> List[Dict[str, float]]:
    """Table 3: trace characteristics (counts in thousands)."""
    return [s.thousands() for s in stats]


#: Table 4's row labels in presentation order.
TABLE4_ROWS = (
    "instr",
    "read",
    "rd-hit",
    "rd-miss(rm)",
    "rm-blk-cln",
    "rm-blk-drty",
    "rm-first-ref",
    "write",
    "wrt-hit(wh)",
    "wh-blk-cln",
    "wh-blk-drty",
    "wh-distrib",
    "wh-local",
    "wrt-miss(wm)",
    "wm-blk-cln",
    "wm-blk-drty",
    "wm-first-ref",
)

#: Which Table 4 rows the paper leaves blank ('-') for each scheme.
_SUPPRESSED_ROWS = {
    "dir1nb": {"wh-blk-cln", "wh-blk-drty", "wh-distrib", "wh-local"},
    "wti": {
        "rm-blk-cln",
        "rm-blk-drty",
        "wh-blk-cln",
        "wh-blk-drty",
        "wh-distrib",
        "wh-local",
        "wm-blk-cln",
        "wm-blk-drty",
    },
    "dir0b": {"wh-distrib", "wh-local"},
    "dragon": {"wh-blk-cln", "wh-blk-drty"},
}


@dataclass(frozen=True)
class Table4:
    """Event frequencies as a percentage of all references (trace average)."""

    schemes: Sequence[str]
    labels: Sequence[str]
    values: Mapping[str, Mapping[str, float]]  # row -> scheme -> percent

    def value(self, row: str, scheme: str) -> float:
        return self.values[row][scheme]

    def render(self) -> str:
        header = f"{'Event':<14}" + "".join(
            f"{label:>10}" for label in self.labels
        )
        lines = [
            "Table 4: Event frequencies (% of all references, trace average)",
            header,
            "-" * len(header),
        ]
        for row in TABLE4_ROWS:
            cells = []
            for scheme in self.schemes:
                if row in _SUPPRESSED_ROWS.get(scheme, set()):
                    cells.append(f"{'-':>10}")
                else:
                    cells.append(f"{self.values[row][scheme]:>10.2f}")
            lines.append(f"{row:<14}" + "".join(cells))
        return "\n".join(lines)


def table4(
    comparison: ComparisonResult, schemes: Optional[Sequence[str]] = None
) -> Table4:
    """Build Table 4 from a comparison run."""
    schemes = tuple(schemes or comparison.protocols)
    values: Dict[str, Dict[str, float]] = {}
    for row in TABLE4_ROWS:
        values[row] = {
            scheme: comparison.average_event_percent(scheme, row)
            for scheme in schemes
        }
    labels = [
        comparison.results[scheme][comparison.traces[0]].protocol_label
        for scheme in schemes
    ]
    return Table4(schemes=schemes, labels=labels, values=values)


#: Table 5's row order.
_TABLE5_ORDER = (
    Table5Category.MEM_ACCESS,
    Table5Category.INVALIDATE,
    Table5Category.WRITE_BACK,
    Table5Category.WT_OR_WUP,
    Table5Category.DIR_ACCESS,
)


@dataclass(frozen=True)
class Table5:
    """Bus-cycle breakdown per reference by operation type (one bus model)."""

    bus: str
    schemes: Sequence[str]
    labels: Sequence[str]
    by_category: Mapping[str, Mapping[Table5Category, float]]

    def cumulative(self, scheme: str) -> float:
        return sum(self.by_category[scheme].values())

    def render(self) -> str:
        header = f"{'Access type':<14}" + "".join(
            f"{label:>10}" for label in self.labels
        )
        lines = [
            f"Table 5: Breakdown of bus cycles per reference ({self.bus} bus)",
            header,
            "-" * len(header),
        ]
        for category in _TABLE5_ORDER:
            cells = []
            for scheme in self.schemes:
                value = self.by_category[scheme][category]
                cells.append(f"{value:>10.4f}" if value > 0 else f"{'-':>10}")
            lines.append(f"{category.value:<14}" + "".join(cells))
        lines.append(
            f"{'cumulative':<14}"
            + "".join(f"{self.cumulative(s):>10.4f}" for s in self.schemes)
        )
        return "\n".join(lines)


def table5(
    comparison: ComparisonResult,
    bus: Optional[BusCostModel] = None,
    schemes: Optional[Sequence[str]] = None,
) -> Table5:
    """Build Table 5 (pipelined bus by default) from a comparison run."""
    bus = _default_bus(bus)
    schemes = tuple(schemes or comparison.protocols)
    by_category = {
        scheme: comparison.average_category_cycles(scheme, bus)
        for scheme in schemes
    }
    labels = [
        comparison.results[scheme][comparison.traces[0]].protocol_label
        for scheme in schemes
    ]
    return Table5(
        bus=bus.name, schemes=schemes, labels=labels, by_category=by_category
    )


@dataclass(frozen=True)
class EnergyTable:
    """Average energy per reference (nJ) per scheme under one bus model.

    Only buses built from a characterization carrying an ``[energy_nj]``
    section can price energy; both bundled models do.
    """

    bus: str
    schemes: Sequence[str]
    labels: Sequence[str]
    nanojoules: Mapping[str, float]  # scheme -> nJ per reference

    def value(self, scheme: str) -> float:
        return self.nanojoules[scheme]

    def render(self) -> str:
        header = f"{'Scheme':<14}{'nJ/ref':>10}"
        lines = [
            f"Energy per reference by scheme ({self.bus} bus)",
            header,
            "-" * len(header),
        ]
        for scheme, label in zip(self.schemes, self.labels):
            lines.append(f"{label:<14}{self.nanojoules[scheme]:>10.4f}")
        return "\n".join(lines)


def energy_table(
    comparison: ComparisonResult,
    bus: Optional[BusCostModel] = None,
    schemes: Optional[Sequence[str]] = None,
) -> EnergyTable:
    """Trace-averaged energy per reference for each scheme.

    Raises :class:`ValueError` when ``bus`` carries no energy axis (e.g. a
    parametric :func:`~repro.interconnect.bus.BusCostModel` built without a
    characterization).
    """
    bus = _default_bus(bus)
    if not bus.has_energy:
        raise ValueError(
            f"bus model {bus.name!r} carries no energy axis; build it from "
            "a characterization with an [energy_nj] section"
        )
    schemes = tuple(schemes or comparison.protocols)
    nanojoules: Dict[str, float] = {}
    for scheme in schemes:
        energy = comparison.average_energy(scheme, bus)
        assert energy is not None  # has_energy checked above
        nanojoules[scheme] = energy
    labels = [
        comparison.results[scheme][comparison.traces[0]].protocol_label
        for scheme in schemes
    ]
    return EnergyTable(
        bus=bus.name, schemes=schemes, labels=labels, nanojoules=nanojoules
    )
