"""Dir0B: the Archibald & Baer two-bit directory with broadcast.

The directory keeps two bits per main-memory block encoding *not cached*,
*clean in exactly one cache*, *clean in an unknown number of caches*, or
*dirty in exactly one cache* — no pointers at all.  Invalidations and
write-back requests are therefore broadcasts, except that the
"clean in exactly one cache" state lets the sole holder write without a
broadcast (the directory check suffices).

State-change specification (shared with DirnNB, DiriB, WTI and Berkeley):
multiple clean copies, a single dirty copy, invalidate on write — so its
event frequencies coincide with all of those (Section 5's observation).

This class doubles as the base of the pointer-bearing directory family:
subclasses override :meth:`_invalidation_ops` (how remote copies are
removed), :meth:`_admit_holder` (what happens when a cache joins the sharer
set) and :meth:`_note_exclusive` (bookkeeping when a writer becomes the sole
dirty holder).
"""

from __future__ import annotations

from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER, bit_count
from ..base import NO_OPS, AccessOutcome, CoherenceProtocol, OpList
from ..events import Event
from ..table import InvalidationSpec, Rule, TransitionTable, compile_rules

__all__ = ["Dir0B"]

_MEM_OV: OpList = ((BusOp.MEM_ACCESS, 1), (BusOp.DIR_CHECK_OVERLAPPED, 1))
_FLUSH_OV: OpList = (
    (BusOp.FLUSH_REQUEST, 1),
    (BusOp.WRITE_BACK, 1),
    (BusOp.DIR_CHECK_OVERLAPPED, 1),
)

#: The Dir0B-family transition function as table rules (matched in order).
#: The whole family shares these — only the :class:`InvalidationSpec`
#: spliced in at ``invalidates_remote`` points differs per scheme.
_FAMILY_RULES = (
    # reads (mirrors _read top to bottom)
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=_FLUSH_OV,
        clear_dirty=True,
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=_MEM_OV,
        mask="add",
    ),
    Rule(write=False, event=Event.RM_UNCACHED, ops=_MEM_OV, mask="add"),
    # writes (mirrors _write / _write_hit_clean / _write_miss)
    Rule(write=True, event=Event.WH_BLK_DIRTY, held=True, dirty="local"),
    Rule(
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        fclass=(1, 2),
        ops=((BusOp.DIR_CHECK, 1),),
        invalidates_remote=True,
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        ops=((BusOp.DIR_CHECK, 1),),
        fanout="F",
        set_dirty=True,
    ),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=(
            (BusOp.FLUSH_REQUEST, 1),
            (BusOp.WRITE_BACK, 1),
            (BusOp.INVALIDATE, 1),
            (BusOp.DIR_CHECK_OVERLAPPED, 1),
        ),
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=_MEM_OV,
        invalidates_remote=True,
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=_MEM_OV,
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
)


class Dir0B(CoherenceProtocol):
    """Two-bit broadcast directory protocol (Archibald & Baer)."""

    name = "dir0b"
    label = "Dir0B"
    kind = "directory"

    # -- subclass hooks -------------------------------------------------------

    def _invalidation_ops(self, fanout: int) -> OpList:
        """Bus ops removing ``fanout`` (>= 1) remote clean copies.

        Dir0B has no pointers, so this is a single broadcast; pointer-bearing
        subclasses (DirnNB, DiriB) send directed messages instead.
        """
        return ((BusOp.BROADCAST_INVALIDATE, 1),)

    def _admit_holder(self, cache: int, block: int, flushed: bool = False) -> OpList:
        """Add ``cache`` to the sharer set of ``block``; return any extra ops.

        ``flushed`` is True when the admission was preceded by a dirty-copy
        flush (so the previous owner already saw a directed request).
        Subclasses with bounded pointer storage override this to update their
        pointer state (DiriB) or displace an existing copy (DiriNB); Yen & Fu
        uses it to maintain the single bits.
        """
        self.sharing.add_holder(block, cache)
        return NO_OPS

    def _note_exclusive(self, cache: int, block: int) -> None:
        """Bookkeeping hook: ``cache`` just became the sole (dirty) holder."""

    def _invalidation_spec(self) -> InvalidationSpec:
        """Table-compilation counterpart of :meth:`_invalidation_ops`.

        Dir0B broadcasts whatever the fan-out, so the directed regime is
        empty (threshold 0).
        """
        return InvalidationSpec(
            threshold=0, broadcast=((BusOp.BROADCAST_INVALIDATE, 1),)
        )

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(
            self.name, _FAMILY_RULES, invalidation=self._invalidation_spec()
        )

    # -- reads ----------------------------------------------------------------

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            self._admit_holder(cache, block)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # Flush the dirty copy to memory; the requester snarfs the data
            # and both caches end up with clean copies.
            sharing.clear_dirty(block)
            ops = (
                (BusOp.FLUSH_REQUEST, 1),
                (BusOp.WRITE_BACK, 1),
                (BusOp.DIR_CHECK_OVERLAPPED, 1),
            ) + self._admit_holder(cache, block, flushed=True)
            return AccessOutcome(event=Event.RM_BLK_DIRTY, ops=ops)
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        ops = (
            (BusOp.MEM_ACCESS, 1),
            (BusOp.DIR_CHECK_OVERLAPPED, 1),
        ) + self._admit_holder(cache, block)
        return AccessOutcome(event=event, ops=ops)

    # -- writes ---------------------------------------------------------------

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            if sharing.is_dirty_in(block, cache):
                return AccessOutcome(event=Event.WH_BLK_DIRTY)
            return self._write_hit_clean(cache, block)
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            self._note_exclusive(cache, block)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        return self._write_miss(cache, block)

    def _write_hit_clean(self, cache: int, block: int) -> AccessOutcome:
        """Write hit to a clean block: ask the directory, invalidate if shared.

        The directory check is a standalone bus operation (it accompanies no
        memory access, so it cannot be overlapped).  The invalidation is
        skipped when the directory state is "clean in exactly one cache".
        """
        sharing = self.sharing
        remote = sharing.remote_holders(block, cache)
        fanout = bit_count(remote)
        ops: OpList = ((BusOp.DIR_CHECK, 1),)
        if remote:
            ops += self._invalidation_ops(fanout)
            sharing.set_only_holder(block, cache)
        sharing.set_dirty(block, cache)
        self._note_exclusive(cache, block)
        return AccessOutcome(
            event=Event.WH_BLK_CLEAN, ops=ops, invalidation_fanout=fanout
        )

    def _write_miss(self, cache: int, block: int) -> AccessOutcome:
        sharing = self.sharing
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # Flush request: the owner writes back (the requester snarfs the
            # data) and its copy is invalidated.
            ops: OpList = (
                (BusOp.FLUSH_REQUEST, 1),
                (BusOp.WRITE_BACK, 1),
                (BusOp.INVALIDATE, 1),
                (BusOp.DIR_CHECK_OVERLAPPED, 1),
            )
            event = Event.WM_BLK_DIRTY
            fanout = None
        else:
            remote = sharing.remote_holders(block, cache)
            fanout = bit_count(remote)
            if remote:
                ops = (
                    (BusOp.MEM_ACCESS, 1),
                    (BusOp.DIR_CHECK_OVERLAPPED, 1),
                ) + self._invalidation_ops(fanout)
                event = Event.WM_BLK_CLEAN
            else:
                ops = ((BusOp.MEM_ACCESS, 1), (BusOp.DIR_CHECK_OVERLAPPED, 1))
                event = Event.WM_UNCACHED
        sharing.purge(block)
        sharing.add_holder(block, cache)
        sharing.set_dirty(block, cache)
        self._note_exclusive(cache, block)
        return AccessOutcome(event=event, ops=ops, invalidation_fanout=fanout)

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """Two state bits regardless of the number of caches."""
        return 2
