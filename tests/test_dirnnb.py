"""Unit tests for DirnNB (Censier & Feautrier full map, sequential invalidates)."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.directory.dirnnb import DirnNB
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return DirnNB(4)


class TestSequentialInvalidation:
    def test_one_message_per_remote_copy_on_write_hit(self, proto):
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5), (3, "r", 5), (0, "w", 5)]
        )
        hit = outcomes[4]
        assert hit.event is Event.WH_BLK_CLEAN
        assert dict(hit.ops) == {BusOp.DIR_CHECK: 1, BusOp.INVALIDATE: 3}
        assert hit.invalidation_fanout == 3

    def test_no_broadcasts_ever(self, proto):
        rng = random.Random(9)
        for _ in range(3000):
            outcome = proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
            assert outcome.op_count(BusOp.BROADCAST_INVALIDATE) == 0

    def test_sole_copy_write_hit_needs_no_invalidation(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        assert dict(outcomes[1].ops) == {BusOp.DIR_CHECK: 1}

    def test_write_miss_sends_directed_invalidates(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (2, "r", 5), (0, "w", 5)])
        miss = outcomes[2]
        assert miss.op_count(BusOp.INVALIDATE) == 2


class TestEquivalenceWithDir0B:
    """Same state-change specification: identical events, different ops."""

    def test_event_sequences_match_dir0b(self):
        rng = random.Random(21)
        ops = [
            (
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(40),
            )
            for _ in range(5000)
        ]
        a, b = DirnNB(4), Dir0B(4)
        for cache, access, block in ops:
            assert a.access(cache, access, block).event is b.access(
                cache, access, block
            ).event

    def test_fanout_distributions_match_dir0b(self):
        rng = random.Random(22)
        a, b = DirnNB(4), Dir0B(4)
        fanouts_a, fanouts_b = [], []
        for _ in range(5000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(40)
            fa = a.access(cache, access, block).invalidation_fanout
            fb = b.access(cache, access, block).invalidation_fanout
            fanouts_a.append(fa)
            fanouts_b.append(fb)
        assert fanouts_a == fanouts_b


class TestStorage:
    def test_full_map_grows_linearly(self):
        assert DirnNB.directory_bits_per_block(4) == 5
        assert DirnNB.directory_bits_per_block(256) == 257
