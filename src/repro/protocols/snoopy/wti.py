"""Write-Through-With-Invalidate (WTI), the simple snoopy scheme.

Every write is transmitted to main memory (write-through), and every other
cache snooping on the bus invalidates its copy of the written block
(Section 3).  Memory is therefore never stale: all misses are serviced by
memory, dirty blocks do not exist, and invalidations ride for free on the
write-through bus transaction.

WTI shares its state-change specification with Dir0B — multiple clean
copies, invalidate on write — which is why the paper's Table 4 shows
identical event frequencies for the two; the enormous cost difference
(roughly 3x) is pure write-through traffic.  The paper calls it "one of the
lowest-performance snooping cache consistency protocols".

Writes allocate: after the write-through, the writer holds the (clean,
memory-consistent) block.
"""

from __future__ import annotations

from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import bit_count
from ..base import AccessOutcome, CoherenceProtocol
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["WTI"]

_WT_OP = ((BusOp.WRITE_THROUGH, 1),)

_WTI_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=True,
        event=Event.WRITE_HIT,
        held=True,
        ops=_WT_OP,
        fanout="F",
        mask="only",
    ),
    Rule(write=True, event=Event.WM_FIRST_REF, first=True, ops=_WT_OP, mask="add"),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),) + _WT_OP,
        fanout="F",
        mask="only",
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),) + _WT_OP,
        fanout="F",
        mask="add",
    ),
)


class WTI(CoherenceProtocol):
    """Write-through snoopy protocol with invalidation."""

    name = "wti"
    label = "WTI"
    kind = "snoopy"

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        sharing.add_holder(block, cache)
        return AccessOutcome(event=event, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        remote = sharing.remote_holders(block, cache)
        if sharing.is_held(block, cache):
            # Snoopers invalidate for free as the write-through goes by.
            if remote:
                sharing.set_only_holder(block, cache)
            return AccessOutcome(
                event=Event.WRITE_HIT,
                ops=_WT_OP,
                invalidation_fanout=bit_count(remote),
            )
        if first_ref:
            # The block fetch is excluded (first reference), but the written
            # word still goes through to memory — that is WTI policy cost,
            # not a coherence miss.
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF, ops=_WT_OP)
        event = Event.WM_BLK_CLEAN if remote else Event.WM_UNCACHED
        if remote:
            sharing.set_only_holder(block, cache)
        else:
            sharing.add_holder(block, cache)
        return AccessOutcome(
            event=event,
            ops=((BusOp.MEM_ACCESS, 1), (BusOp.WRITE_THROUGH, 1)),
            invalidation_fanout=bit_count(remote),
        )

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _WTI_RULES)
