"""Table 1: timing for fundamental bus operations."""

from repro.analysis.tables import render_table1, table1
from repro.interconnect import BusTiming


def test_table1_bus_timing(benchmark, save_result):
    rows = benchmark(table1, BusTiming())
    assert rows == {
        "Transfer 1 data word": 1,
        "Invalidate": 1,
        "Wait for Directory": 2,
        "Wait for Memory": 2,
        "Wait for Cache": 1,
    }
    save_result("table1_bus_timing", render_table1())
