"""Directory-based coherence protocols (the Dir_iX family and relatives)."""

from .coarse import DigitCode, DirCoarse
from .dir0b import Dir0B
from .dir1nb import Dir1NB
from .dirib import Dir1B, DiriB
from .dirinb import EVICTION_POLICIES, DiriNB
from .dirnnb import DirnNB
from .tang import Tang
from .yenfu import YenFu

__all__ = [
    "DigitCode",
    "DirCoarse",
    "Dir0B",
    "Dir1NB",
    "Dir1B",
    "DiriB",
    "EVICTION_POLICIES",
    "DiriNB",
    "DirnNB",
    "Tang",
    "YenFu",
]
