"""Transition-table compilation: protocol rules as integer lookup arrays.

The fast backend (:mod:`repro.core.fastsim`) does not call a protocol's
``_read``/``_write`` methods per reference.  Instead, each compilable
protocol describes its transition function *declaratively* as an ordered
list of :class:`Rule` objects — a direct transcription of the ``if``/``elif``
ladder in its ``_read``/``_write`` code — and this module expands the rules
into a 512-entry dispatch table indexed by a **condition code** computed
from per-block state:

========  ==========================================================
bit 0     the reference is a write
bit 1     globally first reference to the block (never seen before)
bit 2     the requester already holds the block
bits 3-4  dirty state: 0 = clean, 1 = dirty locally, 2 = dirty remote
bits 5-6  remote-copy class ``fclass``: 0 = no remote copies,
          1 = ``1 <= F <= threshold``, 2 = ``F > threshold``
bits 7-8  aux annotation: 0 = none, 1 = self, 2 = another cache
========  ==========================================================

``F`` is the remote holder count.  The *threshold* splits invalidation
situations into the directed regime and the broadcast regime, which is what
collapses the whole Dir0B/DirnNB/DiriB family into one rule set plus an
:class:`InvalidationSpec`.  The *aux* axis carries the one per-block
annotation some protocols keep beyond the sharing table: Yen & Fu's single
bit, Write-Once's reserved state, Illinois's exclusive state.

Each dispatch entry is a :class:`Row`: the Table 4 event, constant bus ops,
bus ops linear in ``F``, whether the reference populates the Figure 1
fan-out histogram, and the state-update actions (all drawn from a fixed
vocabulary the kernel executes in a fixed order).  Rows are pure data, so
the kernel can tally *hits per row* and reconstruct bit-identical
:class:`~repro.core.counters.SimulationCounters` at flush time — op
multisets, not op sequences, are what the counters observe.

Conditions not matched by any rule stay unmapped; the kernel raises
:class:`TableError` if a trace ever reaches one, which the differential
test suite treats as a failure.  Protocols whose state does not fit this
vocabulary (per-block admission order, coarse digit codes, per-cache decay
counters) simply do not compile — ``compile_table()`` returns ``None`` and
the fast backend falls back to stepping the reference pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..interconnect.bus import BusOp
from .base import NO_OPS, OpList
from .events import Event

__all__ = [
    "Rule",
    "Row",
    "InvalidationSpec",
    "TransitionTable",
    "TableError",
    "compile_rules",
    "CODE_SPACE",
]

#: Size of the condition-code space (9 bits, see module docstring).
CODE_SPACE = 512

# Condition-code bit layout.
_W = 1  # write
_FIRST = 2
_HELD = 4
_DIRTY_LOCAL = 8
_DIRTY_REMOTE = 16
_FCLASS1 = 32
_FCLASS2 = 64
_AUX_SELF = 128
_AUX_OTHER = 256

# State-update action flags (executed by the kernel in this order).
ACT_CLEAR_DIRTY = 1
ACT_MASK_ADD = 2
ACT_MASK_ONLY = 4
ACT_SET_DIRTY = 8

AUX_KEEP = 0
AUX_CLEAR = 1
AUX_SELF = 2

_DIRTY_VALUES = ("none", "local", "remote")
_AUX_VALUES = ("none", "self", "other")
_MASK_ACTIONS = {"keep": 0, "add": ACT_MASK_ADD, "only": ACT_MASK_ONLY}
_AUX_ACTIONS = {"keep": AUX_KEEP, "clear": AUX_CLEAR, "self": AUX_SELF}


class TableError(RuntimeError):
    """A compiled table was driven into a condition no rule covers."""


@dataclass(frozen=True)
class InvalidationSpec:
    """How a directory-family protocol removes ``F`` remote clean copies.

    ``threshold`` bounds the directed regime: invalidations with
    ``F <= threshold`` cost ``directed`` per copy, larger ones cost the
    constant ``broadcast`` ops.  ``None`` means the directed regime covers
    every ``F`` (a full-map directory); ``0`` means everything broadcasts.
    """

    threshold: Optional[int]
    directed: OpList = NO_OPS  # per remote copy (count = coeff * F)
    broadcast: OpList = NO_OPS  # constant ops for the F > threshold regime


@dataclass(frozen=True)
class Rule:
    """One transition rule: a condition pattern plus its outcome and actions.

    ``None`` (or omitted) condition fields are wildcards.  Rules are matched
    in order, first match wins — transcribe the protocol's ``if``/``elif``
    ladder top to bottom and the semantics carry over.
    """

    write: bool
    event: Event
    first: Optional[bool] = None
    held: Optional[bool] = None
    dirty: Union[str, Tuple[str, ...], None] = None
    fclass: Union[int, Tuple[int, ...], None] = None
    aux: Union[str, Tuple[str, ...], None] = None
    ops: OpList = NO_OPS
    per_remote: OpList = NO_OPS  # (op, coeff): count = coeff * F
    #: splice in the table's :class:`InvalidationSpec` (directed/broadcast)
    invalidates_remote: bool = False
    #: record Figure 1 fan-out: ``None`` = no, ``"F"`` = the remote count
    fanout: Optional[str] = None
    clear_dirty: bool = False
    mask: str = "keep"
    set_dirty: bool = False
    aux_action: str = "keep"

    def __post_init__(self) -> None:
        if self.mask not in _MASK_ACTIONS:
            raise ValueError(f"bad mask action {self.mask!r}")
        if self.aux_action not in _AUX_ACTIONS:
            raise ValueError(f"bad aux action {self.aux_action!r}")
        if self.fanout not in (None, "F"):
            raise ValueError(f"bad fanout spec {self.fanout!r}")

    def _matches(
        self, first: bool, held: bool, dirty: str, fclass: int, aux: str
    ) -> bool:
        if self.first is not None and self.first != first:
            return False
        if self.held is not None and self.held != held:
            return False
        for want, have in (
            (self.dirty, dirty),
            (self.aux, aux),
            (self.fclass, fclass),
        ):
            if want is None:
                continue
            if isinstance(want, tuple):
                if have not in want:
                    return False
            elif want != have:
                return False
        return True


@dataclass(frozen=True)
class Row:
    """One expanded dispatch entry (pure data; the kernel never branches on
    protocol identity)."""

    event: Event
    base_ops: OpList  # constant (op, count) pairs
    linear_ops: OpList  # (op, coeff) pairs, count = coeff * F
    fclass: int  # remote-copy class of the conditions mapping here
    fanout: bool  # record invalidation fan-out (F; constant 0 iff fclass 0)
    actions: int  # ACT_* flags
    aux_action: int  # AUX_*
    used_bus: bool  # compile-time constant; validated at expansion

    @property
    def needs_f(self) -> bool:
        """Whether the kernel must accumulate ``F`` for this row."""
        return self.fclass > 0 and (bool(self.linear_ops) or self.fanout)


@dataclass
class TransitionTable:
    """A protocol's compiled transition function.

    ``dispatch[code]`` is an index into ``rows`` or ``None`` for conditions
    the protocol can never reach (hitting one raises :class:`TableError`).
    """

    protocol_name: str
    threshold: Optional[int]  # None = no broadcast class (directed covers all F)
    has_aux: bool
    rows: List[Row] = field(default_factory=list)
    dispatch: List[Optional[int]] = field(default_factory=list)


def _valid_condition(
    first: bool,
    held: bool,
    dirty: str,
    fclass: int,
    aux: str,
    has_aux: bool,
    threshold: Optional[int],
) -> bool:
    """Whether the kernel's condition encoder can ever produce this combo."""
    if first:
        # A never-seen block has no holders, no owner, no annotations.
        return not held and dirty == "none" and fclass == 0 and aux == "none"
    if dirty == "local" and not held:
        return False  # the owner is always a holder
    if dirty == "remote" and fclass == 0:
        return False  # a remote owner is a remote holder
    if aux != "none" and not has_aux:
        return False
    if fclass == 1 and threshold == 0:
        return False  # 1 <= F <= 0 is empty
    if fclass == 2 and threshold is None:
        return False  # directed regime covers every F
    return True


def _encode(first: bool, held: bool, dirty: str, fclass: int, aux: str, write: bool) -> int:
    code = _W if write else 0
    if first:
        code |= _FIRST
    if held:
        code |= _HELD
    code |= (_DIRTY_LOCAL, _DIRTY_REMOTE)[_DIRTY_VALUES.index(dirty) - 1] if dirty != "none" else 0
    if fclass == 1:
        code |= _FCLASS1
    elif fclass == 2:
        code |= _FCLASS2
    if aux == "self":
        code |= _AUX_SELF
    elif aux == "other":
        code |= _AUX_OTHER
    return code


def _overlapped_only(ops: Sequence[Tuple[BusOp, int]]) -> bool:
    return all(op is BusOp.DIR_CHECK_OVERLAPPED or count <= 0 for op, count in ops)


def compile_rules(
    protocol_name: str,
    rules: Sequence[Rule],
    *,
    invalidation: Optional[InvalidationSpec] = None,
    has_aux: bool = False,
) -> TransitionTable:
    """Expand an ordered rule list into a dispatch table.

    Every encoder-reachable condition is matched against the rules in order;
    the first match supplies the row.  Conditions no rule matches stay
    unmapped (the kernel faults if a trace reaches one — by construction
    that means the transcription missed a protocol path).
    """
    threshold = invalidation.threshold if invalidation is not None else None
    table = TransitionTable(
        protocol_name=protocol_name,
        threshold=threshold,
        has_aux=has_aux,
        dispatch=[None] * CODE_SPACE,
    )
    row_index = {}
    for write in (False, True):
        matching = [rule for rule in rules if rule.write is write]
        for first in (False, True):
            for held in (False, True):
                for dirty in _DIRTY_VALUES:
                    for fclass in (0, 1, 2):
                        for aux in _AUX_VALUES:
                            if not _valid_condition(
                                first, held, dirty, fclass, aux, has_aux, threshold
                            ):
                                continue
                            rule = next(
                                (
                                    r
                                    for r in matching
                                    if r._matches(first, held, dirty, fclass, aux)
                                ),
                                None,
                            )
                            if rule is None:
                                continue
                            row = _expand(rule, fclass, invalidation)
                            key = row
                            index = row_index.get(key)
                            if index is None:
                                index = len(table.rows)
                                table.rows.append(row)
                                row_index[key] = index
                            code = _encode(first, held, dirty, fclass, aux, write)
                            table.dispatch[code] = index
    return table


def _expand(rule: Rule, fclass: int, invalidation: Optional[InvalidationSpec]) -> Row:
    base = rule.ops
    linear = rule.per_remote
    if rule.invalidates_remote and fclass > 0:
        if invalidation is None:
            raise ValueError(
                f"rule for {rule.event} invalidates remote copies but the "
                "table has no InvalidationSpec"
            )
        if fclass == 1:
            linear = linear + invalidation.directed
        else:
            base = base + invalidation.broadcast
    actions = _MASK_ACTIONS[rule.mask]
    if rule.clear_dirty:
        actions |= ACT_CLEAR_DIRTY
    if rule.set_dirty:
        actions |= ACT_SET_DIRTY
    # used_bus is compile-time constant: linear ops contribute only when
    # F >= 1, which is exactly fclass >= 1.
    used_bus = not _overlapped_only(base) or (
        fclass > 0 and not _overlapped_only(linear)
    )
    return Row(
        event=rule.event,
        base_ops=base,
        linear_ops=linear,
        fclass=fclass,
        fanout=rule.fanout == "F",
        actions=actions,
        aux_action=_AUX_ACTIONS[rule.aux_action],
        used_bus=used_bus,
    )
