"""The trace-driven multiprocessor simulator (pipeline front-end).

One simulation run feeds every record of a multiprocessor trace through a
coherence protocol's state machine, classifying references into Table 4
events and tallying the primitive bus operations they cost.  Following the
paper's method (Section 4.1), hardware costs are *not* applied here — the
returned :class:`SimulationResult` carries raw counts, and any number of bus
models can be priced against it afterwards.

Sharing is classified at **process** level by default (one cache per
process, Section 4.4); pass ``SharingModel.PROCESSOR`` to key caches by CPU
instead.  Caches are infinite (the paper's methodology) unless a
``geometry`` is given, in which case a set-associative LRU stage injects
displacements (see :mod:`repro.core.pipeline`, which owns the single
reference-feed loop behind both entry points here).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..memory.cache import CacheGeometry
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel
from .counters import SimulationCounters
from .pipeline import ReferencePipeline, SimulationResult

if TYPE_CHECKING:
    from ..obs.probe import ReferenceProbe

__all__ = [
    "BACKENDS",
    "SimulationResult",
    "make_pipeline",
    "simulate",
    "simulate_chunks",
]

#: Selectable simulation backends (the ``--backend`` knob).
BACKENDS = ("reference", "fast")


def make_pipeline(
    backend: str,
    protocol: CoherenceProtocol,
    **kwargs,
):
    """Construct the pipeline implementing ``backend``.

    ``"reference"`` is the canonical per-reference loop
    (:class:`~repro.core.pipeline.ReferencePipeline`); ``"fast"`` is the
    table-driven backend (:class:`~repro.core.fastsim.FastPipeline`), which
    produces bit-identical counters and falls back to reference fidelity for
    configurations the table kernel cannot express.  Both accept the same
    keyword arguments.
    """
    if backend == "reference":
        return ReferencePipeline(protocol, **kwargs)
    if backend == "fast":
        from .fastsim import FastPipeline  # deferred: optional-numpy probing

        return FastPipeline(protocol, **kwargs)
    raise ValueError(
        f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
    )


def simulate(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
    check_invariants_every: int = 0,
    geometry: Optional[CacheGeometry] = None,
    probe: Optional["ReferenceProbe"] = None,
    backend: str = "reference",
) -> SimulationResult:
    """Run ``protocol`` over ``trace`` and return the tallied result.

    Args:
        protocol: a freshly constructed protocol (its cache count bounds the
            number of distinct sharing units the trace may contain).
        trace: any iterable of trace records.
        trace_name: label carried into the result.
        block_size: bytes per block (the paper uses 16 throughout).
        sharing_model: classify sharing by process (paper default) or by
            processor.
        check_invariants_every: if positive, assert the single-writer
            invariant on the sharing table every N references (slow; meant
            for tests).
        geometry: finite-cache geometry; ``None`` (default) simulates the
            paper's infinite caches.
        probe: per-reference observer streaming protocol events to a sink
            (see :mod:`repro.obs.probe`); never affects the counted result.
        backend: ``"reference"`` (default) or ``"fast"`` — the table-driven
            backend, bit-identical on counters (see
            :mod:`repro.core.fastsim` and docs/performance.md).

    Raises:
        ValueError: if the trace contains more sharing units than the
            protocol has caches, or the backend name is unknown.
    """
    pipeline = make_pipeline(
        backend,
        protocol,
        geometry=geometry,
        block_size=block_size,
        sharing_model=sharing_model,
        check_invariants_every=check_invariants_every,
        probe=probe,
    )
    return pipeline.run(trace, trace_name)


def simulate_chunks(
    protocol: CoherenceProtocol,
    chunks: Iterable[Iterable[TraceRecord]],
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
    check_invariants_every: int = 0,
    chunk_done: Optional[Callable[[SimulationCounters], None]] = None,
    geometry: Optional[CacheGeometry] = None,
    probe: Optional["ReferenceProbe"] = None,
    backend: str = "reference",
) -> SimulationResult:
    """Simulate a trace supplied as consecutive chunks, merging exactly.

    The sharding invariant: chunk boundaries affect only how *counts* are
    accumulated, never the pipeline's state.  Pipeline state (protocol,
    sharing-unit registry, and any finite-geometry residency) is threaded
    through the chunks in order, each chunk tallies into a fresh
    :class:`SimulationCounters`, and the per-chunk counters are merged — so
    the result is bit-identical to one :func:`simulate` over the
    concatenated trace, for infinite and finite geometries alike.
    ``chunk_done``, when given, receives each chunk's own counters as it
    completes (checkpoint and progress hook for the runner).  ``backend``
    selects the engine, exactly as in :func:`simulate` — the sharding
    invariant holds for both.
    """
    pipeline = make_pipeline(
        backend,
        protocol,
        geometry=geometry,
        block_size=block_size,
        sharing_model=sharing_model,
        check_invariants_every=check_invariants_every,
        probe=probe,
    )
    return pipeline.run_chunks(chunks, trace_name, chunk_done)
