"""Shared test fixtures and helpers."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import pytest

from repro.protocols.base import AccessOutcome, CoherenceProtocol
from repro.trace.record import AccessType, TraceRecord

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAS_NUMPY = False


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots from the current simulation "
        "output instead of comparing against them",
    )


def pytest_collection_modifyitems(config, items) -> None:
    """Skip ``requires_numpy``-marked tests when the optional extra is absent."""
    if HAS_NUMPY:
        return
    skip = pytest.mark.skip(reason="numpy not installed (pip install repro[fast])")
    for item in items:
        if "requires_numpy" in item.keywords:
            item.add_marker(skip)


#: A compact op spec: (cache, "r"/"w"/"i", block)
OpSpec = Tuple[int, str, int]

_ACCESS_OF = {"r": AccessType.READ, "w": AccessType.WRITE, "i": AccessType.INSTR}


def run_ops(
    protocol: CoherenceProtocol, ops: Iterable[OpSpec]
) -> List[AccessOutcome]:
    """Feed (cache, kind, block) tuples through a protocol."""
    return [
        protocol.access(cache, _ACCESS_OF[kind], block) for cache, kind, block in ops
    ]


def record(
    cpu: int = 0,
    pid: int = None,
    kind: str = "r",
    address: int = 0,
    spin: bool = False,
    os: bool = False,
) -> TraceRecord:
    """Terse TraceRecord builder (pid defaults to cpu)."""
    return TraceRecord(
        cpu=cpu,
        pid=cpu if pid is None else pid,
        access=_ACCESS_OF[kind],
        address=address,
        is_lock_spin=spin,
        is_os=os,
    )


def trace_of(specs: Sequence[Tuple]) -> List[TraceRecord]:
    """Build a trace from (cpu, kind, address) or (cpu, kind, address, pid)."""
    records = []
    for spec in specs:
        cpu, kind, address = spec[0], spec[1], spec[2]
        pid = spec[3] if len(spec) > 3 else cpu
        records.append(record(cpu=cpu, pid=pid, kind=kind, address=address))
    return records


@pytest.fixture
def tiny_trace() -> List[TraceRecord]:
    """A hand-written 4-processor trace exercising sharing patterns.

    Block 0 is read-shared by everyone; block 1 is written by cpu 0 then
    read by cpu 1 (dirty supply); block 2 is private to cpu 2; block 3 is a
    lock-like word with spins.
    """
    blk = 16  # block size: addresses 0, 16, 32, 48 are blocks 0..3
    return [
        record(0, kind="i", address=1000),
        record(0, kind="r", address=0 * blk),
        record(1, kind="r", address=0 * blk),
        record(2, kind="r", address=0 * blk),
        record(3, kind="r", address=0 * blk),
        record(0, kind="w", address=1 * blk),
        record(1, kind="r", address=1 * blk),
        record(2, kind="r", address=2 * blk),
        record(2, kind="w", address=2 * blk),
        record(3, kind="r", address=3 * blk, spin=True),
        record(3, kind="r", address=3 * blk, spin=True),
        record(0, kind="w", address=0 * blk),
        record(1, kind="r", address=0 * blk),
    ]
