"""Section 5.1: sensitivity to fixed per-transaction overheads.

Paper lines: Dragon 0.0336 + 0.0206*q, Dir0B 0.0491 + 0.0114*q; the gap
shrinks from 46% at q=0 to 12% at q=1.
"""

from repro.analysis.sensitivity import overhead_lines, relative_gap


def test_s51_q_sensitivity(benchmark, comparison, save_result):
    lines = benchmark(overhead_lines, comparison)
    gap0 = relative_gap(lines, q=0)
    gap1 = relative_gap(lines, q=1)
    rendered = [
        "Section 5.1: cycles(q) = base + transactions/ref * q",
        f"  {lines['dragon'].render()}  (paper: 0.0336 + 0.0206*q)",
        f"  {lines['dir0b'].render()}  (paper: 0.0491 + 0.0114*q)",
        f"  Dir0B over Dragon at q=0: {gap0:5.1f}%  (paper 46%)",
        f"  Dir0B over Dragon at q=1: {gap1:5.1f}%  (paper 12%)",
    ]
    save_result("s51_q_sensitivity", "\n".join(rendered))

    # Dragon issues more transactions than Dir0B.
    assert (
        lines["dragon"].transactions_per_ref > lines["dir0b"].transactions_per_ref
    )
    # The gap shrinks substantially once q is charged.
    assert gap1 < gap0
    assert gap1 < 0.65 * gap0
