"""Job lifecycle behind the sweep service: queue, dedupe, run, reap.

The manager is deliberately asyncio-free — plain threads, a bounded
:class:`queue.Queue` and one ``multiprocessing`` child per running sweep —
so every policy here (rate limits, backpressure, cancellation, drain)
unit-tests without an event loop.  The HTTP layer in
:mod:`repro.service.http` is a thin translation of the exceptions raised
by :meth:`JobManager.submit` into status codes.

Submission pipeline, in order::

    drain check          -> ServiceDraining   (HTTP 503)
    token bucket         -> RateLimited       (HTTP 429 + Retry-After)
    schema validation    -> RequestError      (HTTP 422)
    coalesce: same sweep_key already queued/running -> that job, no new work
    dedupe: every cell already in the ResultCache   -> run inline, zero sims
    bounded queue        -> QueueFull         (HTTP 503)

The dedupe step is the service's core economy: a grid whose every cell
(full key, or re-priceable base key) is already on disk never touches the
worker queue — it replays through ``run_sweep`` inline against the
service's shared cache and registry, so the ``cache.hit`` counters land
in ``GET /metrics`` and the submitter gets a finished job in one round
trip.  Everything else runs in a child process: ``run_sweep`` writes the
job's own status snapshot/journal/spans under ``jobs/<id>/`` (the PR 7
telemetry substrate, unchanged), the child ships its metrics snapshot
back over a pipe, and the parent folds it into the service registry via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` — one scrape
endpoint sees every sweep, however it executed.  A child process also
makes cancellation honest: ``terminate()`` actually stops a sweep
mid-flight, which no amount of thread flagging can.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..obs.metrics import MetricsRegistry, set_registry
from ..obs.telemetry import SpanRecorder, read_status, write_status
from ..resilience.journal import SweepJournal
from ..runner.cache import ResultCache
from ..runner.sweep import run_sweep
from .schema import SweepRequest, parse_request, report_payload

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "QueueFull",
    "RateLimited",
    "ServiceDraining",
    "TokenBucket",
]

#: Default cap on queued-but-not-running jobs.
DEFAULT_QUEUE_LIMIT = 16

#: Default seconds a terminal job's record (and directory) is kept.
DEFAULT_JOB_TTL = 3600.0


class JobState:
    """The job lifecycle's states (plain strings — they go over the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({FINISHED, FAILED, CANCELLED})


class RateLimited(Exception):
    """The client's token bucket is empty; retry after ``retry_after``."""

    def __init__(self, retry_after: float) -> None:
        self.retry_after = max(retry_after, 0.001)
        super().__init__(f"rate limited; retry in {self.retry_after:.2f}s")


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 503)."""


class ServiceDraining(Exception):
    """The service is shutting down and no longer accepts work (HTTP 503)."""


class TokenBucket:
    """Per-client token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The clock is injectable so tests can exhaust a bucket deterministically
    (``rate=0`` never refills).  ``rate=None`` disables limiting entirely.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: int,
        clock=time.monotonic,
    ) -> None:
        if rate is not None and rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def take(self) -> None:
        """Consume one token or raise :class:`RateLimited`."""
        if self.rate is None:
            return
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            if self.rate == 0:
                raise RateLimited(retry_after=60.0)
            raise RateLimited(retry_after=(1.0 - self._tokens) / self.rate)


@dataclass
class Job:
    """One submitted sweep and everything known about it."""

    job_id: str
    request: SweepRequest
    sweep_key: str
    directory: Path
    client: str
    submitted_at: float
    state: str = JobState.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: True when every cell was already cached and the job ran inline
    deduped: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )
    process: Optional[multiprocessing.process.BaseProcess] = field(
        default=None, repr=False
    )

    @property
    def status_path(self) -> Path:
        return self.directory / "status.json"

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    @property
    def result_path(self) -> Path:
        return self.directory / "result.json"

    @property
    def spans_path(self) -> Path:
        return self.directory / "spans.json"

    def snapshot(self) -> dict:
        """The job as JSON: manager-side lifecycle + the sweep's own status.

        The sweep's heartbeat snapshot (written by ``run_sweep`` inside the
        child) carries cell progress; the manager's record is authoritative
        for lifecycle state, since the child cannot observe its own
        termination.
        """
        with self.lock:
            payload: dict = {
                "id": self.job_id,
                "state": self.state,
                "sweep_key": self.sweep_key,
                "cells": len(self.request.specs),
                "deduped": self.deduped,
                "client": self.client,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
            }
            if self.error is not None:
                payload["error"] = self.error
        sweep_status = read_status(self.status_path)
        if sweep_status is not None:
            payload["sweep"] = sweep_status
        return payload


def _job_process_main(
    conn,
    specs,
    options,
    cache_dir: str,
    job_dir: str,
) -> None:
    """Child-process entry: run one sweep with the full telemetry substrate.

    Builds a fresh registry/cache/journal/recorder (fork inherits the
    parent's — sharing them across the process boundary would double
    count), runs the sweep with its status snapshot and journal under the
    job directory, writes ``result.json`` + ``spans.json`` atomically, and
    ships ``{"ok", "metrics", "error"?}`` back over the pipe so the parent
    can fold this sweep into the service-wide registry.
    """
    job_path = Path(job_dir)
    registry = MetricsRegistry()
    set_registry(registry)
    cache = ResultCache(Path(cache_dir), registry=registry)
    journal = SweepJournal(job_path / "journal.jsonl")
    recorder = SpanRecorder()
    outcome: dict = {"ok": False, "metrics": {}}
    try:
        report = run_sweep(
            specs,
            jobs=options.jobs,
            cache=cache,
            registry=registry,
            retry=options.retries,
            cell_timeout=options.cell_timeout,
            keep_going=options.keep_going,
            journal=journal,
            telemetry=recorder,
            status_path=job_path / "status.json",
        )
        payload = report_payload(report)
        tmp = job_path / "result.json.tmp"
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, job_path / "result.json")
        recorder.write_chrome_trace(job_path / "spans.json")
        outcome["ok"] = True
    except Exception as error:  # ships the failure, never a traceback dump
        outcome["error"] = f"{type(error).__name__}: {error}"
    outcome["metrics"] = registry.as_dict()
    try:
        conn.send(outcome)
    finally:
        conn.close()


class JobManager:
    """Owns the job table, the worker pool and the shared result cache.

    ``start_gate``, when given, is a :class:`threading.Event` every worker
    waits on after marking its job RUNNING and before launching the sweep
    process — a test seam that freezes the pipeline in a known state so
    queue-full 503s and queued-job cancellation are deterministic.
    """

    def __init__(
        self,
        root: Path,
        workers: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_cells: int = 4096,
        max_jobs: int = 4,
        rate_per_sec: Optional[float] = None,
        burst: int = 10,
        job_ttl: float = DEFAULT_JOB_TTL,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        start_gate: Optional[threading.Event] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = ResultCache(self.root / "cache", registry=self.registry)
        self.max_cells = max_cells
        self.max_jobs = max_jobs
        self.job_ttl = job_ttl
        self._rate_per_sec = rate_per_sec
        self._burst = burst
        self._clock = clock
        self._start_gate = start_gate
        self._jobs: Dict[str, Job] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=queue_limit
        )
        self._draining = False
        self._mp = multiprocessing.get_context()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ------------------------------------------------------------

    def submit(self, payload: object, client: str = "anonymous") -> Job:
        """Take one request through the full admission pipeline.

        Raises :class:`ServiceDraining`, :class:`RateLimited`,
        :class:`~repro.service.schema.RequestError` or :class:`QueueFull`;
        otherwise returns the job — possibly an existing one (coalesced on
        identical grids) or an already-finished one (fully cache-covered,
        ran inline).
        """
        if self._draining:
            raise ServiceDraining("service is draining; not accepting sweeps")
        self._bucket_for(client).take()
        request = parse_request(
            payload, max_cells=self.max_cells, max_jobs=self.max_jobs
        )
        sweep_key = request.sweep_key()

        with self._lock:
            for job in self._jobs.values():
                if job.sweep_key == sweep_key and job.state not in JobState.TERMINAL:
                    self.registry.counter("service.jobs_coalesced").inc()
                    return job

        job = Job(
            job_id=uuid.uuid4().hex[:12],
            request=request,
            sweep_key=sweep_key,
            directory=self.jobs_root / "pending",
            client=client,
            submitted_at=time.time(),
        )
        job.directory = self.jobs_root / job.job_id
        job.directory.mkdir(parents=True, exist_ok=True)
        (job.directory / "request.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        write_status(
            job.status_path,
            {"state": JobState.QUEUED, "cells": len(request.specs)},
        )

        if self._fully_cached(request):
            # Zero simulations ahead: replay inline through the shared cache
            # so the hits count in the service registry and the caller gets
            # a terminal job immediately, bypassing the queue entirely.
            job.deduped = True
            self.registry.counter("service.jobs_deduped").inc()
            with self._lock:
                self._jobs[job.job_id] = job
            self._run_inline(job)
            return job

        with self._lock:
            self._jobs[job.job_id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self._jobs.pop(job.job_id, None)
            self.registry.counter("service.queue_rejected").inc()
            raise QueueFull(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self.registry.counter("service.jobs_submitted").inc()
        return job

    def _bucket_for(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self._rate_per_sec, self._burst, clock=self._clock
                )
                self._buckets[client] = bucket
            return bucket

    def _fully_cached(self, request: SweepRequest) -> bool:
        """True when no cell of this grid would simulate anything.

        A cell is covered by its full cache key, or — the PR 6 re-pricing
        path — by its base key (same configuration under any
        characterization), which ``run_sweep`` re-prices without
        simulating.
        """
        for spec in request.specs:
            if self.cache.path_for(spec.cache_key()).exists():
                continue
            base = spec.base_cache_key()
            if base != spec.cache_key() and self.cache.path_for(base).exists():
                continue
            return False
        return True

    def _run_inline(self, job: Job) -> None:
        """Serve a fully-cached job in the submitting thread."""
        with job.lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()
        try:
            report = run_sweep(
                list(job.request.specs),
                jobs=1,
                cache=self.cache,
                registry=self.registry,
                keep_going=job.request.options.keep_going,
                journal=SweepJournal(job.journal_path),
                status_path=job.status_path,
            )
            payload = report_payload(report)
            tmp = job.directory / "result.json.tmp"
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, job.result_path)
            with job.lock:
                job.state = JobState.FINISHED
                job.finished_at = time.time()
        except Exception as error:
            with job.lock:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_at = time.time()

    # -- worker side -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        with job.lock:
            if job.cancel_event.is_set():
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                return
            job.state = JobState.RUNNING
            job.started_at = time.time()
        if self._start_gate is not None:
            self._start_gate.wait()
        if job.cancel_event.is_set():
            with job.lock:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
            return

        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_job_process_main,
            args=(
                child_conn,
                list(job.request.specs),
                job.request.options,
                str(self.cache.directory),
                str(job.directory),
            ),
            daemon=True,
        )
        with job.lock:
            job.process = process
        process.start()
        child_conn.close()

        outcome: Optional[dict] = None
        while True:
            if job.cancel_event.is_set():
                process.terminate()
                process.join(timeout=10.0)
                with job.lock:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    job.process = None
                parent_conn.close()
                write_status(job.status_path, {"state": JobState.CANCELLED})
                return
            if parent_conn.poll(timeout=0.1):
                try:
                    outcome = parent_conn.recv()
                except EOFError:
                    outcome = None
                break
            if not process.is_alive():
                # One last poll: the child may have sent and exited between
                # our checks.
                if parent_conn.poll(timeout=0.1):
                    try:
                        outcome = parent_conn.recv()
                    except EOFError:
                        outcome = None
                break
        process.join(timeout=10.0)
        parent_conn.close()

        # Fold the child's metrics in BEFORE publishing a terminal state:
        # a client that polls to completion and immediately scrapes
        # /metrics must see this sweep's counters.
        if outcome is not None and outcome.get("metrics"):
            self.registry.merge_snapshot(outcome["metrics"])
        with job.lock:
            job.process = None
            job.finished_at = time.time()
            if outcome is None:
                job.state = JobState.FAILED
                job.error = (
                    f"sweep process died (exit code {process.exitcode})"
                )
            elif outcome.get("ok"):
                job.state = JobState.FINISHED
            else:
                job.state = JobState.FAILED
                job.error = outcome.get("error", "sweep failed")
        if job.state == JobState.FAILED:
            self.registry.counter("service.jobs_failed").inc()
            write_status(
                job.status_path,
                {"state": JobState.FAILED, "error": job.error},
            )

    # -- queries and lifecycle -------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        self._reap()
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        self._reap()
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at
            )

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job, or None if unknown.

        Queued jobs flip straight to CANCELLED (the worker skips them);
        running jobs get their sweep process terminated by the worker's
        poll loop within ~100ms.
        """
        job = self.get(job_id)
        if job is None:
            return None
        with job.lock:
            if job.state in JobState.TERMINAL:
                return job
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
        self.registry.counter("service.jobs_cancelled").inc()
        return job

    def _reap(self) -> None:
        """Evict terminal jobs older than the TTL (record and directory)."""
        if self.job_ttl is None or self.job_ttl <= 0:
            return
        now = time.time()
        expired: List[Job] = []
        with self._lock:
            for job_id, job in list(self._jobs.items()):
                if (
                    job.state in JobState.TERMINAL
                    and job.finished_at is not None
                    and now - job.finished_at > self.job_ttl
                ):
                    expired.append(self._jobs.pop(job_id))
        for job in expired:
            self.registry.counter("service.jobs_expired").inc()
            for name in (
                "request.json",
                "status.json",
                "journal.jsonl",
                "result.json",
                "spans.json",
            ):
                try:
                    (job.directory / name).unlink()
                except OSError:
                    pass
            try:
                job.directory.rmdir()
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting work and wait for in-flight jobs to finish.

        Returns True when everything reached a terminal state in time.
        Safe to call more than once.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = [
                    job
                    for job in self._jobs.values()
                    if job.state not in JobState.TERMINAL
                ]
            if not busy:
                return True
            time.sleep(0.05)
        return False

    def shutdown(self, cancel_running: bool = False) -> None:
        """Tear the worker pool down (used by tests and the serve loop)."""
        self._draining = True
        if cancel_running:
            with self._lock:
                jobs = list(self._jobs.values())
            for job in jobs:
                with job.lock:
                    terminal = job.state in JobState.TERMINAL
                if not terminal:
                    self.cancel(job.job_id)
        for _ in self._workers:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        for worker in self._workers:
            worker.join(timeout=5.0)
