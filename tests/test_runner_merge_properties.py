"""Property tests: sharded simulation merges back to the single-run truth.

The runner's sharding invariant (see docs/runner.md): protocol state is
threaded through chunks while counters accumulate per chunk, so for *any*
split point ``merge(counters(chunk_a), counters(chunk_b))`` must equal the
counters of one uninterrupted run — exactly, for every registered protocol,
across event counts, bus-op counts, transactions, and the fan-out
histogram.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.counters import SimulationCounters
from repro.core.simulator import simulate, simulate_chunks
from repro.interconnect.bus import BusOp
from repro.memory.cache import CacheGeometry
from repro.protocols.base import AccessOutcome
from repro.protocols.events import Event
from repro.protocols.registry import PROTOCOLS, create_protocol
from repro.trace.chunk import iter_chunks, split_at
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile

#: One smallish trace with genuine sharing, generated once per test session.
_PROFILE = WorkloadProfile(name="MERGEPROP", length=420, seed=7, processes=4)
_TRACE = list(SyntheticWorkload(_PROFILE).records())

_SETTINGS = dict(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _counter_state(counters: SimulationCounters):
    """Everything a merge must preserve, in comparable form."""
    return (
        dict(counters.events),
        dict(counters.ops.ops),
        counters.ops.transactions,
        counters.ops.references,
        counters.fanout.as_dict(),
        counters.evictions,
        counters.dirty_evictions,
    )


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@given(cut=st.integers(min_value=0, max_value=len(_TRACE)))
@settings(**_SETTINGS)
def test_two_way_split_merges_exactly(protocol_name, cut):
    full = simulate(create_protocol(protocol_name, 4), _TRACE)
    head, tail = split_at(_TRACE, cut)
    chunked = simulate_chunks(create_protocol(protocol_name, 4), [head, tail])
    assert _counter_state(chunked.counters) == _counter_state(full.counters)


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@given(chunk_size=st.integers(min_value=1, max_value=len(_TRACE) + 10))
@settings(**_SETTINGS)
def test_many_way_split_merges_exactly(protocol_name, chunk_size):
    full = simulate(create_protocol(protocol_name, 4), _TRACE)
    chunked = simulate_chunks(
        create_protocol(protocol_name, 4), iter_chunks(_TRACE, chunk_size)
    )
    assert _counter_state(chunked.counters) == _counter_state(full.counters)


def test_chunk_done_hook_sees_partial_counters_that_sum_to_total():
    seen = []
    result = simulate_chunks(
        create_protocol("dir0b", 4),
        iter_chunks(_TRACE, 100),
        chunk_done=seen.append,
    )
    assert sum(c.references for c in seen) == result.references == len(_TRACE)
    recombined = SimulationCounters()
    for chunk_counters in seen:
        recombined.merge(chunk_counters)
    assert _counter_state(recombined) == _counter_state(result.counters)


# -- finite geometry through the unified pipeline ---------------------------

#: Far larger than the trace's block footprint: the LRU stage can never
#: displace, so the only difference from the infinite path is bookkeeping.
_HUGE_GEOMETRY = CacheGeometry(n_sets=4096, associativity=4)
#: Small enough that displacements actually happen on _TRACE.
_TINY_GEOMETRY = CacheGeometry(n_sets=4, associativity=2)


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_effectively_infinite_geometry_matches_infinite_run(protocol_name):
    """The finite stage with a never-evicting geometry is a no-op: every
    counter matches the infinite-cache run bit-for-bit, for every protocol."""
    infinite = simulate(create_protocol(protocol_name, 4), _TRACE)
    finite = simulate(
        create_protocol(protocol_name, 4), _TRACE, geometry=_HUGE_GEOMETRY
    )
    assert _counter_state(finite.counters) == _counter_state(infinite.counters)
    assert finite.counters.evictions == 0


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@given(chunk_size=st.integers(min_value=1, max_value=len(_TRACE) + 10))
@settings(**_SETTINGS)
def test_finite_chunked_runs_merge_exactly(protocol_name, chunk_size):
    """Sharding must stay merge-exact when the LRU stage is displacing."""
    full = simulate(
        create_protocol(protocol_name, 4), _TRACE, geometry=_TINY_GEOMETRY
    )
    chunked = simulate_chunks(
        create_protocol(protocol_name, 4),
        iter_chunks(_TRACE, chunk_size),
        geometry=_TINY_GEOMETRY,
    )
    assert _counter_state(chunked.counters) == _counter_state(full.counters)
    assert full.counters.evictions > 0


# -- counter-level algebra (protocol independent) ---------------------------

_EVENTS = st.sampled_from(list(Event))
_OPS = st.lists(
    st.tuples(st.sampled_from(list(BusOp)), st.integers(min_value=0, max_value=3)),
    max_size=3,
)
_OUTCOMES = st.builds(
    AccessOutcome,
    event=_EVENTS,
    ops=_OPS.map(tuple),
    invalidation_fanout=st.one_of(
        st.none(), st.integers(min_value=0, max_value=4)
    ),
)


@given(outcomes=st.lists(_OUTCOMES, max_size=40), cut=st.integers(0, 40))
@settings(max_examples=60, deadline=None)
def test_counter_merge_equals_single_pass(outcomes, cut):
    cut = min(cut, len(outcomes))
    whole = SimulationCounters()
    for outcome in outcomes:
        whole.record(outcome)
    left, right = SimulationCounters(), SimulationCounters()
    for outcome in outcomes[:cut]:
        left.record(outcome)
    for outcome in outcomes[cut:]:
        right.record(outcome)
    left.merge(right)
    assert _counter_state(left) == _counter_state(whole)


@given(
    chunks=st.lists(st.lists(_OUTCOMES, max_size=15), min_size=1, max_size=5)
)
@settings(max_examples=40, deadline=None)
def test_counter_merge_is_associative(chunks):
    per_chunk = []
    for chunk in chunks:
        counters = SimulationCounters()
        for outcome in chunk:
            counters.record(outcome)
        per_chunk.append(counters)

    def _fresh(index):
        rebuilt = SimulationCounters()
        for outcome in chunks[index]:
            rebuilt.record(outcome)
        return rebuilt

    left_fold = SimulationCounters()
    for index in range(len(chunks)):
        left_fold.merge(_fresh(index))
    right_fold = SimulationCounters()
    for index in reversed(range(len(chunks))):
        suffix = _fresh(index)
        suffix.merge(right_fold)
        right_fold = suffix
    assert _counter_state(left_fold) == _counter_state(right_fold)
