"""Unit tests for the Section 6 digit-code (coarse) directory."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.coarse import DigitCode, DirCoarse
from repro.protocols.directory.dirnnb import DirnNB
from repro.trace.record import AccessType


class TestDigitCode:
    def test_exact_code_denotes_one_cache(self):
        code = DigitCode.exact(5, width=3)
        assert code.denoted_count == 1
        assert code.denoted_caches() == (5,)
        assert code.contains(5)
        assert not code.contains(4)

    def test_merge_introduces_both_digits(self):
        code = DigitCode.exact(0b00, width=2).merged_with(0b01)
        assert code.denoted_count == 2
        assert code.denoted_caches() == (0, 1)

    def test_merge_is_a_superset(self):
        rng = random.Random(7)
        for _ in range(100):
            members = [rng.randrange(8) for _ in range(rng.randint(1, 5))]
            code = DigitCode.exact(members[0], width=3)
            for cache in members[1:]:
                code = code.merged_with(cache)
            for cache in members:
                assert code.contains(cache)

    def test_worst_case_merge_denotes_everything(self):
        code = DigitCode.exact(0b000, width=3).merged_with(0b111)
        assert code.denoted_count == 8

    def test_two_log_n_bits(self):
        # d digits of 2 bits each: 2*log2(n) bits total.
        assert DirCoarse.directory_bits_per_block(16) == 2 * 4 + 1

    def test_exact_rejects_out_of_range_cache(self):
        with pytest.raises(ValueError):
            DigitCode.exact(8, width=3)

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            DigitCode((0, 3))

    def test_equality_and_hash(self):
        a = DigitCode.exact(2, width=3)
        b = DigitCode.exact(2, width=3)
        assert a == b and hash(a) == hash(b)


class TestDirCoarse:
    def test_single_sharer_invalidation_is_exact(self):
        proto = DirCoarse(4)
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.op_count(BusOp.INVALIDATE) == 1
        assert proto.wasted_invalidations == 0

    def test_superset_may_waste_messages(self):
        proto = DirCoarse(4)
        # Sharers 0 and 3 (binary 00 and 11) force the code to 'both both',
        # denoting all four caches; invalidating from cache 0 sends messages
        # to 1, 2 and 3 even though only 3 holds a copy.
        outcomes = run_ops(proto, [(0, "r", 5), (3, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.invalidation_fanout == 1
        assert hit.op_count(BusOp.INVALIDATE) == 3
        assert proto.wasted_invalidations == 2

    def test_adjacent_sharers_stay_tight(self):
        proto = DirCoarse(4)
        # Sharers 0 and 1 differ only in the low digit: code denotes {0, 1}.
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        assert outcomes[2].op_count(BusOp.INVALIDATE) == 1

    def test_write_resets_code_to_exact(self):
        proto = DirCoarse(4)
        run_ops(proto, [(0, "r", 5), (3, "r", 5), (0, "w", 5)])
        outcomes = run_ops(proto, [(0, "w", 5)])  # still exclusive
        assert outcomes[0].ops == ()

    def test_events_match_full_map(self):
        rng = random.Random(111)
        a, b = DirCoarse(4), DirnNB(4)
        for _ in range(4000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(25)
            assert a.access(cache, access, block).event is b.access(
                cache, access, block
            ).event

    def test_invalidations_never_fewer_than_full_map(self):
        rng = random.Random(113)
        a, b = DirCoarse(4), DirnNB(4)
        total_a = total_b = 0
        for _ in range(5000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(25)
            total_a += a.access(cache, access, block).op_count(BusOp.INVALIDATE)
            total_b += b.access(cache, access, block).op_count(BusOp.INVALIDATE)
        assert total_a >= total_b
