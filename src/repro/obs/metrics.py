"""Metrics primitives: counters, gauges, wall-time timers, histograms.

A :class:`MetricsRegistry` is a named collection of instruments that any
layer can tally into and any consumer can snapshot as plain JSON-able data
(:meth:`MetricsRegistry.as_dict`, ``--metrics-json`` in the CLI).  The
sweep runner keeps one registry per sweep so reports are self-contained —
including the cost-accounting split between ``sweep.simulated`` and
``sweep.repriced`` (cells served by re-weighting another cell's counters
under a different hardware characterization); the result cache defaults to
the process-wide registry (:func:`get_registry`) so corruption events are
visible no matter which sweep tripped them.

The process-wide registry is exactly that: **per process**.  Instruments
tallied inside a sweep worker subprocess live in that worker's own
``_DEFAULT`` and would vanish with it — which is why the cell executor
swaps in a fresh registry per attempt (:func:`set_registry`), ships its
snapshot back over the result pipe, and the sweep loop folds it into the
parent registry with :meth:`MetricsRegistry.merge_snapshot`.  Code that
tallies into :func:`get_registry` from inside a worker is therefore
visible in ``SweepReport.metrics_dict()``; code that caches a registry
*object* across the fork boundary is not.

Registries export two machine formats: :meth:`MetricsRegistry.as_dict` /
``write_json`` (the ``--metrics-json`` schema shared with the
``BENCH_*.json`` artifacts) and :meth:`MetricsRegistry.to_openmetrics` /
``write_openmetrics`` (OpenMetrics / Prometheus text exposition, behind
``--metrics-openmetrics``).

Instruments are deliberately tiny pure-Python objects — a counter is one
integer — so tallying in hot-ish paths (per sweep cell, per cache lookup)
costs nothing worth measuring.  Per-*reference* instrumentation does not go
through the registry at all; that is the probe API's job
(:mod:`repro.obs.probe`), which is compiled out of the hot loop entirely
when no probe is attached.
"""

from __future__ import annotations

import json
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("name", "total_seconds", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        """Fold an externally measured duration in (e.g. from a worker)."""
        self.total_seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_s": self.total_seconds,
            "count": self.count,
            "mean_s": self.mean_seconds,
        }


class Histogram:
    """Streaming summary (count/sum/min/max/mean) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshottable as JSON."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def counter_value(self, name: str) -> int:
        """Read a counter without creating it (0 when never tallied).

        Health checks read counters they do not own (``cache.put_errors``,
        ``service.journal_errors``); going through :meth:`counter` would
        materialise empty instruments into every snapshot and exposition.
        """
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    # -- snapshots -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as plain JSON-able data."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "timers": {
                name: timer.as_dict()
                for name, timer in sorted(self._timers.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- cross-process merging -------------------------------------------------

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        This is how worker-side metrics cross the process boundary: the
        cell executor serialises the worker's registry as plain data over
        the result pipe and the sweep loop merges it here.  Counters and
        timers accumulate, histograms fold their streaming summaries, and
        gauges keep last-write-wins semantics (the snapshot wins).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_seconds += float(data.get("total_s", 0.0))
            timer.count += int(data.get("count", 0))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = int(data.get("count", 0))
            if count == 0:
                continue
            histogram.count += count
            histogram.total += float(data.get("sum", 0.0))
            for bound, better in (("min", min), ("max", max)):
                observed = data.get(bound)
                if observed is None:
                    continue
                current = getattr(histogram, bound)
                setattr(
                    histogram,
                    bound,
                    float(observed) if current is None
                    else better(current, float(observed)),
                )

    # -- OpenMetrics exposition ------------------------------------------------

    def to_openmetrics(self, prefix: str = "repro_") -> str:
        """The registry as OpenMetrics / Prometheus text exposition.

        Dotted instrument names are mangled to the OpenMetrics charset
        (``sweep.cache_hits`` → ``repro_sweep_cache_hits``).  Counters
        become ``counter`` families (``_total`` sample), gauges become
        ``gauge`` families, and timers/histograms become ``summary``
        families (``_count``/``_sum``; histograms additionally expose
        their streaming ``_min``/``_max`` as gauges).  The text ends with
        the spec's ``# EOF`` terminator, so the output is a complete
        exposition suitable for the Prometheus textfile collector.
        """
        lines = []

        def family(name: str, kind: str) -> str:
            lines.append(f"# TYPE {name} {kind}")
            return name

        def sample(name: str, value: Union[int, float]) -> None:
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            lines.append(f"{name} {value}")

        for name, counter in sorted(self._counters.items()):
            metric = family(_openmetrics_name(prefix, name), "counter")
            sample(f"{metric}_total", counter.value)
        for name, gauge in sorted(self._gauges.items()):
            metric = family(_openmetrics_name(prefix, name), "gauge")
            sample(metric, gauge.value)
        for name, timer in sorted(self._timers.items()):
            metric = family(_openmetrics_name(prefix, name), "summary")
            sample(f"{metric}_count", timer.count)
            sample(f"{metric}_sum", timer.total_seconds)
        for name, histogram in sorted(self._histograms.items()):
            metric = family(_openmetrics_name(prefix, name), "summary")
            sample(f"{metric}_count", histogram.count)
            sample(f"{metric}_sum", histogram.total)
            for bound in ("min", "max"):
                observed = getattr(histogram, bound)
                if observed is not None:
                    bound_metric = family(f"{metric}_{bound}", "gauge")
                    sample(bound_metric, observed)
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(
        self, path: Union[str, Path], prefix: str = "repro_"
    ) -> None:
        Path(path).write_text(self.to_openmetrics(prefix), encoding="utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)}, "
            f"histograms={len(self._histograms)})"
        )


#: OpenMetrics metric names: [a-zA-Z_:] then [a-zA-Z0-9_:]*.
_OPENMETRICS_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _openmetrics_name(prefix: str, name: str) -> str:
    metric = _OPENMETRICS_INVALID.sub("_", f"{prefix}{name}")
    if metric and metric[0].isdigit():
        metric = f"_{metric}"
    return metric


#: Process-wide default registry for layers with no better home (the result
#: cache's corruption counter, ad-hoc instrumentation in scripts).  Note
#: "process-wide", not "sweep-wide": a worker subprocess has its own copy
#: (see the module docstring), which the cell executor snapshots and ships
#: back to the parent.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one.

    The cell executor installs a fresh registry at the top of every worker
    attempt so that *everything* the attempt tallies into
    :func:`get_registry` — cache traffic, corrupt-entry deletions, ad-hoc
    instrumentation — is exactly the delta shipped back to the parent
    sweep, instead of vanishing with the worker.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
