"""Tests for the calibrated POPS / THOR / PERO workload profiles."""

import pytest

from repro.trace import collect_stats
from repro.trace.workloads import (
    PAPER_TRACE_LENGTHS,
    pero_profile,
    pops_profile,
    standard_profiles,
    standard_trace,
    standard_trace_names,
    thor_profile,
)

#: Enough references for rate checks but fast to generate.
_SCALE = 1.0 / 16.0


class TestProfileConstruction:
    def test_standard_names(self):
        assert tuple(standard_trace_names()) == ("POPS", "THOR", "PERO")

    def test_full_lengths_match_table3(self):
        assert pops_profile(scale=1.0).length == PAPER_TRACE_LENGTHS["POPS"]
        assert thor_profile(scale=1.0).length == PAPER_TRACE_LENGTHS["THOR"]
        assert pero_profile(scale=1.0).length == PAPER_TRACE_LENGTHS["PERO"]

    def test_four_processes_like_the_vax_8350(self):
        for profile in standard_profiles():
            assert profile.processes == 4
            assert profile.processors == 4

    def test_unknown_trace_name_raises(self):
        with pytest.raises(KeyError, match="unknown trace"):
            standard_trace("nonesuch")

    def test_name_lookup_is_case_insensitive(self):
        assert next(standard_trace("pops", scale=_SCALE)) is not None


class TestCalibration:
    """The paper's headline trace characteristics (Table 3 / Section 4.4)."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: collect_stats(standard_trace(name, scale=_SCALE), name=name)
            for name in standard_trace_names()
        }

    def test_instruction_share_near_half(self, stats):
        for s in stats.values():
            assert abs(s.instructions / s.total - 0.497) < 0.02

    def test_read_write_mix(self, stats):
        for s in stats.values():
            assert 0.34 <= s.data_reads / s.total <= 0.45
            assert 0.06 <= s.data_writes / s.total <= 0.14

    def test_pops_and_thor_spin_heavily(self, stats):
        # "Roughly one-third of all the reads correspond to reads due to
        # spinning on a lock" (Section 4.4).
        for name in ("POPS", "THOR"):
            assert stats[name].lock_spin_fraction_of_reads > 0.15

    def test_pero_barely_spins(self, stats):
        assert stats["PERO"].lock_spin_fraction_of_reads < 0.05

    def test_os_activity_near_ten_percent(self, stats):
        for s in stats.values():
            assert 0.04 <= s.os_fraction <= 0.16

    def test_pero_shares_least(self, stats):
        pero = stats["PERO"].shared_block_fraction
        assert pero < stats["POPS"].shared_block_fraction
        assert pero < stats["THOR"].shared_block_fraction

    def test_read_ratio_is_high(self, stats):
        # Both lock spinning (POPS/THOR) and the routing algorithm (PERO)
        # give a larger-than-usual read-to-write ratio.
        for s in stats.values():
            assert s.read_write_ratio > 2.5
