"""The Illinois (MESI) snoopy protocol (the paper's reference [5]).

Papamarcos & Patel's four-state protocol: **M**odified, **E**xclusive
(clean, sole copy), **S**hared, **I**nvalid.  Its two signature
optimisations relative to simpler invalidation schemes:

* a read miss that no other cache can serve installs the block *exclusive*,
  so the first write to it needs no bus transaction at all;
* cache-to-cache transfers: whenever any cache holds the block, a cache —
  not memory — supplies it (a dirty supplier writes memory back in the same
  transaction, M -> S).

The exclusive state needs per-block tracking beyond the holder mask (an
E copy is clean but known-sole); it is kept here like Write-Once's
reserved state.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER, bit_count
from ..base import AccessOutcome, CoherenceProtocol, OpList
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["Illinois"]

#: MESI with the Exclusive state as the table's aux annotation.
_ILLINOIS_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(
        write=False, event=Event.RM_FIRST_REF, first=True, mask="add",
        aux_action="self",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
        clear_dirty=True,
        mask="add",
        aux_action="clear",
    ),
    Rule(
        # Cache-to-cache transfer even for clean blocks.
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.CACHE_SUPPLY, 1),),
        mask="add",
        aux_action="clear",
    ),
    Rule(
        # No other cache can serve: install Exclusive.
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
        aux_action="self",
    ),
    Rule(write=True, event=Event.WH_BLK_DIRTY, held=True, dirty="local"),
    Rule(
        # E -> M silently.
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        aux="self",
        fanout="F",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        # S -> M: one bus invalidation signal.
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        ops=((BusOp.BROADCAST_INVALIDATE, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.CACHE_SUPPLY, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
)


class Illinois(CoherenceProtocol):
    """MESI with cache-to-cache supply (Illinois protocol)."""

    name = "illinois"
    label = "Illinois"
    kind = "snoopy"

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches)
        #: block -> cache holding it Exclusive (clean and sole)
        self._exclusive: Dict[int, int] = {}

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            self._exclusive[block] = cache
            return AccessOutcome(event=Event.RM_FIRST_REF)
        self._exclusive.pop(block, None)  # the copy is about to be shared
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # M -> S: the owner supplies the block and memory is written
            # back in the same transaction.
            sharing.clear_dirty(block)
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY,
                ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
            )
        if sharing.remote_holders(block, cache):
            # Cache-to-cache transfer even for clean blocks.
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_CLEAN, ops=((BusOp.CACHE_SUPPLY, 1),)
            )
        sharing.add_holder(block, cache)
        self._exclusive[block] = cache
        return AccessOutcome(event=Event.RM_UNCACHED, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            if sharing.is_dirty_in(block, cache):
                return AccessOutcome(event=Event.WH_BLK_DIRTY)
            if self._exclusive.get(block) == cache:
                # E -> M silently: the whole point of the exclusive state.
                sharing.set_dirty(block, cache)
                del self._exclusive[block]
                return AccessOutcome(
                    event=Event.WH_BLK_CLEAN, ops=(), invalidation_fanout=0
                )
            # S -> M: one bus invalidation signal.
            remote = sharing.remote_holders(block, cache)
            fanout = bit_count(remote)
            sharing.set_only_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN,
                ops=((BusOp.BROADCAST_INVALIDATE, 1),),
                invalidation_fanout=fanout,
            )
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        return self._write_miss(cache, block)

    def _write_miss(self, cache: int, block: int) -> AccessOutcome:
        sharing = self.sharing
        self._exclusive.pop(block, None)
        owner = self._remote_dirty_owner(cache, block)
        remote = sharing.remote_holders(block, cache)
        if owner != NO_OWNER:
            ops: OpList = ((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1))
            event = Event.WM_BLK_DIRTY
            fanout = None
        elif remote:
            ops = ((BusOp.CACHE_SUPPLY, 1),)
            event = Event.WM_BLK_CLEAN
            fanout = bit_count(remote)
        else:
            ops = ((BusOp.MEM_ACCESS, 1),)
            event = Event.WM_UNCACHED
            fanout = 0
        sharing.purge(block)
        sharing.add_holder(block, cache)
        sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops, invalidation_fanout=fanout)

    def evict(self, cache: int, block: int) -> OpList:
        if self._exclusive.get(block) == cache:
            del self._exclusive[block]
        return super().evict(cache, block)

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _ILLINOIS_RULES, has_aux=True)
