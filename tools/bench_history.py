#!/usr/bin/env python3
"""Append benchmark runs to the history ledger and gate on regressions.

Two modes over ``benchmarks/results/history.jsonl`` (append-only JSONL,
one entry per benchmark run, keyed by git SHA, host and scale):

append (the default)
    Collect throughput metrics from every ``BENCH_*.json`` in
    ``--results`` and append one ledger entry::

        python tools/bench_history.py --results benchmarks/results

check (``--check``)
    Compare the newest entry against the median of up to 5 prior
    same-scale entries and exit 1 when any metric dropped more than
    ``--noise-pct`` percent (``--report-only`` prints the same table but
    always exits 0 — the PR mode)::

        python tools/bench_history.py --check [--report-only]

The SHA defaults to ``git rev-parse HEAD`` (or ``$GITHUB_SHA``), the host
to the machine's node name, and the scale to ``$REPRO_BENCH_SCALE``
(default 16) — the same knob ``benchmarks/conftest.py`` reads, so entries
from different scales never gate against each other.

See :mod:`repro.obs.benchgate` for the comparison semantics and
``docs/observability.md`` for the workflow.
"""

from __future__ import annotations

import argparse
import os
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.benchgate import (  # noqa: E402 - path bootstrap above
    DEFAULT_NOISE_PCT,
    append_history,
    check_latest,
    load_history,
    render_deltas,
)

DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results"


def _git_sha() -> str:
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "16"))
    except ValueError:
        return 16.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        metavar="FILE",
        help=f"the ledger (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        metavar="DIR",
        help="directory holding BENCH_*.json artifacts (append mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the newest entry to its baseline instead of appending",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="with --check: print the table but exit 0 even on regression",
    )
    parser.add_argument(
        "--noise-pct",
        type=float,
        default=DEFAULT_NOISE_PCT,
        metavar="PCT",
        help=f"regression threshold in percent (default {DEFAULT_NOISE_PCT:g})",
    )
    parser.add_argument(
        "--sha", default=None, help="override the git SHA key (append mode)"
    )
    parser.add_argument(
        "--host", default=None, help="override the host key (append mode)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override the scale key (default: $REPRO_BENCH_SCALE or 16)",
    )
    args = parser.parse_args(argv)
    if args.noise_pct < 0:
        parser.error("--noise-pct must be >= 0")

    if args.check:
        entries = load_history(args.history)
        if not entries:
            print(f"bench history: no entries in {args.history}")
            return 0
        regressions, others = check_latest(entries, noise_pct=args.noise_pct)
        print(render_deltas(regressions, others, noise_pct=args.noise_pct))
        if regressions and not args.report_only:
            return 1
        return 0

    entry = append_history(
        args.history,
        args.results,
        sha=args.sha if args.sha is not None else _git_sha(),
        host=args.host if args.host is not None else platform.node(),
        scale=args.scale if args.scale is not None else _scale(),
    )
    if entry is None:
        print(
            f"bench history: no BENCH_*.json with throughput metrics in "
            f"{args.results}; nothing appended",
            file=sys.stderr,
        )
        return 1
    metric_count = sum(len(m) for m in entry["bench"].values())
    print(
        f"bench history: appended {entry['sha'][:12]} "
        f"(scale {entry['scale']:g}, {len(entry['bench'])} artifact(s), "
        f"{metric_count} metrics) to {args.history}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
