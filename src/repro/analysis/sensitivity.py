"""Section 5.1 sensitivity analysis: fixed per-transaction overheads.

The bus-cycles metric counts only cycles the bus is busy with data; every
real transaction also pays cache-access, bus-controller and arbitration
time.  Section 5.1 models this as ``q`` extra cycles per bus transaction and
observes that the Dragon/Dir0B gap shrinks from 46% (q=0) to 12% (q=1),
because Dragon performs almost twice as many (cheap) transactions.

The paper's line for each scheme is ``cycles(q) = c0 + t · q`` with ``c0``
the bus cycles per reference and ``t`` the bus transactions per reference
(Dragon: 0.0336 + 0.0206·q; Dir0B: 0.0491 + 0.0114·q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..core.comparison import ComparisonResult
from ..interconnect.bus import BusCostModel, pipelined_bus

__all__ = ["OverheadLine", "overhead_lines", "relative_gap"]


@dataclass(frozen=True)
class OverheadLine:
    """``cycles(q) = base + transactions_per_ref * q`` for one scheme."""

    scheme: str
    base: float
    transactions_per_ref: float

    def at(self, q: float) -> float:
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        return self.base + self.transactions_per_ref * q

    def render(self) -> str:
        return (
            f"{self.scheme}: {self.base:.4f} + {self.transactions_per_ref:.4f}"
            "*q cycles/ref"
        )


def overhead_lines(
    comparison: ComparisonResult,
    schemes: Sequence[str] = ("dir0b", "dragon"),
    bus: BusCostModel = None,
) -> Dict[str, OverheadLine]:
    """The Section 5.1 overhead lines for the requested schemes."""
    bus = bus or pipelined_bus()
    lines: Dict[str, OverheadLine] = {}
    for scheme in schemes:
        label = comparison.results[scheme][comparison.traces[0]].protocol_label
        lines[scheme] = OverheadLine(
            scheme=label,
            base=comparison.average_cycles(scheme, bus),
            transactions_per_ref=comparison.average_transactions_per_reference(
                scheme
            ),
        )
    return lines


def relative_gap(
    lines: Mapping[str, OverheadLine],
    slow: str = "dir0b",
    fast: str = "dragon",
    q: float = 0.0,
) -> float:
    """How many percent more cycles ``slow`` needs than ``fast`` at overhead q.

    The paper quotes 46% at q=0 shrinking to 12% at q=1.
    """
    fast_cycles = lines[fast].at(q)
    if fast_cycles == 0:
        raise ValueError("fast scheme has zero cycles; gap undefined")
    return 100.0 * (lines[slow].at(q) - fast_cycles) / fast_cycles
