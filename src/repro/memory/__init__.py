"""Memory-system substrate: line states, caches, and the sharing table."""

from .cache import CacheGeometry, FiniteCache, InfiniteCache
from .sharing import NO_OWNER, SharingTable, bit_count, iter_bits
from .state import LineState

__all__ = [
    "CacheGeometry",
    "FiniteCache",
    "InfiniteCache",
    "NO_OWNER",
    "SharingTable",
    "bit_count",
    "iter_bits",
    "LineState",
]
