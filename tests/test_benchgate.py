"""Tests for the benchmark-history ledger and regression gate.

Covers metric extraction from ``BENCH_*.json`` documents, ledger append
and load semantics, the median-baseline comparison, the rendered delta
table, and the ``tools/bench_history.py`` CLI (including the acceptance
requirement that ``--check`` exits non-zero on a synthetic regressed
entry and zero with ``--report-only``).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.benchgate import (
    BASELINE_WINDOW,
    Delta,
    append_history,
    check_latest,
    extract_throughputs,
    load_history,
    render_deltas,
)


def _load_cli():
    path = Path(__file__).parents[1] / "tools" / "bench_history.py"
    spec = importlib.util.spec_from_file_location("bench_history", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_bench(directory, name, document):
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(document), encoding="utf-8"
    )


def _append_synthetic(history, factor, sha, ts):
    """One ledger entry shaped like a real sweep benchmark, scaled."""
    entry = {
        "ts": ts,
        "sha": sha,
        "host": "testhost",
        "scale": 16.0,
        "bench": {
            "BENCH_sweep": {
                "serial.refs_per_sec": 100000.0 * factor,
                "parallel.refs_per_sec": 300000.0 * factor,
                "derived.parallel_speedup": 3.0 * factor,
            }
        },
    }
    with Path(history).open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")
    return entry


class TestExtractThroughputs:
    def test_matches_refs_per_sec_anywhere_and_speedup_suffix(self):
        document = {
            "gauges": {
                "simulate.dir1b.refs_per_sec": 5.0,
                "simulate.packed.fast.speedup": 2.0,
            },
            "derived": {"parallel_speedup": 3.5},
            "serial": {"refs_per_sec": 100.0, "wall_s": 9.0},
        }
        found = extract_throughputs(document)
        assert found == {
            "gauges.simulate.dir1b.refs_per_sec": 5.0,
            "gauges.simulate.packed.fast.speedup": 2.0,
            "derived.parallel_speedup": 3.5,
            "serial.refs_per_sec": 100.0,
        }

    def test_skips_zero_negative_bool_and_unrelated_leaves(self):
        document = {
            "a.refs_per_sec": 0.0,
            "b.refs_per_sec": -1.0,
            "c.refs_per_sec": True,
            "speedup_factor": 4.0,  # "speedup" not at the end of the path
            "wall_s": 2.0,
        }
        assert extract_throughputs(document) == {}


class TestLedger:
    def test_append_collects_all_artifacts(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        _write_bench(results, "simulator", {"gauges": {"x.refs_per_sec": 9.0}})
        _write_bench(results, "sweep", {"derived": {"parallel_speedup": 2.0}})
        _write_bench(results, "empty", {"wall_s": 1.0})
        history = tmp_path / "history.jsonl"
        entry = append_history(
            history, results, sha="abc", host="h", scale=16.0, timestamp=1.0
        )
        assert set(entry["bench"]) == {"BENCH_simulator", "BENCH_sweep"}
        assert entry["ts"] == 1.0
        loaded = load_history(history)
        assert len(loaded) == 1 and loaded[0]["sha"] == "abc"

    def test_append_returns_none_when_nothing_qualifies(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        _write_bench(results, "empty", {"wall_s": 1.0})
        (results / "BENCH_bad.json").write_text("{not json", encoding="utf-8")
        history = tmp_path / "history.jsonl"
        assert append_history(
            history, results, sha="abc", host="h", scale=16.0
        ) is None
        assert not history.exists()

    def test_load_skips_torn_and_alien_lines(self, tmp_path):
        history = tmp_path / "history.jsonl"
        good = {"ts": 1, "sha": "a", "scale": 16, "bench": {"B": {"m": 1.0}}}
        history.write_text(
            json.dumps(good) + "\n" + '{"torn": \n' + '"just a string"\n',
            encoding="utf-8",
        )
        assert load_history(history) == [good]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestCheckLatest:
    def test_needs_two_same_scale_entries(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _append_synthetic(history, 1.0, "one", ts=1)
        assert check_latest(load_history(history)) == ([], [])
        # A second entry at a *different* scale still cannot gate.
        entry = _append_synthetic(history, 1.0, "two", ts=2)
        entries = load_history(history)
        entries[-1]["scale"] = 4.0
        assert check_latest(entries) == ([], [])
        assert entry["scale"] == 16.0

    def test_within_noise_band_passes(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _append_synthetic(history, 1.0, "one", ts=1)
        _append_synthetic(history, 0.9, "two", ts=2)
        regressions, others = check_latest(load_history(history))
        assert regressions == []
        assert len(others) == 3

    def test_regression_detected_beyond_band(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _append_synthetic(history, 1.0, "one", ts=1)
        _append_synthetic(history, 0.3, "bad", ts=2)
        regressions, others = check_latest(load_history(history))
        assert len(regressions) == 3 and others == []
        assert all(delta.change_pct == pytest.approx(-70.0)
                   for delta in regressions)

    def test_baseline_is_median_of_recent_window(self, tmp_path):
        history = tmp_path / "h.jsonl"
        # One ancient outlier beyond the window, then a stable run of
        # baselines; the median should shrug off a single slow entry.
        factors = [50.0] + [1.0, 1.0, 0.2, 1.0, 1.0]
        for index, factor in enumerate(factors):
            _append_synthetic(history, factor, f"s{index}", ts=index)
        _append_synthetic(history, 0.95, "latest", ts=99)
        entries = load_history(history)
        assert len(entries[:-1]) > BASELINE_WINDOW
        regressions, others = check_latest(entries)
        assert regressions == []
        sample = next(
            d for d in others if d.metric == "serial.refs_per_sec"
        )
        assert sample.baseline == pytest.approx(100000.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_latest([], noise_pct=-5)


class TestRenderDeltas:
    def test_flags_regressions_and_states_the_verdict(self):
        regressed = Delta("B", "serial.refs_per_sec", 100.0, 40.0)
        fine = Delta("B", "derived.parallel_speedup", 3.0, 3.1)
        text = render_deltas([regressed], [fine], noise_pct=30.0)
        assert "REGRESSED" in text
        assert "B:serial.refs_per_sec" in text
        assert "-60.0%" in text
        assert "1 metric(s) regressed beyond the 30% noise band" in text

    def test_all_clear_verdict(self):
        fine = Delta("B", "m.refs_per_sec", 100.0, 101.0)
        text = render_deltas([], [fine], noise_pct=30.0)
        assert "all 1 metrics within the 30% noise band" in text

    def test_empty_comparison_message(self):
        assert "nothing to compare" in render_deltas([], [])


class TestBenchHistoryCli:
    def test_append_then_synthetic_regression_gates(self, tmp_path, capsys):
        cli = _load_cli()
        results = tmp_path / "results"
        results.mkdir()
        _write_bench(
            results, "sweep",
            {"serial": {"refs_per_sec": 100000.0},
             "derived": {"parallel_speedup": 3.0}},
        )
        history = tmp_path / "history.jsonl"
        base = ["--history", str(history), "--results", str(results)]

        # First append: one entry, nothing to compare yet.
        assert cli.main(base + ["--sha", "aaa", "--scale", "16"]) == 0
        assert "appended aaa" in capsys.readouterr().out
        assert cli.main(base + ["--check"]) == 0
        assert "nothing to compare" in capsys.readouterr().out

        # Second identical append passes the gate.
        assert cli.main(base + ["--sha", "bbb", "--scale", "16"]) == 0
        capsys.readouterr()
        assert cli.main(base + ["--check"]) == 0
        assert "within the" in capsys.readouterr().out

        # A synthetic 0.3x entry must fail --check ...
        _append_synthetic(history, 0.3, "ccc", ts=3)
        assert cli.main(base + ["--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "baseline" in out

        # ... but --report-only prints the same table and exits 0.
        assert cli.main(base + ["--check", "--report-only"]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_append_with_no_artifacts_exits_one(self, tmp_path, capsys):
        cli = _load_cli()
        results = tmp_path / "empty"
        results.mkdir()
        assert cli.main(
            ["--history", str(tmp_path / "h.jsonl"),
             "--results", str(results)]
        ) == 1
        assert "nothing appended" in capsys.readouterr().err

    def test_check_on_empty_history_is_clean(self, tmp_path, capsys):
        cli = _load_cli()
        assert cli.main(
            ["--history", str(tmp_path / "h.jsonl"), "--check"]
        ) == 0
        assert "no entries" in capsys.readouterr().out

    def test_negative_noise_is_a_usage_error(self, tmp_path):
        cli = _load_cli()
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--check", "--noise-pct", "-1"])
        assert excinfo.value.code == 2
