"""Unit tests for the Dragon update-based snoopy protocol."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.snoopy.dragon import Dragon
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return Dragon(4)


class TestNoInvalidation:
    def test_copies_are_never_removed(self, proto):
        rng = random.Random(71)
        high_water = {}
        for _ in range(4000):
            block = rng.randrange(20)
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                block,
            )
            count = proto.sharing.holder_count(block)
            assert count >= high_water.get(block, 0)
            high_water[block] = count

    def test_infinite_cache_gives_at_most_one_miss_per_cache(self, proto):
        # Once loaded, a block stays; re-reads by the same cache always hit.
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "w", 5), (0, "r", 5), (0, "r", 5)]
        )
        assert outcomes[2].event is Event.READ_HIT
        assert outcomes[3].event is Event.READ_HIT


class TestWriteUpdates:
    def test_shared_write_hit_broadcasts_one_word(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.event is Event.WH_DISTRIB
        assert dict(hit.ops) == {BusOp.WRITE_UPDATE: 1}
        assert proto.sharing.holder_count(5) == 2  # nobody invalidated

    def test_unshared_write_hit_is_local(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        hit = outcomes[1]
        assert hit.event is Event.WH_LOCAL
        assert hit.ops == ()

    def test_write_miss_to_shared_block_fetches_and_updates(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {BusOp.MEM_ACCESS: 1, BusOp.WRITE_UPDATE: 1}

    def test_writer_becomes_owner(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (1, "w", 5)])
        assert proto.sharing.dirty_owner(5) == 1


class TestOwnerSupply:
    def test_dirty_block_supplied_by_owner(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (1, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1}

    def test_memory_stays_stale_after_updates(self, proto):
        # Write updates do not write memory: the block stays dirty and a
        # third cache is still supplied by the owner.
        run_ops(proto, [(0, "w", 5), (1, "r", 5), (0, "w", 5)])
        outcomes = run_ops(proto, [(2, "r", 5)])
        assert outcomes[0].event is Event.RM_BLK_DIRTY
        assert dict(outcomes[0].ops) == {BusOp.CACHE_SUPPLY: 1}

    def test_clean_block_supplied_by_memory(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5)])
        assert outcomes[1].event is Event.RM_BLK_CLEAN
        assert dict(outcomes[1].ops) == {BusOp.MEM_ACCESS: 1}

    def test_write_miss_to_dirty_block_supplied_by_owner(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (1, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1, BusOp.WRITE_UPDATE: 1}


class TestMissRateIsNative:
    def test_total_misses_bounded_by_blocks_times_caches(self, proto):
        rng = random.Random(73)
        misses = 0
        for _ in range(8000):
            outcome = proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(10),
            )
            misses += outcome.event.is_miss or outcome.event.is_first_ref
        assert misses <= 10 * 4  # each cache misses each block at most once
