"""Table 2: summary of bus cycle costs for both bus models."""

from repro.analysis.tables import render_table2, table2


def test_table2_bus_costs(benchmark, save_result):
    rows = benchmark(table2)
    # The paper's numbers: memory access 5/7, cache access 5/6, write-back
    # 4/4, write-through 1/2, directory check 1/3, invalidate 1/1.
    expected = {
        "Memory access": (5, 7),
        "Cache access": (5, 6),
        "Write-back": (4, 4),
        "Write-through / update": (1, 2),
        "Directory check": (1, 3),
        "Invalidate": (1, 1),
    }
    for name, (pipe, nonpipe) in expected.items():
        assert rows[name]["Pipelined Bus"] == pipe
        assert rows[name]["Non-Pipelined Bus"] == nonpipe
    save_result("table2_bus_costs", render_table2())
