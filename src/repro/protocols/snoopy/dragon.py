"""The Dragon update-based snoopy protocol.

Dragon maintains consistency "by updating stale cached data with the new
value rather than by invalidating" (Section 3): a write hit to a block other
caches also hold broadcasts a single-word **write update** on the bus; the
copies are never removed.  A special *shared line* tells a writer whether
any other cache holds the block, so writes to unshared blocks stay local.

With infinite caches this means a block, once loaded, stays loaded forever —
miss rates are the native (first-fetch-per-cache) rates, and the dominant
cost is the stream of write updates (``wh-distrib`` in Table 4, about
one-sixth of all writes on the paper's traces).  Memory is not updated by
write updates, so a block that has ever been written is supplied
cache-to-cache on subsequent misses (the last writer owns it).

The paper treats Dragon as the best-performing snoopy scheme and uses it as
the yardstick the directory schemes must approach.
"""

from __future__ import annotations

from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER
from ..base import AccessOutcome, CoherenceProtocol
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["Dragon"]

_DRAGON_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        # Owner supplies the block and keeps ownership (shared-dirty).
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.CACHE_SUPPLY, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=True,
        event=Event.WH_DISTRIB,
        held=True,
        fclass=(1, 2),
        ops=((BusOp.WRITE_UPDATE, 1),),
        set_dirty=True,
    ),
    Rule(write=True, event=Event.WH_LOCAL, held=True, set_dirty=True),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.CACHE_SUPPLY, 1), (BusOp.WRITE_UPDATE, 1)),
        mask="add",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1), (BusOp.WRITE_UPDATE, 1)),
        mask="add",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
        set_dirty=True,
    ),
)


class Dragon(CoherenceProtocol):
    """Update-based snoopy protocol."""

    name = "dragon"
    label = "Dragon"
    kind = "snoopy"

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # The owning cache supplies the block directly; memory stays
            # stale and the owner keeps ownership (shared-dirty).
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY, ops=((BusOp.CACHE_SUPPLY, 1),)
            )
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        sharing.add_holder(block, cache)
        return AccessOutcome(event=event, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            if sharing.remote_holders(block, cache):
                # The shared line is raised: broadcast a one-word update.
                # The writer becomes the owner; nobody is invalidated.
                sharing.set_dirty(block, cache)
                return AccessOutcome(
                    event=Event.WH_DISTRIB, ops=((BusOp.WRITE_UPDATE, 1),)
                )
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WH_LOCAL)
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        # Write miss: fetch the block (from the owner if one exists), then
        # update the other copies if the block is shared.
        owner = self._remote_dirty_owner(cache, block)
        shared = bool(sharing.remote_holders(block, cache))
        if owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY
            ops = [(BusOp.CACHE_SUPPLY, 1)]
        elif shared:
            event = Event.WM_BLK_CLEAN
            ops = [(BusOp.MEM_ACCESS, 1)]
        else:
            event = Event.WM_UNCACHED
            ops = [(BusOp.MEM_ACCESS, 1)]
        if shared:
            ops.append((BusOp.WRITE_UPDATE, 1))
        sharing.add_holder(block, cache)
        sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=tuple(ops))

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _DRAGON_RULES)
