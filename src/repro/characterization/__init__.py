"""Versioned hardware characterization files: costs as data, not code.

The paper's central methodological trick (Section 4.1) is that event
frequencies are independent of hardware costs — one simulation per
protocol, then costs vary freely.  This package is the hardware half of
that split made data-driven: a characterization file describes one
hardware model (Table 1 timings, per-op bus-cycle costs, per-op energy in
nanojoules, plus name/version metadata), and a
:class:`~repro.interconnect.bus.BusCostModel` is *constructed from* it
rather than hard-coded.

The paper's two Table 2 bus organisations ship as bundled files
(``data/pipelined.toml`` and ``data/non_pipelined.toml``);
:func:`~repro.interconnect.bus.pipelined_bus` /
:func:`~repro.interconnect.bus.nonpipelined_bus` are thin wrappers that
load them.  User files (TOML or ESL-style sectioned CSV) plug into the
sweep runner as a first-class axis: ``RunSpec.characterization`` folds the
file's :meth:`Characterization.content_hash` into the cache key, and the
sweep's re-pricing path weights one set of simulated counters under every
characterization without re-simulating (see ``docs/characterization.md``).
"""

from .schema import Characterization, CharacterizationError
from .loader import (
    BUILTIN_CHARACTERIZATIONS,
    builtin_bus_model,
    builtin_characterization,
    builtin_names,
    load_characterization,
)

__all__ = [
    "BUILTIN_CHARACTERIZATIONS",
    "Characterization",
    "CharacterizationError",
    "builtin_bus_model",
    "builtin_characterization",
    "builtin_names",
    "load_characterization",
]
