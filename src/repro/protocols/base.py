"""Coherence-protocol framework.

A protocol is a state machine over the system-wide
:class:`~repro.memory.sharing.SharingTable`.  For each data reference it

1. classifies the reference into a Table 4 :class:`~repro.protocols.events.Event`,
2. performs the state transitions its policy prescribes, and
3. reports the primitive bus operations the reference cost as an
   :class:`AccessOutcome`.

The split mirrors the paper's observation (Section 5) that a consistency
protocol is "a specification of the state changes of the data in the caches
and the protocol which is used to accomplish that specification": two
protocols with the same state-change specification (Dir0B and WTI) produce
identical event frequencies and differ only in the bus operations attached.

The cost conventions shared by all protocols (derived in Section 4.3 and
validated against the paper's Table 5 cumulative numbers, see DESIGN.md):

* first references to a block are *free* — they happen in a uniprocessor
  infinite cache too and are excluded from the overhead metric;
* a miss satisfied by memory costs one ``MEM_ACCESS``;
* a miss satisfied by a remote dirty copy costs ``FLUSH_REQUEST`` +
  ``WRITE_BACK`` (the requester snarfs the written-back data);
* every cached copy a protocol must remove costs one ``INVALIDATE`` when
  directed, or a single ``BROADCAST_INVALIDATE`` when broadcast;
* directory checks that accompany a miss are overlapped
  (``DIR_CHECK_OVERLAPPED``, free); standalone checks cost ``DIR_CHECK``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import TransitionTable

from ..interconnect.bus import BusOp
from ..memory.sharing import NO_OWNER, SharingTable, bit_count
from ..trace.record import AccessType
from .events import Event

__all__ = ["AccessOutcome", "CoherenceProtocol", "OpList", "NO_OPS"]

#: The bus operations one reference performed: ``(op, count)`` pairs.
OpList = Tuple[Tuple[BusOp, int], ...]

NO_OPS: OpList = ()


@dataclass(frozen=True)
class AccessOutcome:
    """What one memory reference did: its event, bus ops, and fan-out.

    ``invalidation_fanout`` is set (possibly to 0) exactly when the reference
    is a write to a previously-clean block — the population Figure 1 builds
    its histogram over.
    """

    event: Event
    ops: OpList = NO_OPS
    invalidation_fanout: Optional[int] = None

    def op_count(self, op: BusOp) -> int:
        return sum(count for kind, count in self.ops if kind is op)

    @property
    def used_bus(self) -> bool:
        """True when the reference consumed at least one bus cycle's op.

        Overlapped directory checks are free and do not constitute a bus
        transaction on their own.
        """
        return any(
            kind is not BusOp.DIR_CHECK_OVERLAPPED and count > 0
            for kind, count in self.ops
        )


_INSTR_OUTCOME = AccessOutcome(event=Event.INSTR)


class CoherenceProtocol(abc.ABC):
    """Base class: per-reference classification + state transition + costing.

    Subclasses implement :meth:`_read` and :meth:`_write` for data
    references; instruction fetches never generate coherence traffic
    (Section 4) and are handled here.

    Attributes:
        n_caches: number of caches (= sharing units) in the system.
        sharing: the authoritative holder/dirty state for every block.
    """

    #: short identifier, e.g. ``"dir0b"`` (subclasses must override)
    name: ClassVar[str] = "abstract"
    #: presentation label, e.g. ``"Dir0B"``
    label: ClassVar[str] = "abstract"
    #: ``"directory"`` or ``"snoopy"``
    kind: ClassVar[str] = "abstract"

    def __init__(self, n_caches: int) -> None:
        if n_caches <= 0:
            raise ValueError(f"n_caches must be positive, got {n_caches}")
        self.n_caches = n_caches
        self.sharing = SharingTable()
        self._seen: Set[int] = set()

    # -- public API -----------------------------------------------------------

    def access(self, cache: int, access: AccessType, block: int) -> AccessOutcome:
        """Process one reference by ``cache`` to ``block``."""
        if access is AccessType.INSTR:
            return _INSTR_OUTCOME
        if not 0 <= cache < self.n_caches:
            raise ValueError(
                f"cache index {cache} out of range for {self.n_caches} caches"
            )
        first_ref = block not in self._seen
        if first_ref:
            self._seen.add(block)
        if access is AccessType.READ:
            return self._read(cache, block, first_ref)
        return self._write(cache, block, first_ref)

    def evict(self, cache: int, block: int) -> OpList:
        """Displace ``block`` from ``cache`` (finite-cache extension).

        Returns the bus operations the displacement cost: a dirty victim is
        written back; clean victims vanish silently.  Subclasses with extra
        per-block directory state should override and clean it up.
        """
        if not self.sharing.is_held(block, cache):
            return NO_OPS
        dirty = self.sharing.is_dirty_in(block, cache)
        self.sharing.remove_holder(block, cache)
        if dirty:
            return ((BusOp.WRITE_BACK, 1),)
        return NO_OPS

    def seen(self, block: int) -> bool:
        """Whether the trace has referenced ``block`` before."""
        return block in self._seen

    def compile_table(self) -> Optional["TransitionTable"]:
        """Compile this protocol's transition function into a lookup table.

        The fast backend (:mod:`repro.core.fastsim`) uses the table to
        process references without calling :meth:`access`.  Protocols whose
        per-block state fits the table vocabulary (sharing mask + dirty
        owner + at most one cache-valued annotation) override this; the
        default ``None`` routes the fast backend through the reference
        pipeline instead.  Subclasses that *change* transition behaviour
        relative to a compilable parent must override back to ``None``
        unless they supply their own table.
        """
        return None

    # -- helpers for subclasses ------------------------------------------------

    def _remote_mask(self, cache: int, block: int) -> int:
        return self.sharing.remote_holders(block, cache)

    @staticmethod
    def _fanout(mask: int) -> int:
        return bit_count(mask)

    def _remote_dirty_owner(self, cache: int, block: int) -> int:
        """Dirty owner of ``block`` if it is a cache other than ``cache``."""
        owner = self.sharing.dirty_owner(block)
        if owner == cache:
            return NO_OWNER
        return owner

    # -- protocol policy ---------------------------------------------------------

    @abc.abstractmethod
    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        """Handle a data read."""

    @abc.abstractmethod
    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        """Handle a data write."""

    # -- introspection ----------------------------------------------------------

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """Directory storage per main-memory block, in bits (Section 6).

        Snoopy protocols keep no central directory and return 0.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(n_caches={self.n_caches})"
