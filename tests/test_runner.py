"""Tests for the parallel sweep runner: specs, cache, fan-out, metrics."""

import pickle

import pytest

from repro.analysis.tables import table4, table5
from repro.core.comparison import run_standard_comparison
from repro.protocols.registry import PAPER_CORE_SCHEMES
from repro.runner import ResultCache, RunSpec, run_sweep, sweep_grid
from repro.trace.stream import SharingModel

#: Tiny traces so the whole module stays fast.
SCALE = 1.0 / 1024.0


class TestRunSpec:
    def test_normalises_names(self):
        spec = RunSpec(protocol="DIR0B", trace="pops", scale=SCALE)
        assert spec.protocol == "dir0b" and spec.trace == "POPS"

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            RunSpec(protocol="nonesuch", trace="POPS")

    def test_unknown_protocol_suggests_close_name(self):
        with pytest.raises(ValueError, match="did you mean 'dir0b'"):
            RunSpec(protocol="dir0bb", trace="POPS")

    @pytest.mark.parametrize("spelling", [None, "", "inf", "infinite", "INF"])
    def test_infinite_geometry_spellings_normalise_to_none(self, spelling):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE, geometry=spelling)
        assert spec.geometry is None
        assert spec.build_geometry() is None

    def test_geometry_accepts_instance_and_spec_string(self):
        from repro.memory import CacheGeometry

        by_string = RunSpec(
            protocol="dir0b", trace="POPS", scale=SCALE, geometry="64X4"
        )
        by_instance = RunSpec(
            protocol="dir0b",
            trace="POPS",
            scale=SCALE,
            geometry=CacheGeometry(n_sets=64, associativity=4),
        )
        assert by_string.geometry == by_instance.geometry == "64x4"
        assert by_string.build_geometry() == CacheGeometry(64, 4)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="bad cache geometry"):
            RunSpec(protocol="dir0b", trace="POPS", scale=SCALE, geometry="64y4")

    def test_rejects_unknown_trace(self):
        with pytest.raises(ValueError, match="unknown trace"):
            RunSpec(protocol="dir0b", trace="NOPE")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            RunSpec(protocol="dir0b", trace="POPS", scale=0)
        with pytest.raises(ValueError):
            RunSpec(protocol="dir0b", trace="POPS", n_caches=0)
        with pytest.raises(ValueError):
            RunSpec(protocol="dir0b", trace="POPS", block_size=-4)

    def test_run_matches_direct_simulation(self):
        from repro.core import simulate
        from repro.protocols import create_protocol
        from repro.trace import standard_trace

        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        direct = simulate(
            create_protocol("dir0b", 4),
            standard_trace("POPS", scale=SCALE),
            trace_name="POPS",
        )
        via_spec = spec.run()
        assert via_spec.counters.events == direct.counters.events
        assert via_spec.counters.ops.ops == direct.counters.ops.ops

    def test_is_picklable(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestCacheKey:
    def test_stable_across_instances(self):
        a = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        b = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize(
        "changed",
        [
            dict(protocol="dragon"),
            dict(trace="THOR"),
            dict(scale=SCALE / 2),
            dict(n_caches=8),
            dict(block_size=32),
            dict(sharing_model=SharingModel.PROCESSOR),
            dict(seed=99),
            dict(geometry="64x4"),
            dict(characterization="non-pipelined"),
        ],
    )
    def test_every_axis_changes_the_key(self, changed):
        base = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        other = RunSpec(
            **{
                "protocol": base.protocol,
                "trace": base.trace,
                "scale": base.scale,
                "n_caches": base.n_caches,
                "block_size": base.block_size,
                "sharing_model": base.sharing_model,
                "seed": base.seed,
                "geometry": base.geometry,
                **changed,
            }
        )
        assert base.cache_key() != other.cache_key()

    def test_package_version_bump_invalidates_the_key(self, monkeypatch):
        """Upgrading repro must retire every previously cached result."""
        import repro.runner.spec as spec_module

        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        before = spec.cache_key()
        monkeypatch.setattr(spec_module, "PACKAGE_VERSION", "999.0.0")
        assert spec.cache_key() != before

    def test_schema_revision_bump_invalidates_the_key(self, monkeypatch):
        import repro.runner.spec as spec_module

        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        before = spec.cache_key()
        monkeypatch.setattr(
            spec_module,
            "CACHE_SCHEMA_VERSION",
            spec_module.CACHE_SCHEMA_VERSION + 1,
        )
        assert spec.cache_key() != before

    def test_version_bump_misses_a_warm_cache(self, tmp_path, monkeypatch):
        import repro.runner.spec as spec_module

        cache = ResultCache(tmp_path)
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        cache.put(spec.cache_key(), spec.run())
        assert cache.get(spec.cache_key()) is not None
        monkeypatch.setattr(spec_module, "PACKAGE_VERSION", "999.0.0")
        assert cache.get(spec.cache_key()) is None


class TestSweepGrid:
    def test_cross_product_shape_and_order(self):
        specs = sweep_grid(
            ("dir0b", "dragon"), traces=("POPS", "THOR"), scale=SCALE
        )
        assert len(specs) == 4
        assert [(s.protocol, s.trace) for s in specs] == [
            ("dir0b", "POPS"),
            ("dir0b", "THOR"),
            ("dragon", "POPS"),
            ("dragon", "THOR"),
        ]

    def test_block_size_axis(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE, block_sizes=(16, 32)
        )
        assert [s.block_size for s in specs] == [16, 32]

    def test_geometry_axis(self):
        specs = sweep_grid(
            ("dir0b",),
            traces=("POPS",),
            scale=SCALE,
            geometries=(None, "8x2", "64x4"),
        )
        assert [s.geometry for s in specs] == [None, "8x2", "64x4"]

    def test_empty_protocols_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid(())


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        key = spec.cache_key()
        assert cache.get(key) is None
        result = spec.run()
        cache.put(key, result)
        replayed = cache.get(key)
        assert replayed is not None
        assert replayed.counters.events == result.counters.events
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        key = spec.cache_key()
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bogus").write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get("bogus") is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        cache.put(spec.cache_key(), spec.run())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.hit_rate == 0.0
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        cache.get(spec.cache_key())
        cache.put(spec.cache_key(), spec.run())
        cache.get(spec.cache_key())
        assert cache.hit_rate == 0.5


class TestRunSweep:
    def test_rejects_empty_grid_and_bad_jobs(self):
        with pytest.raises(ValueError):
            run_sweep([])
        with pytest.raises(ValueError):
            run_sweep(sweep_grid(("dir0b",), scale=SCALE), jobs=0)

    def test_serial_and_parallel_are_bit_identical(self):
        specs = sweep_grid(("dir0b", "dragon"), scale=SCALE)
        serial = run_sweep(specs, jobs=1)
        parallel = run_sweep(specs, jobs=2)
        assert serial.cell_table() == parallel.cell_table()
        assert (
            table5(serial.comparison()).render()
            == table5(parallel.comparison()).render()
        )
        assert (
            table4(serial.comparison()).render()
            == table4(parallel.comparison()).render()
        )
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.result.counters.events == right.result.counters.events
            assert left.result.counters.ops.ops == right.result.counters.ops.ops

    def test_finite_geometry_grid_is_bit_identical_across_jobs(self):
        """Acceptance: sweeps including finite geometries match serially."""
        specs = sweep_grid(
            ("dir0b", "wti"),
            traces=("POPS",),
            scale=SCALE,
            geometries=(None, "8x2"),
        )
        serial = run_sweep(specs, jobs=1)
        parallel = run_sweep(specs, jobs=2)
        assert serial.cell_table() == parallel.cell_table()
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.result.counters.events == right.result.counters.events
            assert left.result.counters.ops.ops == right.result.counters.ops.ops
            assert left.result.counters.evictions == right.result.counters.evictions

    def test_warm_cache_rerun_of_table5_grid_simulates_nothing(self, tmp_path):
        """Acceptance: the full Table 5 grid, rerun warm, hits cache only."""
        specs = sweep_grid(PAPER_CORE_SCHEMES, scale=SCALE)
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(specs, cache=cache)
        assert cold.simulations == len(specs)
        assert cold.cache_hits == 0
        warm = run_sweep(specs, cache=cache)
        assert warm.simulations == 0
        assert warm.cache_hits == len(specs)
        assert (
            table5(warm.comparison()).render()
            == table5(cold.comparison()).render()
        )

    def test_progress_hook_fires_once_per_cell(self):
        specs = sweep_grid(("dir0b",), scale=SCALE)
        seen = []
        run_sweep(specs, progress=seen.append)
        assert [outcome.spec for outcome in seen] == specs
        assert all(not outcome.cached for outcome in seen)

    def test_metrics_accounting(self, tmp_path):
        specs = sweep_grid(("dir0b",), traces=("POPS",), scale=SCALE)
        cache = ResultCache(tmp_path)
        cold = run_sweep(specs, cache=cache)
        assert cold.cells == 1
        assert cold.simulated_references == cold.total_references > 0
        assert cold.refs_per_sec > 0
        assert cold.worker_timings()  # one worker, one cell
        warm = run_sweep(specs, cache=cache)
        assert warm.cache_hit_rate == 1.0
        assert warm.simulated_references == 0
        assert warm.worker_timings() == {}
        rendered = warm.render_metrics()
        assert "1 hits" in rendered and "100.0% hit rate" in rendered

    def test_comparison_rejects_collapsed_grid_violations(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE, block_sizes=(16, 32)
        )
        report = run_sweep(specs)
        with pytest.raises(ValueError, match="multiple results"):
            report.comparison()

    def test_comparison_rejects_incomplete_cross_product(self):
        specs = [
            RunSpec(protocol="dir0b", trace="POPS", scale=SCALE),
            RunSpec(protocol="dir0b", trace="THOR", scale=SCALE),
            RunSpec(protocol="dragon", trace="POPS", scale=SCALE),
        ]
        report = run_sweep(specs)
        with pytest.raises(ValueError, match="full cross product"):
            report.comparison()


class TestStandardComparisonViaRunner:
    def test_runner_path_matches_serial_path(self, tmp_path):
        serial = run_standard_comparison(("dir0b", "dragon"), scale=SCALE)
        parallel = run_standard_comparison(
            ("dir0b", "dragon"),
            scale=SCALE,
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
        )
        assert table5(serial).render() == table5(parallel).render()
        assert table4(serial).render() == table4(parallel).render()
        # and the cached rerun still matches
        cached = run_standard_comparison(
            ("dir0b", "dragon"), scale=SCALE, cache_dir=str(tmp_path / "cache")
        )
        assert table5(cached).render() == table5(serial).render()
