"""Tests for the unified reference pipeline: stages, wrappers, composition.

The behavioural equivalences (finite-vs-infinite counters, chunk merging)
live in test_runner_merge_properties.py; this module exercises the pipeline
API itself — stage selection, oracle wrapping, state threading, and the
composability the refactor exists to provide.
"""

import pytest

from repro.core.counters import SimulationCounters
from repro.core.pipeline import (
    GeometryStage,
    InfinitePassthrough,
    ReferencePipeline,
    SetAssociativeLRU,
)
from repro.memory.cache import CacheGeometry
from repro.protocols.registry import create_protocol
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile

_PROFILE = WorkloadProfile(name="PIPE", length=300, seed=11, processes=4)
_TRACE = list(SyntheticWorkload(_PROFILE).records())
_TINY = CacheGeometry(n_sets=4, associativity=2)


def _pipeline(**kwargs) -> ReferencePipeline:
    return ReferencePipeline(create_protocol("dir0b", 4), **kwargs)


class TestStageSelection:
    def test_no_geometry_means_no_stage(self):
        result = _pipeline().run(_TRACE, "PIPE")
        assert result.geometry is None
        assert result.evictions == 0

    def test_explicit_passthrough_is_equivalent_to_none(self):
        bare = _pipeline().run(_TRACE, "PIPE")
        passthrough = _pipeline(stage=InfinitePassthrough()).run(_TRACE, "PIPE")
        assert passthrough.geometry is None
        assert passthrough.counters.events == bare.counters.events
        assert passthrough.counters.ops.ops == bare.counters.ops.ops

    def test_geometry_builds_lru_stage_and_stamps_result(self):
        result = _pipeline(geometry=_TINY).run(_TRACE, "PIPE")
        assert result.geometry == "4x2"
        assert result.evictions > 0

    def test_custom_stage_overrides_geometry(self):
        class CountingStage(GeometryStage):
            spec = "custom"

            def __init__(self):
                self.before = 0
                self.after = 0

            def before_access(self, unit, block, counters):
                self.before += 1

            def after_access(self, unit, block):
                self.after += 1

        stage = CountingStage()
        result = _pipeline(stage=stage).run(_TRACE, "PIPE")
        assert result.geometry == "custom"
        data_refs = sum(1 for r in _TRACE if r.access.name != "INSTR")
        assert stage.before == stage.after == data_refs

    def test_instruction_fetches_bypass_the_stage(self):
        protocol = create_protocol("dir0b", 1)
        pipeline = ReferencePipeline(protocol, geometry=_TINY)
        stage = pipeline._stage
        from repro.trace.record import AccessType

        pipeline.step(0, AccessType.INSTR, 123, SimulationCounters())
        assert isinstance(stage, SetAssociativeLRU)
        assert not stage.caches[0].touch(123)

    def test_rejects_nonpositive_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            _pipeline(block_size=0)


class TestUnitResolution:
    def test_too_many_sharing_units_rejected(self):
        pipeline = ReferencePipeline(create_protocol("dir0b", 2))
        with pytest.raises(ValueError, match="more than 2 sharing units"):
            pipeline.run(_TRACE, "PIPE")

    def test_unit_registry_threads_across_chunks(self):
        whole = _pipeline().run(_TRACE, "PIPE")
        halves = _pipeline().run_chunks(
            [_TRACE[:150], _TRACE[150:]], "PIPE"
        )
        assert halves.counters.events == whole.counters.events


class TestOracleWrapping:
    def test_check_values_exposes_a_live_oracle(self):
        pipeline = _pipeline(check_values=True)
        assert pipeline.oracle is not None
        pipeline.run(_TRACE, "PIPE")
        assert pipeline.oracle.writes > 0
        pipeline.oracle.check_all_copies()  # coherent protocol: no raise

    def test_oracle_composes_with_finite_geometry(self):
        pipeline = _pipeline(check_values=True, geometry=_TINY)
        result = pipeline.run(_TRACE, "PIPE")
        assert result.geometry == "4x2" and result.evictions > 0
        pipeline.oracle.check_all_copies()

    def test_oracle_composes_with_chunking(self):
        pipeline = _pipeline(check_values=True)
        chunked = pipeline.run_chunks([_TRACE[:100], _TRACE[100:]], "PIPE")
        plain = _pipeline().run(_TRACE, "PIPE")
        assert chunked.counters.events == plain.counters.events
        pipeline.oracle.check_all_copies()


class TestInvariantCadence:
    def test_invariant_checks_run_on_schedule(self, monkeypatch):
        from repro.memory import SharingTable

        pipeline = _pipeline(check_invariants_every=50)
        calls = []
        original = SharingTable.check_invariants
        monkeypatch.setattr(
            SharingTable,
            "check_invariants",
            lambda self: calls.append(1) or original(self),
        )
        pipeline.run(_TRACE, "PIPE")
        assert len(calls) == len(_TRACE) // 50


class TestWrappersShareTheEngine:
    def test_simulate_is_a_pipeline_wrapper(self):
        from repro.core.simulator import simulate

        direct = _pipeline().run(_TRACE, "PIPE")
        wrapped = simulate(create_protocol("dir0b", 4), _TRACE, trace_name="PIPE")
        assert wrapped.counters.events == direct.counters.events
        assert wrapped.counters.ops.ops == direct.counters.ops.ops

    def test_simulate_finite_is_a_pipeline_wrapper(self):
        from repro.core.finite import simulate_finite

        direct = _pipeline(geometry=_TINY).run(_TRACE, "PIPE")
        wrapped = simulate_finite(
            create_protocol("dir0b", 4), _TRACE, _TINY, trace_name="PIPE"
        )
        assert wrapped.result.counters.events == direct.counters.events
        assert wrapped.evictions == direct.evictions
        assert wrapped.dirty_evictions == direct.dirty_evictions

    def test_every_wrapper_routes_through_the_one_feed_loop(self, monkeypatch):
        """Acceptance: simulate, simulate_chunks, simulate_finite and
        validate_coherence all drive ReferencePipeline.feed — the package's
        single reference-feed loop — rather than iterating traces
        themselves."""
        from repro.core.finite import simulate_finite
        from repro.core.oracle import validate_coherence
        from repro.core.simulator import simulate, simulate_chunks

        calls = []
        original = ReferencePipeline.feed

        def counting_feed(self, trace, counters):
            calls.append(1)
            return original(self, trace, counters)

        monkeypatch.setattr(ReferencePipeline, "feed", counting_feed)

        simulate(create_protocol("dir0b", 4), _TRACE)
        assert len(calls) == 1
        simulate_chunks(create_protocol("dir0b", 4), [_TRACE[:150], _TRACE[150:]])
        assert len(calls) == 3  # one feed per chunk
        simulate_finite(create_protocol("dir0b", 4), _TRACE, _TINY)
        assert len(calls) == 4
        validate_coherence(create_protocol("dir0b", 4), _TRACE)
        assert len(calls) == 5
