"""The Berkeley Ownership snoopy protocol.

Berkeley (Katz et al., the paper's reference [7]) is an invalidation,
copy-back protocol with **ownership**: the cache that last wrote a block
owns it and supplies it on other caches' misses, *without* updating main
memory — a dirty block read by another cache leaves the owner in an
owned-shared state rather than forcing a flush to memory.

Its state-change specification is the familiar multiple-clean / single-
writer model, so its event frequencies match Dir0B (the paper estimates
Berkeley's cost from the Dir0B frequencies by zeroing the directory-check
cost).  This class implements the state machine directly; differences from
Dir0B's costs are

* no directory checks at all (snooping replaces them);
* misses on owned blocks are supplied cache-to-cache with no write-back
  (a :data:`BusOp.CACHE_SUPPLY`, which on the pipelined bus costs the same
  as the flush-and-snarf — the paper's footnote that the optimisation "does
  not impact our performance metric in the pipelined bus");
* a write hit to a non-exclusive block raises a one-cycle bus invalidation
  signal unconditionally, because without a directory the writer cannot know
  whether copies exist.
"""

from __future__ import annotations

from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER, bit_count
from ..base import AccessOutcome, CoherenceProtocol
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["Berkeley"]

_BERKELEY_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        # Owner supplies and stays owner (owned-shared); memory stays stale.
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.CACHE_SUPPLY, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
    ),
    Rule(
        write=True, event=Event.WH_BLK_DIRTY, held=True, dirty="local", fclass=0
    ),
    Rule(
        # Unowned or owned-shared: claim ownership with one bus signal, sent
        # even when no other copies exist (snooping cannot tell).
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        ops=((BusOp.BROADCAST_INVALIDATE, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.CACHE_SUPPLY, 1),),
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
    ),
)


class Berkeley(CoherenceProtocol):
    """Ownership-based snoopy protocol (Berkeley)."""

    name = "berkeley"
    label = "Berkeley"
    kind = "snoopy"

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # Owner supplies the block and stays owner (owned-shared);
            # memory remains stale.
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY, ops=((BusOp.CACHE_SUPPLY, 1),)
            )
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        sharing.add_holder(block, cache)
        return AccessOutcome(event=event, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            remote = sharing.remote_holders(block, cache)
            if sharing.is_dirty_in(block, cache) and not remote:
                # Owned exclusively: write locally.
                return AccessOutcome(event=Event.WH_BLK_DIRTY)
            # Unowned, or owned-shared: claim exclusive ownership with a
            # one-cycle invalidation signal on the bus.  The signal is sent
            # even when no other copies exist, because the cache cannot tell.
            fanout = bit_count(remote)
            sharing.set_only_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN,
                ops=((BusOp.BROADCAST_INVALIDATE, 1),),
                invalidation_fanout=fanout,
            )
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        # Write miss: read-for-ownership.  The single bus transaction both
        # fetches the data (from the owner if any, else memory) and
        # invalidates all other copies.
        owner = self._remote_dirty_owner(cache, block)
        remote = sharing.remote_holders(block, cache)
        if owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY
            ops = ((BusOp.CACHE_SUPPLY, 1),)
            fanout = None
        elif remote:
            event = Event.WM_BLK_CLEAN
            ops = ((BusOp.MEM_ACCESS, 1),)
            fanout = bit_count(remote)
        else:
            event = Event.WM_UNCACHED
            ops = ((BusOp.MEM_ACCESS, 1),)
            fanout = 0
        sharing.purge(block)
        sharing.add_holder(block, cache)
        sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops, invalidation_fanout=fanout)

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _BERKELEY_RULES)
