"""Unit tests for the Illinois (MESI) protocol."""

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.snoopy.illinois import Illinois
from repro.protocols.events import Event


@pytest.fixture
def proto():
    return Illinois(4)


class TestExclusiveState:
    def test_lonely_read_installs_exclusive(self, proto):
        run_ops(proto, [(0, "r", 5)])
        # First ref: exclusive.  The write that follows is silent (E -> M).
        outcomes = run_ops(proto, [(0, "w", 5)])
        assert outcomes[0].event is Event.WH_BLK_CLEAN
        assert outcomes[0].ops == ()
        assert proto.sharing.is_dirty_in(5, 0)

    def test_shared_read_is_not_exclusive(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5)])
        outcomes = run_ops(proto, [(1, "w", 5)])
        # S -> M needs the bus invalidation signal.
        assert dict(outcomes[0].ops) == {BusOp.BROADCAST_INVALIDATE: 1}

    def test_second_reader_downgrades_exclusivity(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5)])
        outcomes = run_ops(proto, [(0, "w", 5)])
        # Cache 0 is no longer exclusive even though it read first.
        assert outcomes[0].op_count(BusOp.BROADCAST_INVALIDATE) == 1


class TestCacheToCacheTransfer:
    def test_clean_blocks_supplied_by_caches(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_CLEAN
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1}

    def test_uncached_blocks_come_from_memory(self, proto):
        run_ops(proto, [(1, "w", 5), (1, "w", 6)])
        # Evicting leaves nothing cached; loads must come from memory.
        proto.evict(1, 5)
        outcomes = run_ops(proto, [(0, "r", 5)])
        assert dict(outcomes[0].ops) == {BusOp.MEM_ACCESS: 1}

    def test_dirty_supplier_writes_memory_back(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.FLUSH_REQUEST: 1, BusOp.WRITE_BACK: 1}
        assert not proto.sharing.is_dirty(5)  # M -> S updates memory

    def test_write_miss_supplied_by_cache_when_shared(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (2, "r", 5), (0, "w", 5)])
        miss = outcomes[2]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1}
        assert proto.sharing.holders(5) == 0b0001


class TestMESIInvariant:
    def test_exclusive_is_always_sole(self, proto):
        import random

        from repro.trace.record import AccessType

        rng = random.Random(7)
        for _ in range(3000):
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(20),
            )
            for block, holder in proto._exclusive.items():
                assert proto.sharing.holders(block) == 1 << holder
        proto.sharing.check_invariants()
