"""Unit tests for the Firefly update-based protocol."""

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.snoopy.firefly import Firefly
from repro.protocols.events import Event


@pytest.fixture
def proto():
    return Firefly(4)


class TestUpdatesThroughMemory:
    def test_shared_write_is_a_write_through(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.event is Event.WH_DISTRIB
        assert dict(hit.ops) == {BusOp.WRITE_THROUGH: 1}
        assert proto.sharing.holder_count(5) == 2  # nobody invalidated

    def test_memory_never_stale_for_shared_blocks(self, proto):
        # Unlike Dragon, a shared block stays clean after updates: a third
        # reader is served by the caches but no flush is needed.
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        assert not proto.sharing.is_dirty(5)
        outcomes = run_ops(proto, [(2, "r", 5)])
        assert outcomes[0].event is Event.RM_BLK_CLEAN

    def test_exclusive_write_stays_local_and_dirty(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        assert outcomes[1].event is Event.WH_LOCAL
        assert outcomes[1].ops == ()
        assert proto.sharing.is_dirty_in(5, 0)

    def test_dirty_block_becomes_clean_when_shared(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (1, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.FLUSH_REQUEST: 1, BusOp.WRITE_BACK: 1}
        assert not proto.sharing.is_dirty(5)

    def test_write_miss_to_shared_block_updates_through(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1, BusOp.WRITE_THROUGH: 1}
        assert proto.sharing.holder_count(5) == 2

    def test_no_copy_is_ever_invalidated(self, proto):
        import random

        from repro.trace.record import AccessType

        rng = random.Random(11)
        high_water = {}
        for _ in range(3000):
            block = rng.randrange(20)
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                block,
            )
            count = proto.sharing.holder_count(block)
            assert count >= high_water.get(block, 0)
            high_water[block] = count


class TestFireflyVsDragon:
    def test_firefly_misses_never_need_owner_supply_twice(self):
        """Dragon keeps blocks dirty forever; Firefly cleans them on first
        sharing, so later misses are plain memory reads."""
        from repro.protocols.snoopy.dragon import Dragon

        ops = [(0, "w", 5), (1, "r", 5), (2, "r", 5)]
        firefly_out = run_ops(Firefly(4), ops)
        dragon_out = run_ops(Dragon(4), ops)
        # The third cache's miss: Dragon from the owner, Firefly from the
        # clean-shared caches.
        assert dict(dragon_out[2].ops) == {BusOp.CACHE_SUPPLY: 1}
        assert firefly_out[2].event is Event.RM_BLK_CLEAN
