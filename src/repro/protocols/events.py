"""The reference-event taxonomy of the paper's Table 4.

Every memory reference a protocol processes is classified into exactly one
event.  The taxonomy follows the legend of Table 4:

======================  ====================================================
event                   meaning
======================  ====================================================
``INSTR``               instruction fetch
``READ_HIT``            data read, block resident
``RM_BLK_CLEAN``        read miss, block clean in another cache
``RM_BLK_DIRTY``        read miss, block dirty in another cache
``RM_UNCACHED``         read miss, block in no cache (but seen before)
``RM_FIRST_REF``        read miss, first reference to the block in the trace
``WRITE_HIT``           write hit (protocols that do not subdivide hits)
``WH_BLK_CLEAN``        write hit, block clean in the writing cache
``WH_BLK_DIRTY``        write hit, block dirty in the writing cache
``WH_DISTRIB``          write hit, block also in another cache (Dragon)
``WH_LOCAL``            write hit, block in no other cache (Dragon)
``WM_BLK_CLEAN``        write miss, block clean in another cache
``WM_BLK_DIRTY``        write miss, block dirty in another cache
``WM_UNCACHED``         write miss, block in no cache (but seen before)
``WM_FIRST_REF``        write miss, first reference to the block
======================  ====================================================

First references are classified separately because the paper's methodology
excludes their cost: they occur in a uniprocessor infinite cache as well, so
they are not multiprocessing overhead (Section 4).
"""

from __future__ import annotations

import enum
from typing import FrozenSet

__all__ = [
    "Event",
    "READ_MISS_EVENTS",
    "WRITE_MISS_EVENTS",
    "WRITE_HIT_EVENTS",
    "FIRST_REF_EVENTS",
]


class Event(enum.Enum):
    """Classification of one memory reference (Table 4 legend)."""

    INSTR = "instr"
    READ_HIT = "rd-hit"
    RM_BLK_CLEAN = "rm-blk-cln"
    RM_BLK_DIRTY = "rm-blk-drty"
    RM_UNCACHED = "rm-uncached"
    RM_FIRST_REF = "rm-first-ref"
    WRITE_HIT = "wrt-hit"
    WH_BLK_CLEAN = "wh-blk-cln"
    WH_BLK_DIRTY = "wh-blk-drty"
    WH_DISTRIB = "wh-distrib"
    WH_LOCAL = "wh-local"
    WM_BLK_CLEAN = "wm-blk-cln"
    WM_BLK_DIRTY = "wm-blk-drty"
    WM_UNCACHED = "wm-uncached"
    WM_FIRST_REF = "wm-first-ref"

    @property
    def is_read(self) -> bool:
        return self in _READ_EVENTS

    @property
    def is_write(self) -> bool:
        return self in _WRITE_EVENTS

    @property
    def is_miss(self) -> bool:
        return self in READ_MISS_EVENTS or self in WRITE_MISS_EVENTS

    @property
    def is_first_ref(self) -> bool:
        return self in FIRST_REF_EVENTS


#: Read misses, first references excluded.
READ_MISS_EVENTS: FrozenSet[Event] = frozenset(
    {Event.RM_BLK_CLEAN, Event.RM_BLK_DIRTY, Event.RM_UNCACHED}
)

#: Write misses, first references excluded.
WRITE_MISS_EVENTS: FrozenSet[Event] = frozenset(
    {Event.WM_BLK_CLEAN, Event.WM_BLK_DIRTY, Event.WM_UNCACHED}
)

#: All write-hit classifications.
WRITE_HIT_EVENTS: FrozenSet[Event] = frozenset(
    {
        Event.WRITE_HIT,
        Event.WH_BLK_CLEAN,
        Event.WH_BLK_DIRTY,
        Event.WH_DISTRIB,
        Event.WH_LOCAL,
    }
)

#: Globally-first references to a block (cost excluded by the methodology).
FIRST_REF_EVENTS: FrozenSet[Event] = frozenset(
    {Event.RM_FIRST_REF, Event.WM_FIRST_REF}
)

_READ_EVENTS: FrozenSet[Event] = (
    frozenset({Event.READ_HIT, Event.RM_FIRST_REF}) | READ_MISS_EVENTS
)
_WRITE_EVENTS: FrozenSet[Event] = (
    WRITE_HIT_EVENTS | WRITE_MISS_EVENTS | frozenset({Event.WM_FIRST_REF})
)
