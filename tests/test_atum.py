"""Unit tests for the ATUM-style trace file formats."""

import pytest

from conftest import record
from repro.trace.atum import (
    TraceFormatError,
    read_binary,
    read_text,
    write_binary,
    write_text,
)
from repro.trace.record import AccessType, TraceRecord


def _sample():
    return [
        record(0, kind="i", address=0x1000),
        record(1, pid=5, kind="r", address=0x2010, spin=True),
        record(2, pid=6, kind="w", address=0x3020, os=True),
        record(3, kind="r", address=0xFFFF_FFFF_0),
    ]


class TestTextFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        count = write_text(path, _sample())
        assert count == 4
        assert list(read_text(path)) == _sample()

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0 0 R 0x10\n 0 0 W 0x20 # trailing\n")
        records = list(read_text(path))
        assert len(records) == 2
        assert records[1].access is AccessType.WRITE

    def test_flags_parsed(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 R 0x10 LS\n")
        (rec,) = read_text(path)
        assert rec.is_lock_spin and rec.is_os

    def test_bad_field_count_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 R\n")
        with pytest.raises(TraceFormatError, match="expected 4 or 5 fields"):
            list(read_text(path))

    def test_bad_access_code_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 X 0x10\n")
        with pytest.raises(TraceFormatError):
            list(read_text(path))

    def test_unknown_flag_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 R 0x10 Q\n")
        with pytest.raises(TraceFormatError, match="unknown flags"):
            list(read_text(path))

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 R 256\n")
        (rec,) = read_text(path)
        assert rec.address == 256


class TestBinaryFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.bin"
        count = write_binary(path, _sample())
        assert count == 4
        assert list(read_binary(path)) == _sample()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert write_binary(path, []) == 0
        assert list(read_binary(path)) == []

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b"NOTATUM!" + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(read_binary(path))

    def test_truncated_record_raises(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_binary(path, _sample())
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary(path))

    def test_large_addresses_survive(self, tmp_path):
        path = tmp_path / "trace.bin"
        big = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=2**60)
        write_binary(path, [big])
        assert list(read_binary(path)) == [big]

    def test_reading_is_lazy(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_binary(path, _sample())
        iterator = read_binary(path)
        assert next(iterator) == _sample()[0]
