"""Unit tests for the multi-protocol comparison runner."""

import pytest

from conftest import trace_of
from repro.core.comparison import run_comparison, run_standard_comparison
from repro.interconnect.bus import Table5Category, pipelined_bus


def _factories():
    """Two tiny deterministic traces."""
    a = trace_of(
        [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0), (2, "w", 16)]
    )
    b = trace_of([(0, "w", 0), (1, "r", 0), (1, "w", 0), (0, "r", 0)])
    return {"A": lambda: iter(list(a)), "B": lambda: iter(list(b))}


class TestRunComparison:
    def test_cross_product_executed(self):
        comparison = run_comparison(
            ("dir0b", "wti"), _factories(), n_caches=4
        )
        assert set(comparison.protocols) == {"dir0b", "wti"}
        assert set(comparison.traces) == {"A", "B"}
        assert comparison.result("dir0b", "A").references == 5

    def test_average_cycles_is_mean_of_traces(self):
        comparison = run_comparison(("dir0b",), _factories(), n_caches=4)
        bus = pipelined_bus()
        per_trace = comparison.per_trace_cycles("dir0b", bus)
        assert comparison.average_cycles("dir0b", bus) == pytest.approx(
            sum(per_trace.values()) / 2
        )

    def test_category_cycles_sum_to_average(self):
        comparison = run_comparison(("dir1nb",), _factories(), n_caches=4)
        bus = pipelined_bus()
        by_category = comparison.average_category_cycles("dir1nb", bus)
        assert sum(by_category.values()) == pytest.approx(
            comparison.average_cycles("dir1nb", bus)
        )
        assert set(by_category) == set(Table5Category)

    def test_event_percent_averaging(self):
        comparison = run_comparison(("dir0b",), _factories(), n_caches=4)
        instr = comparison.average_event_percent("dir0b", "instr")
        assert instr == 0.0  # no instruction fetches in these traces

    def test_pooled_histogram(self):
        comparison = run_comparison(("dir0b",), _factories(), n_caches=4)
        pooled = comparison.pooled_invalidation_histogram("dir0b")
        assert pooled.total >= 1

    def test_requires_protocols_and_traces(self):
        with pytest.raises(ValueError):
            run_comparison((), _factories(), n_caches=4)
        with pytest.raises(ValueError):
            run_comparison(("dir0b",), {}, n_caches=4)

    def test_custom_protocol_factory(self):
        from repro.protocols.directory.dirinb import DiriNB

        comparison = run_comparison(
            ("anything",),
            _factories(),
            n_caches=4,
            protocol_factory=lambda name, n: DiriNB(n, pointers=2),
        )
        assert comparison.result("anything", "A").protocol_name == "dirinb"


class TestStandardComparison:
    def test_runs_paper_schemes_on_three_traces(self):
        comparison = run_standard_comparison(("dir0b",), scale=1 / 512)
        assert tuple(comparison.traces) == ("POPS", "THOR", "PERO")
        assert comparison.result("dir0b", "POPS").references > 0
