"""Property-based tests over all coherence protocols (hypothesis).

Random access sequences are fed to every registered protocol; the paper's
structural invariants must hold at every step:

* single writer: a dirty block has exactly one holder;
* hits are free for invalidation protocols' reads;
* event classification agrees with the sharing state;
* protocols sharing a state-change specification emit identical events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.interconnect.bus import BusOp
from repro.protocols.events import Event
from repro.protocols.registry import PROTOCOLS, create_protocol
from repro.trace.record import AccessType

N_CACHES = 4
N_BLOCKS = 12

accesses = st.tuples(
    st.integers(min_value=0, max_value=N_CACHES - 1),
    st.sampled_from((AccessType.READ, AccessType.WRITE)),
    st.integers(min_value=0, max_value=N_BLOCKS - 1),
)
sequences = st.lists(accesses, min_size=1, max_size=120)

ALL_PROTOCOLS = sorted(PROTOCOLS)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
class TestUniversalInvariants:
    @given(ops=sequences)
    @settings(max_examples=30, deadline=None)
    def test_single_writer_and_holder_consistency(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        for cache, access, block in ops:
            proto.access(cache, access, block)
            proto.sharing.check_invariants()
            for b in range(N_BLOCKS):
                if proto.sharing.is_dirty(b) and not name.startswith(
                    ("dragon", "berkeley", "competitive")
                ):
                    # Update/ownership protocols (Dragon, Berkeley, the
                    # competitive hybrid) keep an *owner* alongside sharers
                    # (memory stays stale); every flush-on-read protocol
                    # keeps dirty blocks exclusive.
                    assert proto.sharing.holder_count(b) == 1

    @given(ops=sequences)
    @settings(max_examples=30, deadline=None)
    def test_accessor_always_ends_up_holding_the_block(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        for cache, access, block in ops:
            proto.access(cache, access, block)
            assert proto.sharing.is_held(block, cache)

    @given(ops=sequences)
    @settings(max_examples=30, deadline=None)
    def test_read_hits_are_free(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        for cache, access, block in ops:
            outcome = proto.access(cache, access, block)
            if outcome.event is Event.READ_HIT:
                assert outcome.ops == ()

    @given(ops=sequences)
    @settings(max_examples=30, deadline=None)
    def test_first_reference_classification(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        seen = set()
        for cache, access, block in ops:
            outcome = proto.access(cache, access, block)
            if block not in seen:
                assert outcome.event in (Event.RM_FIRST_REF, Event.WM_FIRST_REF)
                seen.add(block)
            else:
                assert not outcome.event.is_first_ref

    @given(ops=sequences)
    @settings(max_examples=30, deadline=None)
    def test_fanout_reported_exactly_for_writes_to_clean_blocks(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        for cache, access, block in ops:
            before = proto.sharing.remote_holders(block, cache)
            held_clean = proto.sharing.is_held(
                block, cache
            ) and not proto.sharing.is_dirty_in(block, cache)
            outcome = proto.access(cache, access, block)
            if outcome.event is Event.WH_BLK_CLEAN and held_clean:
                assert outcome.invalidation_fanout == bin(before).count("1")

    @given(ops=sequences)
    @settings(max_examples=20, deadline=None)
    def test_outcome_ops_are_wellformed(self, name, ops):
        proto = create_protocol(name, N_CACHES)
        for cache, access, block in ops:
            outcome = proto.access(cache, access, block)
            for op, count in outcome.ops:
                assert isinstance(op, BusOp)
                assert count >= 1


class TestCrossProtocolEquivalences:
    """Protocols sharing a state-change specification agree on events."""

    @given(ops=sequences)
    @settings(max_examples=40, deadline=None)
    def test_multi_copy_family_events_match(self, ops):
        protos = [
            create_protocol(name, N_CACHES)
            for name in ("dir0b", "dirnnb", "dir1b", "dir2b", "tang", "yenfu", "coarse")
        ]
        for op in ops:
            events = {proto.access(*op).event for proto in protos}
            assert len(events) == 1

    @given(ops=sequences)
    @settings(max_examples=40, deadline=None)
    def test_dirinb1_state_matches_dir1nb(self, ops):
        a = create_protocol("dir1nb", N_CACHES)
        b = create_protocol("dir2nb", N_CACHES)  # warm import path
        from repro.protocols.directory.dirinb import DiriNB

        b = DiriNB(N_CACHES, pointers=1)
        for op in ops:
            a.access(*op)
            b.access(*op)
        for block in range(N_BLOCKS):
            assert a.sharing.holders(block) == b.sharing.holders(block)
            assert a.sharing.dirty_owner(block) == b.sharing.dirty_owner(block)

    @given(ops=sequences)
    @settings(max_examples=40, deadline=None)
    def test_dragon_holder_sets_are_supersets_of_everyone(self, ops):
        """Dragon never invalidates, so its holder set for any block is a
        superset of every invalidation protocol's."""
        dragon = create_protocol("dragon", N_CACHES)
        dir0b = create_protocol("dir0b", N_CACHES)
        for op in ops:
            dragon.access(*op)
            dir0b.access(*op)
        for block in range(N_BLOCKS):
            dragon_mask = dragon.sharing.holders(block)
            dir0b_mask = dir0b.sharing.holders(block)
            assert dir0b_mask & ~dragon_mask == 0

    @given(ops=sequences)
    @settings(max_examples=40, deadline=None)
    def test_wti_memory_is_never_stale(self, ops):
        wti = create_protocol("wti", N_CACHES)
        for op in ops:
            wti.access(*op)
            for block in range(N_BLOCKS):
                assert not wti.sharing.is_dirty(block)
