"""Trace substrate: records, streams, file formats, and synthetic workloads.

This package provides everything the simulator consumes:

* :mod:`repro.trace.record` — the :class:`TraceRecord` unit and access types;
* :mod:`repro.trace.stream` — the methodology transforms (sharing model,
  lock-test exclusion, interleaving);
* :mod:`repro.trace.stats` — trace characterisation (paper Table 3);
* :mod:`repro.trace.atum` — ATUM-style trace file formats for real traces;
* :mod:`repro.trace.synthetic` — the parallel-workload engine;
* :mod:`repro.trace.workloads` — calibrated POPS / THOR / PERO profiles;
* :mod:`repro.trace.chunk` — chunked stream splitting for sharded runs.
"""

from .chunk import iter_chunks, split_at
from .classify import (
    BlockClass,
    BlockProfile,
    SharingProfile,
    classify_blocks,
    sharing_profile,
)
try:  # PackedTrace needs numpy (optional extra: pip install repro[fast])
    from .packed import PackedTrace
except ImportError:  # pragma: no cover - environment without numpy
    PackedTrace = None  # type: ignore[assignment, misc]
from .record import AccessType, DEFAULT_BLOCK_SIZE, TraceRecord, block_of
from .stats import TraceStats, collect_stats
from .stream import (
    SharingModel,
    exclude_lock_spins,
    exclude_os,
    interleave,
    map_to_sharing_units,
    materialize,
    take,
)
from .synthetic import Region, SyntheticWorkload, WorkloadProfile, generate_trace
from .workloads import (
    DEFAULT_SCALE,
    PAPER_TRACE_LENGTHS,
    pero_profile,
    pops_profile,
    standard_profile,
    standard_profiles,
    standard_trace,
    standard_trace_names,
    thor_profile,
)

__all__ = [
    "iter_chunks",
    "split_at",
    "BlockClass",
    "BlockProfile",
    "SharingProfile",
    "classify_blocks",
    "sharing_profile",
    "PackedTrace",
    "AccessType",
    "DEFAULT_BLOCK_SIZE",
    "TraceRecord",
    "block_of",
    "TraceStats",
    "collect_stats",
    "SharingModel",
    "exclude_lock_spins",
    "exclude_os",
    "interleave",
    "map_to_sharing_units",
    "materialize",
    "take",
    "Region",
    "SyntheticWorkload",
    "WorkloadProfile",
    "generate_trace",
    "DEFAULT_SCALE",
    "PAPER_TRACE_LENGTHS",
    "pero_profile",
    "pops_profile",
    "standard_profile",
    "standard_profiles",
    "standard_trace",
    "standard_trace_names",
    "thor_profile",
]
