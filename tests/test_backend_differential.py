"""Cross-backend differential harness: fast == reference, bit for bit.

The fast backend's whole claim is that its table kernel reconstructs
*exactly* the counters the reference feed loop produces.  This suite proves
it property-style: hypothesis generates adversarial little traces (arbitrary
interleavings of reads/writes/instruction fetches over a small block set,
up to ``n_caches`` sharing units) and every registered protocol is run
through both backends — under infinite and finite geometries, fed whole and
re-fed in arbitrarily chosen chunk splits — asserting equality of the full
counter state: events, bus-op multisets, transactions, references,
evictions, dirty evictions, and the Figure 1 fan-out histogram.

Protocols whose ``compile_table()`` is ``None`` exercise the fast backend's
reference-fidelity fallback path through the same assertions.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from conftest import trace_of
from repro.core import SimulationCounters, simulate
from repro.core.fastsim import HAS_NUMPY, FastPipeline
from repro.core.pipeline import ReferencePipeline
from repro.memory.cache import CacheGeometry
from repro.obs.probe import CollectingProbe, ReferenceProbe
from repro.protocols.registry import create_protocol, protocol_names
from repro.trace.record import TraceRecord

N_CACHES = 4
ALL_PROTOCOLS = sorted(protocol_names())

#: (unit, kind, block) specs; block addresses are block * 16 so the default
#: block size maps them back 1:1.  Blocks 0..5 over at most 4 units keeps
#: traces small while forcing heavy sharing, and the "2x1" / "2x2"
#: geometries force constant capacity evictions over 6 blocks.
_SPECS = st.lists(
    st.tuples(
        st.integers(0, N_CACHES - 1),
        st.sampled_from("rrwwi"),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=120,
)

_GEOMETRIES = st.sampled_from([None, "2x1", "2x2", "4x2"])


def _trace(specs) -> List[TraceRecord]:
    return trace_of([(unit, kind, block * 16) for unit, kind, block in specs])


def _geometry(spec):
    return None if spec is None else CacheGeometry.parse(spec)


def signature(counters: SimulationCounters):
    """Everything a SimulationCounters holds, as comparable plain data."""
    return {
        "events": dict(counters.events),
        "ops": dict(counters.ops.ops),
        "transactions": counters.ops.transactions,
        "references": counters.ops.references,
        "fanout": counters.fanout.as_dict(),
        "evictions": counters.evictions,
        "dirty_evictions": counters.dirty_evictions,
    }


def reference_signature(name, trace, geometry):
    pipeline = ReferencePipeline(create_protocol(name, N_CACHES), geometry=geometry)
    counters = SimulationCounters()
    pipeline.feed(trace, counters)
    return signature(counters)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_backends_bit_identical(name, data):
    """Fast == reference on arbitrary traces, geometries, and chunk splits."""
    trace = _trace(data.draw(_SPECS))
    geometry = _geometry(data.draw(_GEOMETRIES))
    expected = reference_signature(name, trace, geometry)

    # Whole-trace run.
    fast = FastPipeline(create_protocol(name, N_CACHES), geometry=geometry)
    counters = SimulationCounters()
    fast.feed(trace, counters)
    assert signature(counters) == expected

    # Chunked run, split at arbitrary points (empty chunks included).
    points = sorted(
        data.draw(st.lists(st.integers(0, len(trace)), min_size=0, max_size=3))
    )
    chunks, start = [], 0
    for point in points:
        chunks.append(trace[start:point])
        start = point
    chunks.append(trace[start:])
    fast = FastPipeline(create_protocol(name, N_CACHES), geometry=geometry)
    result = fast.run_chunks(chunks, "t")
    assert signature(result.counters) == expected


@pytest.mark.requires_numpy
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_packed_column_decode_bit_identical(name, data):
    """The vectorised PackedTrace path matches the reference loop too."""
    from repro.trace.packed import PackedTrace

    trace = _trace(data.draw(_SPECS))
    geometry = _geometry(data.draw(_GEOMETRIES))
    expected = reference_signature(name, trace, geometry)
    packed = PackedTrace.from_records(trace)

    fast = FastPipeline(create_protocol(name, N_CACHES), geometry=geometry)
    assert signature(fast.run(packed, "t").counters) == expected

    split = data.draw(st.integers(0, len(packed)))
    fast = FastPipeline(create_protocol(name, N_CACHES), geometry=geometry)
    result = fast.run_chunks([packed[:split], packed[split:]], "t")
    assert signature(result.counters) == expected


class TestCoverageAndModes:
    def test_every_protocol_constructs_a_fast_pipeline(self):
        for name in ALL_PROTOCOLS:
            FastPipeline(create_protocol(name, N_CACHES))

    def test_table_mode_covers_the_paper_core(self):
        # The schemes the paper's tables compare must all take the kernel.
        for name in ("dir0b", "dir1b", "dir4b", "dirnnb", "wti", "dragon"):
            assert FastPipeline(create_protocol(name, N_CACHES)).uses_table

    def test_uncompilable_protocols_fall_back(self):
        for name in ("coarse", "dir2nb", "competitive"):
            pipeline = FastPipeline(create_protocol(name, N_CACHES))
            assert not pipeline.uses_table

    def test_simulate_backend_knob(self, tiny_trace):
        ref = simulate(create_protocol("dir0b", 4), tiny_trace)
        fast = simulate(create_protocol("dir0b", 4), tiny_trace, backend="fast")
        assert signature(ref.counters) == signature(fast.counters)

    def test_unknown_backend_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            simulate(create_protocol("dir0b", 4), tiny_trace, backend="turbo")

    def test_table_mode_never_mutates_the_protocol(self, tiny_trace):
        protocol = create_protocol("dir0b", 4)
        FastPipeline(protocol).run(tiny_trace, "t")
        assert not protocol.sharing.holders(0)
        assert not protocol.seen(0)


class TestProbes:
    def test_reference_granularity_probe_forces_fidelity_path(self, tiny_trace):
        probe = CollectingProbe()
        pipeline = FastPipeline(create_protocol("dir0b", 4), probe=probe)
        assert not pipeline.uses_table
        result = pipeline.run(tiny_trace, "t")
        assert len(probe.events) == len(tiny_trace)
        assert result.references == len(tiny_trace)

    def test_batch_probe_keeps_table_mode_and_sees_batches(self, tiny_trace):
        seen = []

        class BatchProbe(ReferenceProbe):
            granularity = "batch"

            def on_batch(self, processed, counters):
                seen.append((processed, counters.references))

        pipeline = FastPipeline(create_protocol("dir0b", 4), probe=BatchProbe())
        assert pipeline.uses_table
        pipeline.run(tiny_trace, "t")
        assert seen and seen[-1][0] == len(tiny_trace)
        assert seen[-1][1] == len(tiny_trace)

    def test_attach_reference_probe_in_table_mode_rejected(self):
        pipeline = FastPipeline(create_protocol("dir0b", 4))
        assert pipeline.uses_table
        with pytest.raises(RuntimeError, match="reference-granularity probe"):
            pipeline.attach_probe(CollectingProbe())


class TestFidelityFallbacks:
    def test_check_values_routes_through_oracle(self, tiny_trace):
        pipeline = FastPipeline(create_protocol("dir0b", 4), check_values=True)
        assert not pipeline.uses_table
        assert pipeline.oracle is not None
        pipeline.run(tiny_trace, "t")

    def test_invariant_checks_force_fidelity_path(self, tiny_trace):
        pipeline = FastPipeline(
            create_protocol("dir0b", 4), check_invariants_every=1
        )
        assert not pipeline.uses_table
        pipeline.run(tiny_trace, "t")

    def test_unit_overflow_raises_like_reference(self):
        trace = _trace([(0, "r", 0), (1, "r", 0), (2, "r", 0)])
        pipeline = FastPipeline(create_protocol("dir0b", 2))
        with pytest.raises(ValueError, match="sharing units"):
            pipeline.run(trace, "t")

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs numpy")
    def test_unit_overflow_raises_on_packed_decode(self):
        from repro.trace.packed import PackedTrace

        packed = PackedTrace.from_records(
            _trace([(0, "r", 0), (1, "r", 0), (2, "r", 0)])
        )
        pipeline = FastPipeline(create_protocol("dir0b", 2))
        with pytest.raises(ValueError, match="sharing units"):
            pipeline.run(packed, "t")
