"""Smoke tests: every example script runs to completion.

Each example accepts a scale denominator; a large value keeps the runs to a
couple of seconds while still exercising the full code path.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
FAST_SCALE = "512"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamplesRun:
    def test_quickstart(self):
        result = _run("quickstart.py", FAST_SCALE)
        assert result.returncode == 0, result.stderr
        assert "Table 4" in result.stdout
        assert "effective processors" in result.stdout

    def test_spinlock_study(self):
        result = _run("spinlock_study.py", FAST_SCALE)
        assert result.returncode == 0, result.stderr
        assert "Dir1NB" in result.stdout
        assert "contention sweep" in result.stdout

    def test_scalability_study(self):
        result = _run("scalability_study.py", FAST_SCALE)
        assert result.returncode == 0, result.stderr
        assert "Dir1B" in result.stdout
        assert "omega" in result.stdout

    def test_custom_trace(self):
        result = _run("custom_trace.py")
        assert result.returncode == 0, result.stderr
        assert "PIPELINE" in result.stdout
        assert "evictions" in result.stdout

    def test_protocol_zoo(self):
        result = _run("protocol_zoo.py", FAST_SCALE)
        assert result.returncode == 0, result.stderr
        assert "softflush" in result.stdout
        assert "knee" in result.stdout

    def test_sweep_service(self):
        result = _run("sweep_service.py", FAST_SCALE)
        assert result.returncode == 0, result.stderr
        assert "deduped=True" in result.stdout
        assert "signatures bit-identical across submissions" in result.stdout
        assert "drained cleanly" in result.stdout

    def test_every_example_has_a_smoke_test(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        tested = {
            "quickstart.py",
            "spinlock_study.py",
            "scalability_study.py",
            "custom_trace.py",
            "protocol_zoo.py",
            "sweep_service.py",
        }
        assert scripts == tested
