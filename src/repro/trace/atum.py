"""ATUM-style trace file formats.

The paper's traces were captured with a multiprocessor extension of the ATUM
microcode tracing scheme (Section 4.4): an interleaved stream of addresses
annotated with CPU number and process identifier.  Real ATUM traces are not
redistributable, so this module defines two simple interchange formats with
the same information content, letting users plug captured traces into the
simulator:

* a **text format** (one record per line, ``#`` comments), convenient for
  hand-written fixtures and inspection, and
* a **binary format** (fixed 16-byte little-endian records behind a magic
  header), compact enough for multi-million-reference traces.

Both round-trip exactly through :class:`~repro.trace.record.TraceRecord`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .record import AccessType, TraceRecord

__all__ = [
    "write_text",
    "read_text",
    "write_binary",
    "read_binary",
    "TraceFormatError",
]

_ACCESS_CODES = {AccessType.INSTR: "I", AccessType.READ: "R", AccessType.WRITE: "W"}
_CODE_ACCESS = {code: access for access, code in _ACCESS_CODES.items()}

_BINARY_MAGIC = b"ATUMPY1\n"
_RECORD_STRUCT = struct.Struct("<BBHIQ")  # access+flags, cpu, pid, pad, address
_FLAG_LOCK_SPIN = 0x10
_FLAG_OS = 0x20
_ACCESS_MASK = 0x0F

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def write_text(path: PathLike, trace: Iterable[TraceRecord]) -> int:
    """Write a trace in text format; returns the number of records written.

    Line format: ``CPU PID ACCESS ADDRESS [FLAGS]`` where ``ACCESS`` is one of
    ``I``/``R``/``W``, ``ADDRESS`` is hexadecimal, and ``FLAGS`` is an
    optional combination of ``L`` (lock spin) and ``S`` (system/OS).
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro ATUM-style text trace v1\n")
        handle.write("# cpu pid access address [flags: L=lock-spin S=os]\n")
        for record in trace:
            flags = ""
            if record.is_lock_spin:
                flags += "L"
            if record.is_os:
                flags += "S"
            line = f"{record.cpu} {record.pid} {_ACCESS_CODES[record.access]} {record.address:#x}"
            if flags:
                line += f" {flags}"
            handle.write(line + "\n")
            count += 1
    return count


def read_text(path: PathLike) -> Iterator[TraceRecord]:
    """Lazily read a text-format trace file."""
    with open(path, "r", encoding="ascii") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (4, 5):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 4 or 5 fields, got {len(parts)}"
                )
            try:
                cpu = int(parts[0])
                pid = int(parts[1])
                access = _CODE_ACCESS[parts[2].upper()]
                address = int(parts[3], 0)
            except (ValueError, KeyError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            flags = parts[4].upper() if len(parts) == 5 else ""
            unknown = set(flags) - {"L", "S"}
            if unknown:
                raise TraceFormatError(
                    f"{path}:{lineno}: unknown flags {sorted(unknown)}"
                )
            yield TraceRecord(
                cpu=cpu,
                pid=pid,
                access=access,
                address=address,
                is_lock_spin="L" in flags,
                is_os="S" in flags,
            )


def write_binary(path: PathLike, trace: Iterable[TraceRecord]) -> int:
    """Write a trace in the compact binary format; returns the record count."""
    count = 0
    pack = _RECORD_STRUCT.pack
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        for record in trace:
            tag = int(record.access)
            if record.is_lock_spin:
                tag |= _FLAG_LOCK_SPIN
            if record.is_os:
                tag |= _FLAG_OS
            handle.write(pack(tag, record.cpu, record.pid, 0, record.address))
            count += 1
    return count


def read_binary(path: PathLike) -> Iterator[TraceRecord]:
    """Lazily read a binary-format trace file."""
    size = _RECORD_STRUCT.size
    unpack = _RECORD_STRUCT.unpack
    with open(path, "rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        while True:
            chunk = handle.read(size)
            if not chunk:
                return
            if len(chunk) != size:
                raise TraceFormatError(f"{path}: truncated record at end of file")
            tag, cpu, pid, _pad, address = unpack(chunk)
            access_code = tag & _ACCESS_MASK
            try:
                access = AccessType(access_code)
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}: invalid access code {access_code}"
                ) from exc
            yield TraceRecord(
                cpu=cpu,
                pid=pid,
                access=access,
                address=address,
                is_lock_spin=bool(tag & _FLAG_LOCK_SPIN),
                is_os=bool(tag & _FLAG_OS),
            )


def round_trip_check(trace: List[TraceRecord], path: PathLike) -> bool:
    """Write then re-read a trace in binary form and compare (debug helper)."""
    write_binary(path, trace)
    return list(read_binary(path)) == trace
