"""The per-reference probe API: stream protocol events out of the pipeline.

A probe receives every reference the :class:`~repro.core.pipeline.ReferencePipeline`
processes — the sharing unit, block, Table 4 event class, the primitive bus
operations it emitted, and the bus-cycle cost under a chosen cost model —
without perturbing the simulation.  Attach one by constructing the pipeline
with ``probe=...`` (or ``simulate(..., probe=...)``); with no probe attached
the hot loop pays a single ``is None`` check per reference, and the
benchmark suite guards that this stays under a few percent of throughput.

Two file sinks are included:

* :class:`JsonlSink` — one JSON object per reference, grep/jq-friendly;
* :class:`ChromeTraceSink` — Chrome trace format (the JSON
  ``{"traceEvents": [...]}`` flavour), loadable in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_.  Each simulation cell becomes a
  process track (``pid``), each sharing unit a thread track (``tid``); the
  timeline x-axis is the reference index and each slice's width is its
  bus-cycle cost, so expensive references are literally wider.

Sinks price ops with the pipelined bus by default; pass any
:class:`~repro.interconnect.bus.BusCostModel` to change that.  Events are
streamed to disk incrementally, so tracing multi-million-reference runs
does not buffer them in memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Tuple, Union

from ..interconnect.bus import BusCostModel, pipelined_bus
from ..protocols.base import AccessOutcome
from ..trace.record import AccessType

__all__ = [
    "ChromeTraceSink",
    "CollectingProbe",
    "JsonlSink",
    "ReferenceProbe",
]


class ReferenceProbe:
    """Base probe: override :meth:`on_reference`; close to flush resources.

    Probes are observers only — the pipeline's counters and protocol state
    are bit-identical with and without one attached.

    ``granularity`` declares the finest observation the probe needs.  The
    default ``"reference"`` delivers every reference via
    :meth:`on_reference`; the fast backend honours it by routing the run
    through its reference-fidelity path (correct, but forgoing the table
    kernel's speed).  A probe that only needs progress/throughput signals
    can set ``granularity = "batch"`` and override :meth:`on_batch`; such
    probes keep the fast backend on its vectorised path and are notified at
    internal batch boundaries instead.
    """

    #: ``"reference"`` (default) or ``"batch"``
    granularity = "reference"

    def on_reference(
        self,
        index: int,
        unit: int,
        access: AccessType,
        block: int,
        outcome: AccessOutcome,
    ) -> None:
        """Called once per reference, after the pipeline fully processed it.

        ``index`` counts references seen by this probe, from 0.
        """

    def on_batch(self, processed: int, counters: object) -> None:
        """Batch-boundary hook (fast backend only; default no-op).

        Called after each internal batch with the cumulative number of
        references processed by the pipeline and the (flushed, current
        chunk's) :class:`~repro.core.counters.SimulationCounters`.  The
        reference pipeline never batches, so it never calls this.
        """

    def close(self) -> None:
        """Flush and release any resources (file handles)."""

    def __enter__(self) -> "ReferenceProbe":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CollectingProbe(ReferenceProbe):
    """Buffer every event in memory (tests and interactive inspection)."""

    def __init__(self) -> None:
        self.events: List[Tuple[int, int, AccessType, int, AccessOutcome]] = []

    def on_reference(
        self,
        index: int,
        unit: int,
        access: AccessType,
        block: int,
        outcome: AccessOutcome,
    ) -> None:
        self.events.append((index, unit, access, block, outcome))


def _priced(outcome: AccessOutcome, bus: BusCostModel) -> float:
    return sum(bus.cost_of(op) * count for op, count in outcome.ops)


class JsonlSink(ReferenceProbe):
    """One JSON object per reference, newline-delimited."""

    def __init__(
        self,
        destination: Union[str, Path, IO[str]],
        bus: Optional[BusCostModel] = None,
    ) -> None:
        if hasattr(destination, "write"):
            self._handle: IO[str] = destination  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = Path(destination).open("w", encoding="utf-8")
            self._owns_handle = True
        self.bus = bus if bus is not None else pipelined_bus()

    def on_reference(
        self,
        index: int,
        unit: int,
        access: AccessType,
        block: int,
        outcome: AccessOutcome,
    ) -> None:
        record = {
            "i": index,
            "unit": unit,
            "access": access.name.lower(),
            "block": block,
            "event": outcome.event.value,
            "ops": {op.value: count for op, count in outcome.ops},
            "cycles": _priced(outcome, self.bus),
        }
        if outcome.invalidation_fanout is not None:
            record["fanout"] = outcome.invalidation_fanout
        self._handle.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()


class ChromeTraceSink:
    """Chrome-trace-format writer; cells become process tracks.

    Not itself a probe: call :meth:`cell` for a :class:`ReferenceProbe`
    bound to one simulation cell (one ``pid`` track), then :meth:`close`
    once to finalise the file.  A single-cell shortcut::

        with ChromeTraceSink("out.json") as sink:
            simulate(protocol, trace, probe=sink.cell("dir0b/POPS"))

    The sink is also the substrate for span-level telemetry
    (:mod:`repro.obs.telemetry`): :meth:`track` declares an arbitrary
    ``pid`` track (a real worker OS pid, say) and :meth:`slice` emits a
    complete event onto it, so per-reference probes and multi-process
    sweep spans share one file format and one validator
    (``tools/validate_trace.py``).
    """

    def __init__(
        self,
        destination: Union[str, Path],
        bus: Optional[BusCostModel] = None,
    ) -> None:
        self.path = Path(destination)
        self.bus = bus if bus is not None else pipelined_bus()
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self._handle.write('{"traceEvents": [')
        self._first = True
        self._next_pid = 0

    def _emit(self, event: dict) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path} is closed")
        if not self._first:
            self._handle.write(",\n")
        self._first = False
        self._handle.write(json.dumps(event))

    def track(self, label: str, pid: Optional[int] = None) -> int:
        """Declare (and name) a ``pid`` track; returns the pid used.

        With ``pid=None`` the next free small integer is assigned (the
        per-cell probe convention); an explicit pid — a worker OS pid, for
        span telemetry — is named verbatim.  Either way the
        ``process_name`` metadata event Perfetto needs is emitted exactly
        once per track.
        """
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        self._emit(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        return pid

    def slice(
        self,
        pid: int,
        tid: int,
        name: str,
        ts: int,
        dur: float,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Emit one complete (``ph: "X"``) event onto a declared track."""
        event = {
            "name": name,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": tid,
        }
        if cat is not None:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._emit(event)

    def cell(self, label: str) -> "_ChromeCellProbe":
        """A probe streaming one simulation cell onto its own pid track."""
        return _ChromeCellProbe(self, self.track(label))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.write(']}\n')
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ChromeTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _ChromeCellProbe(ReferenceProbe):
    """One cell's track: tid = sharing unit, ts = reference index, dur = cycles."""

    def __init__(self, sink: ChromeTraceSink, pid: int) -> None:
        self._sink = sink
        self._pid = pid

    def on_reference(
        self,
        index: int,
        unit: int,
        access: AccessType,
        block: int,
        outcome: AccessOutcome,
    ) -> None:
        cycles = _priced(outcome, self._sink.bus)
        event = {
            "name": outcome.event.value,
            "cat": access.name.lower(),
            "ph": "X",
            "ts": index,
            "dur": cycles,
            "pid": self._pid,
            "tid": unit,
            "args": {"block": block, "cycles": cycles},
        }
        if outcome.invalidation_fanout is not None:
            event["args"]["fanout"] = outcome.invalidation_fanout
        self._sink._emit(event)
