"""Extended protocol comparison: the related-work schemes the paper cites.

Places Write-Once (Goodman [2]), Illinois/MESI (Papamarcos & Patel [5]),
Firefly (Thacker & Stewart [3]) and the Section 5.2 software-flush scheme
on the same axis as the paper's four, reproducing the expected cost
ordering of the 1980s snoopy-protocol literature:

* Write-Once sits between WTI and the copy-back invalidation schemes
  (its first-write write-through is its only extra traffic);
* Illinois tracks Dir0B/Berkeley closely (same state-change family, plus
  the free E->M upgrade);
* Firefly lands near Dragon (update-based), paying slightly more on the
  non-pipelined bus for its through-to-memory updates;
* the software-flush scheme is the most expensive of all — it is Dir1NB
  without write-back snarfing, the paper's Section 5.2 warning.
"""

from repro.core import run_standard_comparison
from conftest import BENCH_SCHEMES, SCALE

EXTENDED = ("writeonce", "illinois", "firefly", "softflush")


def test_extended_protocols(benchmark, comparison, pipe_bus, save_result):
    extended = benchmark.pedantic(
        run_standard_comparison,
        args=(EXTENDED,),
        kwargs={"scale": SCALE},
        rounds=1,
        iterations=1,
    )
    costs = {
        scheme: comparison.average_cycles(scheme, pipe_bus)
        for scheme in BENCH_SCHEMES
    }
    costs.update(
        {
            scheme: extended.average_cycles(scheme, pipe_bus)
            for scheme in EXTENDED
        }
    )
    lines = ["All protocols, pipelined bus (cycles per reference):"]
    for scheme, cost in sorted(costs.items(), key=lambda kv: kv[1]):
        lines.append(f"  {scheme:<10} {cost:.4f}")
    save_result("extended_protocols", "\n".join(lines))

    # Write-Once between the copy-back invalidation schemes and WTI.
    assert costs["dir0b"] * 0.8 < costs["writeonce"] < costs["wti"]
    # Illinois in the same band as Dir0B / Berkeley.
    assert 0.5 * costs["dir0b"] < costs["illinois"] < 1.5 * costs["dir0b"]
    # Firefly near Dragon (both update-based).
    assert 0.5 * costs["dragon"] < costs["firefly"] < 2.0 * costs["dragon"]
    # Software flushing is in Dir1NB's cost tier, far above every hardware
    # multi-copy scheme.  (It is not strictly above Dir1NB: self-invalidation
    # is a local cache instruction, so clean-block handoffs save the 1-cycle
    # invalidate message, while dirty handoffs pay a full extra memory trip.)
    assert 0.7 * costs["dir1nb"] < costs["softflush"] < 1.5 * costs["dir1nb"]
    assert costs["softflush"] > 3 * costs["dir0b"]
