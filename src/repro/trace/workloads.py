"""Calibrated application profiles standing in for the paper's traces.

The paper's three workloads (Table 3) were parallel MACH applications traced
on a 4-CPU VAX 8350:

* **POPS** — a parallel OPS5 rule-based system: heavy lock contention
  (about one third of all reads are spin tests), migratory working-memory
  records guarded by locks.
* **THOR** — a parallel logic simulator: similar lock behaviour plus heavy
  producer/consumer traffic through event queues.
* **PERO** — a parallel VLSI router: a high read ratio from the routing
  algorithm, few locks, and a much smaller fraction of shared references
  (which is why it is the cheapest trace in Figure 3).

The profiles below reproduce those *sharing structures* with the synthetic
engine; lengths default to the paper's trace sizes (Table 3, in thousands of
references) scaled down by :data:`DEFAULT_SCALE` so the full benchmark suite
runs in minutes in pure Python.  Pass ``scale=1.0`` for full-size traces.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence

from .record import TraceRecord
from .synthetic import SyntheticWorkload, WorkloadProfile

__all__ = [
    "DEFAULT_SCALE",
    "PAPER_TRACE_LENGTHS",
    "pops_profile",
    "thor_profile",
    "pero_profile",
    "standard_profile",
    "standard_profiles",
    "standard_trace",
    "standard_trace_names",
]

#: Full trace lengths from Table 3 (total references).
PAPER_TRACE_LENGTHS = {"POPS": 3_142_000, "THOR": 3_222_000, "PERO": 3_508_000}

#: Default down-scaling applied to the paper's trace lengths so pure-Python
#: simulation of 3 traces x ~8 protocols stays fast.  Event frequencies are
#: rates, so they are stable well below full scale.
DEFAULT_SCALE = 1.0 / 16.0


def pops_profile(scale: float = DEFAULT_SCALE, seed: int = 51) -> WorkloadProfile:
    """Parallel OPS5 production system: contended locks, migratory records."""
    profile = WorkloadProfile(
        name="POPS",
        length=PAPER_TRACE_LENGTHS["POPS"],
        seed=seed,
        private_write_fraction=0.27,
        compute_burst=(3, 9),
        run_length=(3, 8),
        private_blocks_per_process=2000,
        instr_blocks_per_process=3000,
        shared_readonly_blocks=1400,
        migratory_blocks=2400,
        mailbox_blocks_per_process=240,
        kernel_private_blocks_per_cpu=400,
        kernel_shared_blocks=160,
        w_compute=10.0,
        w_shared_read=5.5,
        w_migratory=2.0,
        w_produce=0.30,
        w_consume=0.6,
        w_lock=0.065,
        w_barrier=0.015,
        guarded_blocks_per_lock=40,
        n_locks=1,
        shared_write_run=(2, 4),
        critical_section=(3, 6),
        lock_hold_turns=(100, 170),
        os_activity_fraction=0.15,
    )
    return profile.scaled(scale)


def thor_profile(scale: float = DEFAULT_SCALE, seed: int = 52) -> WorkloadProfile:
    """Parallel logic simulator: event queues (producer/consumer) plus locks."""
    profile = WorkloadProfile(
        name="THOR",
        length=PAPER_TRACE_LENGTHS["THOR"],
        seed=seed,
        private_write_fraction=0.26,
        compute_burst=(3, 10),
        run_length=(3, 8),
        private_blocks_per_process=2200,
        instr_blocks_per_process=3200,
        shared_readonly_blocks=1500,
        migratory_blocks=2000,
        mailbox_blocks_per_process=240,
        kernel_private_blocks_per_cpu=400,
        kernel_shared_blocks=160,
        w_compute=10.0,
        w_shared_read=5.0,
        w_migratory=1.8,
        w_produce=0.35,
        w_consume=0.6,
        w_lock=0.08,
        w_barrier=0.015,
        guarded_blocks_per_lock=40,
        n_locks=1,
        shared_write_run=(2, 4),
        critical_section=(3, 6),
        lock_hold_turns=(100, 160),
        os_activity_fraction=0.16,
    )
    return profile.scaled(scale)


def pero_profile(scale: float = DEFAULT_SCALE, seed: int = 53) -> WorkloadProfile:
    """Parallel VLSI router: read-heavy, little sharing, almost no locks."""
    profile = WorkloadProfile(
        name="PERO",
        length=PAPER_TRACE_LENGTHS["PERO"],
        seed=seed,
        private_write_fraction=0.22,
        compute_burst=(5, 14),
        run_length=(4, 12),
        private_blocks_per_process=3000,
        instr_blocks_per_process=3600,
        shared_readonly_blocks=900,
        migratory_blocks=120,
        mailbox_blocks_per_process=80,
        kernel_private_blocks_per_cpu=400,
        kernel_shared_blocks=160,
        w_compute=14.0,
        w_shared_read=0.9,
        w_migratory=0.04,
        w_produce=0.05,
        w_consume=0.05,
        w_lock=0.03,
        w_barrier=0.005,
        n_locks=2,
        critical_section=(1, 3),
        lock_hold_turns=(2, 5),
        os_activity_fraction=0.18,
    )
    return profile.scaled(scale)


_PROFILE_BUILDERS: Dict[str, Callable[..., WorkloadProfile]] = {
    "POPS": pops_profile,
    "THOR": thor_profile,
    "PERO": pero_profile,
}


def standard_trace_names() -> Sequence[str]:
    """The paper's three trace names, in presentation order."""
    return ("POPS", "THOR", "PERO")


def standard_profiles(scale: float = DEFAULT_SCALE) -> List[WorkloadProfile]:
    """The three calibrated profiles at the given scale."""
    return [_PROFILE_BUILDERS[name](scale=scale) for name in standard_trace_names()]


def standard_profile(
    name: str, scale: float = DEFAULT_SCALE, seed: int = None
) -> WorkloadProfile:
    """One of the paper's workload profiles by name, optionally re-seeded.

    ``seed`` overrides the profile's calibrated default seed, giving a
    statistically identical but independent trace — the sweep runner's
    seed axis.
    """
    try:
        builder = _PROFILE_BUILDERS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_PROFILE_BUILDERS))
        raise KeyError(f"unknown trace {name!r}; known traces: {known}") from None
    if seed is None:
        return builder(scale=scale)
    return builder(scale=scale, seed=seed)


def standard_trace(name: str, scale: float = DEFAULT_SCALE) -> Iterator[TraceRecord]:
    """The trace stream for one of the paper's workloads by name."""
    return SyntheticWorkload(standard_profile(name, scale=scale)).records()
