#!/usr/bin/env python3
"""Validate hardware characterization files against the schema and the paper.

Two modes in one pass:

* **Schema validation** — every file given on the command line (TOML or
  sectioned CSV) must load cleanly through
  :func:`repro.characterization.load_characterization`; any missing
  section, unknown op, negative value or unsupported schema revision is a
  hard failure naming the file and the problem.
* **Paper fidelity** — with no arguments (or with ``--bundled``) the two
  bundled models are additionally checked bit-identically against the
  package's parametric Table 2 derivations
  (:func:`~repro.interconnect.bus.pipelined_cycles` /
  :func:`~repro.interconnect.bus.nonpipelined_cycles`), so the data files
  can never drift from the Section 4.3 cost accounting they encode.

Usage::

    python tools/validate_characterization.py                 # bundled files
    python tools/validate_characterization.py my_model.toml   # user files
    python tools/validate_characterization.py --bundled extra.csv

Exits 0 with a per-model summary when everything validates, 1 with a
diagnostic on the first violation.  Run from a checkout with
``PYTHONPATH=src`` or after ``pip install -e .``.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.characterization import (
        CharacterizationError,
        builtin_names,
        load_characterization,
    )
    from repro.interconnect.bus import BusOp, nonpipelined_cycles, pipelined_cycles
except ImportError:
    sys.stderr.write(
        "cannot import repro; run with PYTHONPATH=src or pip install -e .\n"
    )
    sys.exit(1)

#: The parametric derivation each bundled model must reproduce exactly.
BUNDLED_DERIVATIONS = {
    "pipelined": pipelined_cycles,
    "non-pipelined": nonpipelined_cycles,
}


def check_bundled(name: str) -> str:
    """One bundled model: schema-valid and bit-identical to the derivation."""
    characterization = load_characterization(name)
    derived = BUNDLED_DERIVATIONS[name]()
    bus = characterization.bus_model()
    for op in BusOp:
        loaded = bus.cost_of(op)
        expected = derived[op]
        if loaded != expected:
            raise CharacterizationError(
                f"{name}: [cycles] {op.value} is {loaded!r} in the data file "
                f"but the Section 4.3 derivation gives {expected!r}"
            )
    energy = "with energy axis" if characterization.has_energy else "no energy"
    return (
        f"{name}: OK (version {characterization.version}, bit-identical to "
        f"the parametric derivation, {energy}, "
        f"hash {characterization.content_hash()[:12]})"
    )


def check_file(path: Path) -> str:
    """One user file: schema-valid and priceable."""
    characterization = load_characterization(path)
    # Force full pricing so a value of the wrong shape cannot hide.
    characterization.table2_rows()
    ops = len(characterization.cycles)
    energy = "with energy axis" if characterization.has_energy else "no energy"
    return (
        f"{path}: OK ({characterization.name} version "
        f"{characterization.version}, {ops} ops priced, {energy}, "
        f"hash {characterization.content_hash()[:12]})"
    )


def main(argv: list[str]) -> int:
    args = [arg for arg in argv if arg != "--bundled"]
    include_bundled = not args or "--bundled" in argv
    try:
        if include_bundled:
            for name in builtin_names():
                print(check_bundled(name))
        for name in args:
            print(check_file(Path(name)))
    except CharacterizationError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
