"""Unit tests for derived metrics (miss decomposition, processor bound)."""

import pytest

from repro.core.metrics import decompose_miss_rate, effective_processors


class TestMissRateDecomposition:
    def test_paper_numbers(self):
        # Dir0B data miss rate 1.13%, native (Dragon) 0.72%: coherence misses
        # are 0.41% and thus 36% of the total (Section 5).
        decomposition = decompose_miss_rate(1.13, 0.72)
        assert decomposition.coherence_miss_rate == pytest.approx(0.41)
        assert decomposition.coherence_share == pytest.approx(0.36, abs=0.01)

    def test_zero_miss_rate(self):
        decomposition = decompose_miss_rate(0.0, 0.0)
        assert decomposition.coherence_share == 0.0

    def test_native_exceeding_scheme_clamps_to_zero(self):
        decomposition = decompose_miss_rate(0.5, 0.7)
        assert decomposition.coherence_miss_rate == 0.0

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            decompose_miss_rate(-1.0, 0.5)


class TestEffectiveProcessors:
    def test_paper_estimate(self):
        # "A 10-MIPS processor will therefore require a bus cycle every
        # 1500 ns, and a bus with a cycle time of 100 ns will only yield a
        # maximum performance of 15 effective processors."
        bound = effective_processors(
            cycles_per_reference=0.03, processor_mips=10, bus_cycle_ns=100
        )
        assert bound == pytest.approx(15, rel=0.15)

    def test_scales_inversely_with_cost(self):
        cheap = effective_processors(0.03, 10, 100)
        expensive = effective_processors(0.06, 10, 100)
        assert cheap == pytest.approx(2 * expensive)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            effective_processors(0.0)
        with pytest.raises(ValueError):
            effective_processors(0.03, processor_mips=0)
        with pytest.raises(ValueError):
            effective_processors(0.03, bus_cycle_ns=0)
