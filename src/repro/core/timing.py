"""A timing-accurate shared-bus simulator.

The paper's methodology deliberately avoids timing: it counts event
frequencies and prices them afterwards, noting both that "a simulation must
be carried out for every hardware model desired" to get processor
utilisations, and that "in reality the reference pattern would be different
for each of the schemes due to their timing differences" (Section 4).  This
module is that missing simulation: it executes the per-processor reference
streams against a single arbitrated bus, so

* bus contention emerges instead of being modelled (processors stall while
  the bus serves others),
* the interleaving of references — and therefore the protocol state
  evolution — is determined by each scheme's own timing, and
* true processor utilisations and aggregate speedup are measured.

Timing model (deliberately simple, matching the paper's cost abstraction):
a cache hit completes in one processor cycle; a reference needing the bus
waits for the bus to become free (FCFS in request order, ties broken by
processor index), holds it for the transaction's bus cycles plus ``q``
fixed overhead cycles (Section 5.1's arbitration/controller allowance), and
completes then.  Processor and bus cycles tick at the same rate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from ..interconnect.bus import BusCostModel
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel

__all__ = ["TimingResult", "simulate_timed"]


@dataclass(frozen=True)
class TimingResult:
    """What the timed run measured."""

    total_cycles: int
    references: int
    bus_busy_cycles: int
    per_processor_busy: Mapping[int, int]  # cycles spent executing
    per_processor_stall: Mapping[int, int]  # cycles spent waiting for the bus
    n_processors: int

    @property
    def bus_utilization(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.bus_busy_cycles / self.total_cycles

    @property
    def processor_utilization(self) -> float:
        """Mean fraction of time processors spend executing (not stalled)."""
        if self.total_cycles == 0 or self.n_processors == 0:
            return 0.0
        busy = sum(self.per_processor_busy.values())
        return busy / (self.total_cycles * self.n_processors)

    @property
    def references_per_cycle(self) -> float:
        """Aggregate throughput: how much work the machine completes."""
        if self.total_cycles == 0:
            return 0.0
        return self.references / self.total_cycles

    def stall_fraction(self, processor: int) -> float:
        busy = self.per_processor_busy.get(processor, 0)
        stall = self.per_processor_stall.get(processor, 0)
        if busy + stall == 0:
            return 0.0
        return stall / (busy + stall)


def _split_by_unit(
    trace: Iterable[TraceRecord], sharing_model: SharingModel
) -> List[List[TraceRecord]]:
    """Split the interleaved trace into per-sharing-unit program orders."""
    units: Dict[int, int] = {}
    streams: List[List[TraceRecord]] = []
    by_process = sharing_model is SharingModel.PROCESS
    for record in trace:
        key = record.pid if by_process else record.cpu
        unit = units.get(key)
        if unit is None:
            unit = len(units)
            units[key] = unit
            streams.append([])
        streams[unit].append(record)
    return streams


def simulate_timed(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    bus: BusCostModel,
    q_overhead: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
) -> TimingResult:
    """Execute a trace with real bus arbitration and measure timing.

    The trace's global interleaving is used only to define per-processor
    program order; the *executed* interleaving emerges from the timing, so
    the protocol sees a schedule shaped by its own costs — the effect the
    paper points out trace-driven simulation cannot capture.

    Args:
        protocol: freshly constructed protocol.
        trace: interleaved multiprocessor trace.
        bus: cost model supplying per-op bus cycles.
        q_overhead: fixed cycles added to every bus transaction
            (Section 5.1's arbitration and controller overhead).

    Raises:
        ValueError: on more sharing units than protocol caches, or a
            negative ``q_overhead``.
    """
    if q_overhead < 0:
        raise ValueError(f"q_overhead must be non-negative, got {q_overhead}")
    streams = _split_by_unit(trace, sharing_model)
    if len(streams) > protocol.n_caches:
        raise ValueError(
            f"trace has {len(streams)} sharing units but the protocol has "
            f"only {protocol.n_caches} caches"
        )
    n = len(streams)
    positions = [0] * n
    busy = {unit: 0 for unit in range(n)}
    stall = {unit: 0 for unit in range(n)}
    bus_free_at = 0
    bus_busy_cycles = 0
    references = 0
    # (ready_time, unit): each processor is ready to issue its next reference.
    ready: List = [(0, unit) for unit in range(n) if streams[unit]]
    heapq.heapify(ready)
    finish_time = 0
    while ready:
        time, unit = heapq.heappop(ready)
        stream = streams[unit]
        position = positions[unit]
        # Execute consecutive hits (no bus ops) without re-queueing.
        while position < len(stream):
            record = stream[position]
            outcome = protocol.access(
                unit, record.access, record.address // block_size
            )
            position += 1
            references += 1
            cost = sum(bus.cost_of(op) * count for op, count in outcome.ops)
            if cost > 0:
                cost = int(cost) + q_overhead
                start = max(time + 1, bus_free_at)
                stall[unit] += start - (time + 1)
                bus_free_at = start + cost
                bus_busy_cycles += cost
                busy[unit] += 1 + cost
                time = start + cost
                break
            busy[unit] += 1
            time += 1
        positions[unit] = position
        finish_time = max(finish_time, time)
        if position < len(stream):
            heapq.heappush(ready, (time, unit))
    return TimingResult(
        total_cycles=finish_time,
        references=references,
        bus_busy_cycles=bus_busy_cycles,
        per_processor_busy=busy,
        per_processor_stall=stall,
        n_processors=n,
    )
