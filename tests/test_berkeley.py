"""Unit tests for the Berkeley Ownership snoopy protocol."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.snoopy.berkeley import Berkeley
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return Berkeley(4)


class TestOwnership:
    def test_owner_supplies_without_memory_writeback(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (1, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.CACHE_SUPPLY: 1}
        # Owned-shared: the owner keeps responsibility; memory is stale.
        assert proto.sharing.dirty_owner(5) == 0
        assert proto.sharing.holder_count(5) == 2

    def test_owner_supply_costs_same_as_flush_snarf_on_pipelined_bus(self):
        # The paper's footnote: the optimisation "does not impact our
        # performance metric in the pipelined bus".
        bus = pipelined_bus()
        berkeley = run_ops(Berkeley(4), [(0, "w", 5), (1, "r", 5)])[1]
        dir0b = run_ops(Dir0B(4), [(0, "w", 5), (1, "r", 5)])[1]
        cost = lambda o: sum(bus.cost_of(op) * n for op, n in o.ops)  # noqa: E731
        assert cost(berkeley) == cost(dir0b) == 5

    def test_owned_shared_write_reclaims_exclusivity(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.event is Event.WH_BLK_CLEAN
        assert dict(hit.ops) == {BusOp.BROADCAST_INVALIDATE: 1}
        assert proto.sharing.holders(5) == 0b0001


class TestNoDirectory:
    def test_never_checks_a_directory(self, proto):
        rng = random.Random(83)
        for _ in range(4000):
            outcome = proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
            assert outcome.op_count(BusOp.DIR_CHECK) == 0
            assert outcome.op_count(BusOp.DIR_CHECK_OVERLAPPED) == 0

    def test_clean_write_hit_signals_even_when_sole(self, proto):
        # Without a directory, the writer cannot know it is alone.
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        hit = outcomes[1]
        assert hit.event is Event.WH_BLK_CLEAN
        assert dict(hit.ops) == {BusOp.BROADCAST_INVALIDATE: 1}
        assert hit.invalidation_fanout == 0


class TestStateModel:
    def test_write_miss_invalidates_all_copies(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5), (3, "w", 5)])
        assert proto.sharing.holders(5) == 0b1000
        assert proto.sharing.is_dirty_in(5, 3)

    def test_exclusive_owner_writes_locally(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (0, "w", 5)])
        assert outcomes[1].event is Event.WH_BLK_DIRTY
        assert outcomes[1].ops == ()

    def test_single_writer_invariant(self, proto):
        rng = random.Random(89)
        for _ in range(4000):
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
        proto.sharing.check_invariants()

    def test_event_classification_matches_dir0b(self):
        """Same state-change model as Dir0B (the basis of the paper's
        Berkeley estimate): hit/miss classification coincides."""
        rng = random.Random(97)
        a, b = Berkeley(4), Dir0B(4)
        for _ in range(5000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(30)
            out_a = a.access(cache, access, block)
            out_b = b.access(cache, access, block)
            assert out_a.event.is_miss == out_b.event.is_miss
