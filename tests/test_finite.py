"""Unit tests for the finite-cache extension simulator."""

import pytest

from conftest import trace_of
from repro.core.finite import simulate_finite
from repro.core.simulator import simulate
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.memory.cache import CacheGeometry
from repro.protocols.events import Event
from repro.protocols.registry import create_protocol
from repro.trace.workloads import standard_trace


class TestFiniteSimulation:
    def test_large_cache_matches_infinite(self, tiny_trace):
        geometry = CacheGeometry(n_sets=1024, associativity=4)
        finite = simulate_finite(
            create_protocol("dir0b", 4), tiny_trace, geometry
        )
        infinite = simulate(create_protocol("dir0b", 4), tiny_trace)
        assert finite.evictions == 0
        assert finite.result.counters.events == infinite.counters.events

    def test_tiny_cache_evicts(self):
        # One set, one way: every new block displaces the previous one.
        trace = trace_of([(0, "r", 16 * i) for i in range(8)])
        geometry = CacheGeometry(n_sets=1, associativity=1)
        finite = simulate_finite(create_protocol("dir0b", 4), trace, geometry)
        assert finite.evictions == 7
        assert finite.eviction_rate == pytest.approx(7 / 8)

    def test_dirty_eviction_writes_back(self):
        trace = trace_of([(0, "w", 0), (0, "w", 16)])
        geometry = CacheGeometry(n_sets=1, associativity=1)
        finite = simulate_finite(create_protocol("dir0b", 4), trace, geometry)
        assert finite.dirty_evictions == 1
        assert finite.result.counters.ops.ops[BusOp.WRITE_BACK] == 1

    def test_capacity_misses_appear_as_refetches(self):
        # Re-reading an evicted block misses again (it would hit with an
        # infinite cache).
        trace = trace_of([(0, "r", 0), (0, "r", 16), (0, "r", 0)])
        geometry = CacheGeometry(n_sets=1, associativity=1)
        finite = simulate_finite(create_protocol("dir0b", 4), trace, geometry)
        counters = finite.result.counters
        assert counters.event_count(Event.RM_UNCACHED) == 1

    def test_coherence_invalidations_mirrored_into_finite_caches(self):
        trace = trace_of([(0, "r", 0), (1, "w", 0), (0, "r", 0)])
        geometry = CacheGeometry(n_sets=4, associativity=2)
        finite = simulate_finite(create_protocol("dir0b", 4), trace, geometry)
        # Cache 0's copy was invalidated by cache 1's write, so the final
        # read is a coherence miss, not a hit.
        assert finite.result.counters.event_count(Event.RM_BLK_DIRTY) == 1

    def test_too_many_units_rejected(self):
        trace = trace_of([(c, "r", 0) for c in range(5)])
        with pytest.raises(ValueError, match="sharing units"):
            simulate_finite(
                create_protocol("dir0b", 4),
                trace,
                CacheGeometry(n_sets=4, associativity=1),
            )

    def test_paper_footnote_fewer_coherence_misses_in_finite_caches(self):
        """Footnote 2: some blocks that would be invalidated have already
        been purged by interference, so coherency misses shrink (they
        reappear as capacity misses instead)."""
        factory = lambda: standard_trace("POPS", scale=1 / 256)  # noqa: E731
        infinite = simulate(create_protocol("dir0b", 4), factory())
        finite = simulate_finite(
            create_protocol("dir0b", 4),
            factory(),
            CacheGeometry(n_sets=16, associativity=1),
        )
        coherence_events = (Event.RM_BLK_DIRTY, Event.WM_BLK_DIRTY)
        infinite_coherence = sum(
            infinite.counters.event_count(e) for e in coherence_events
        )
        finite_coherence = sum(
            finite.result.counters.event_count(e) for e in coherence_events
        )
        total_finite_misses = finite.result.frequencies().data_miss_rate
        total_infinite_misses = infinite.frequencies().data_miss_rate
        assert total_finite_misses >= total_infinite_misses  # capacity misses
        assert finite_coherence <= infinite_coherence * 1.2

    def test_cost_summary_still_works(self, tiny_trace):
        finite = simulate_finite(
            create_protocol("wti", 4),
            tiny_trace,
            CacheGeometry(n_sets=2, associativity=1),
        )
        assert finite.result.cost_summary(pipelined_bus()).cycles_per_reference > 0
