"""Ablation benches for the design choices DESIGN.md calls out.

* process- vs processor-level sharing classification (Section 4.4);
* pointer-eviction policy in DiriNB;
* finite vs infinite caches (the Section 4 first-order correction);
* block size (the paper fixes 16 bytes; how sensitive is the result?).
"""

import pytest

from conftest import SCALE
from repro.core.finite import simulate_finite
from repro.core.simulator import simulate
from repro.memory.cache import CacheGeometry
from repro.protocols import DiriNB, create_protocol
from repro.trace import SharingModel, standard_trace


def _pops():
    return standard_trace("POPS", scale=SCALE)


def test_ablation_sharing_model(benchmark, pipe_bus, save_result):
    """Process vs processor sharing: the paper found the numbers "not
    significantly different" because migration is rare in its traces."""

    def run():
        process = simulate(
            create_protocol("dir0b", 4),
            _pops(),
            sharing_model=SharingModel.PROCESS,
        )
        processor = simulate(
            create_protocol("dir0b", 4),
            _pops(),
            sharing_model=SharingModel.PROCESSOR,
        )
        return (
            process.cycles_per_reference(pipe_bus),
            processor.cycles_per_reference(pipe_bus),
        )

    by_process, by_processor = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_sharing_model",
        "Sharing classification (Dir0B on POPS, pipelined):\n"
        f"  by process:   {by_process:.4f} cycles/ref\n"
        f"  by processor: {by_processor:.4f} cycles/ref\n"
        "  (paper: 'the numbers were not significantly different')",
    )
    # The paper's observation: the two classifications are close.  (They
    # differ in both directions — migration adds sharing between processor
    # caches but also merges co-located processes into one cache.)
    assert by_processor == pytest.approx(by_process, rel=0.25)


def test_ablation_eviction_policy(benchmark, pipe_bus, save_result):
    """DiriNB pointer-displacement policy.

    FIFO and random are near-equivalent; LIFO is pathological under spin
    locks — it keeps displacing the *newest* sharer, which is exactly the
    spinner that will re-request the block next turn.
    """

    def run():
        costs = {}
        for policy in ("fifo", "lifo", "random"):
            result = simulate(
                DiriNB(4, pointers=2, eviction=policy), _pops()
            )
            costs[policy] = result.cycles_per_reference(pipe_bus)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DiriNB(i=2) pointer-eviction policy (POPS, pipelined):"]
    for policy, cost in costs.items():
        lines.append(f"  {policy:<7} {cost:.4f} cycles/ref")
    lines.append("  (LIFO keeps displacing the next requester: pathological)")
    save_result("ablation_eviction_policy", "\n".join(lines))
    assert costs["fifo"] == pytest.approx(costs["random"], rel=0.35)
    assert costs["lifo"] >= costs["fifo"]


def test_ablation_finite_caches(benchmark, pipe_bus, save_result):
    """Finite caches add capacity misses on top of the sharing cost."""

    def run():
        infinite = simulate(create_protocol("dir0b", 4), _pops())
        small = simulate_finite(
            create_protocol("dir0b", 4),
            _pops(),
            CacheGeometry(n_sets=64, associativity=2),
        )
        large = simulate_finite(
            create_protocol("dir0b", 4),
            _pops(),
            CacheGeometry(n_sets=4096, associativity=4),
        )
        return infinite, small, large

    infinite, small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    inf_cost = infinite.cycles_per_reference(pipe_bus)
    small_cost = small.result.cycles_per_reference(pipe_bus)
    large_cost = large.result.cycles_per_reference(pipe_bus)
    save_result(
        "ablation_finite_caches",
        "Finite caches (Dir0B on POPS, pipelined):\n"
        f"  infinite:            {inf_cost:.4f} cycles/ref\n"
        f"  128-block  2-way:    {small_cost:.4f} cycles/ref "
        f"({small.evictions} evictions)\n"
        f"  16384-block 4-way:   {large_cost:.4f} cycles/ref "
        f"({large.evictions} evictions)\n"
        "  (paper Section 4: finite-cache cost adds to first order)",
    )
    assert small_cost > inf_cost  # capacity misses cost cycles
    assert large_cost == pytest.approx(inf_cost, rel=0.1)
    assert small.evictions > large.evictions


def test_ablation_block_size(benchmark, pipe_bus, save_result):
    """The paper fixes 4-word (16-byte) blocks; vary the block size."""
    from repro.interconnect import pipelined_bus

    def run():
        costs = {}
        for block_size in (16, 32, 64):
            result = simulate(
                create_protocol("dir0b", 4), _pops(), block_size=block_size
            )
            words = block_size // 4
            bus = pipelined_bus(words_per_block=words)
            costs[block_size] = result.cycles_per_reference(bus)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Block size (Dir0B on POPS, pipelined, transfer scaled):"]
    for block_size, cost in costs.items():
        lines.append(f"  {block_size:>3} bytes: {cost:.4f} cycles/ref")
    save_result("ablation_block_size", "\n".join(lines))
    assert set(costs) == {16, 32, 64}
    assert all(cost > 0 for cost in costs.values())
