"""Interconnection-network cost models: the paper's scaling thesis.

The paper's central argument (Sections 1-2): snoopy schemes rely on
low-latency broadcasts and therefore cannot outgrow a bus, while directory
schemes send *directed* messages that "can be easily sent over any
arbitrary interconnection network".  The bus models of Table 2 cannot
express that difference — on a bus a broadcast costs the same cycle a
directed message does.  This module supplies cost models for the networks a
large machine would actually use, so the Section 6 schemes can be priced
where they are meant to live:

* ``BUS`` — the paper's pipelined bus (distance 1, free broadcast), for
  continuity;
* ``CROSSBAR`` — distance 1 directed messages, no broadcast;
* ``OMEGA`` — a multistage log2(n)-hop network (the RP3's choice, the
  paper's example of a scalable machine without coherent caches);
* ``MESH2D`` — a 2D mesh with ~(2/3)·sqrt(n) average hops.

On networks without hardware broadcast, a broadcast invalidation or a
snoopy write-update must be **emulated with n-1 directed messages** — the
cost that makes Dir0B, WTI and Dragon collapse at scale while DirnNB and
the limited-pointer schemes keep paying per *actual* sharer.

Message cost: ``hops + payload_words`` cycles (wormhole-style pipelining:
the head pays the distance, the body streams behind).  A block transfer
carries 4 words; control messages carry 1.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..trace.record import WORDS_PER_BLOCK
from .bus import BusCostModel, BusOp

__all__ = [
    "Topology",
    "NetworkModel",
    "network_cost_model",
    "network_characterization",
]


class Topology(enum.Enum):
    BUS = "bus"
    CROSSBAR = "crossbar"
    OMEGA = "omega"
    MESH2D = "mesh2d"


@dataclass(frozen=True)
class NetworkModel:
    """One interconnect: topology, size, and per-hop timing."""

    topology: Topology
    n_nodes: int
    per_hop_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.per_hop_cycles <= 0:
            raise ValueError("per_hop_cycles must be positive")

    @property
    def name(self) -> str:
        return f"{self.topology.value}({self.n_nodes})"

    @property
    def average_hops(self) -> float:
        """Mean distance of a directed message."""
        if self.topology in (Topology.BUS, Topology.CROSSBAR):
            return 1.0
        if self.topology is Topology.OMEGA:
            return max(1.0, math.log2(self.n_nodes))
        # 2D mesh: uniform traffic averages (2/3)*sqrt(n) hops per dimension
        # pair; use the standard 2*sqrt(n)/3 estimate.
        side = math.sqrt(self.n_nodes)
        return max(1.0, 2.0 * side / 3.0)

    @property
    def has_hardware_broadcast(self) -> bool:
        """Only the bus delivers one message to everyone simultaneously."""
        return self.topology is Topology.BUS

    def directed_message_cycles(self, payload_words: int) -> float:
        """Wormhole message: head pays the distance, body streams behind."""
        if payload_words < 1:
            raise ValueError("payload_words must be >= 1")
        return self.average_hops * self.per_hop_cycles + (payload_words - 1)

    def broadcast_cycles(self, payload_words: int = 1) -> float:
        """One message to every node.

        Hardware broadcast on the bus; emulated with n-1 directed messages
        everywhere else (the paper's reason snoopy coherence does not
        scale).
        """
        if self.has_hardware_broadcast:
            return self.directed_message_cycles(payload_words)
        return (self.n_nodes - 1) * self.directed_message_cycles(payload_words)


def network_cost_model(
    network: NetworkModel, words_per_block: int = WORDS_PER_BLOCK
) -> BusCostModel:
    """Price the protocol bus-op vocabulary on an interconnection network.

    The directory is distributed with the memory modules (the paper's
    Section 2/7 organisation), so directory checks accompanying a memory
    request are free (same destination node) and standalone checks cost one
    control-message round trip.

    Op mapping (control message = 1 word, block = ``words_per_block``):

    * ``MEM_ACCESS``        request + block reply (2 messages)
    * ``CACHE_SUPPLY``      request -> directory -> owner -> block to
                            requester (3 messages, the classic 3-hop miss)
    * ``FLUSH_REQUEST``     request -> directory -> owner (2 control msgs)
    * ``WRITE_BACK``        owner -> memory and memory/owner -> requester
                            (2 block messages; networks cannot snarf)
    * ``INVALIDATE``        one directed control message
    * ``BROADCAST_INVALIDATE`` hardware broadcast or n-1 directed messages
    * ``WRITE_THROUGH``     snoopy semantics: the written word must be
                            visible to every snooping cache as well as
                            memory, so it is broadcast(-emulated).  (WTI's
                            "free" invalidations exist only because every
                            cache sees the write go by.)
    * ``WRITE_UPDATE``      an update must reach every sharer a snooping
                            cache would have seen: broadcast(-emulated)
    * ``DIR_CHECK``         control round trip; overlapped checks free
    * ``SINGLE_BIT_UPDATE`` one directed control message
    """
    control = network.directed_message_cycles(1)
    block = network.directed_message_cycles(words_per_block)
    cycles = {
        BusOp.MEM_ACCESS: control + block,
        BusOp.CACHE_SUPPLY: 2 * control + block,
        BusOp.FLUSH_REQUEST: 2 * control,
        BusOp.WRITE_BACK: 2 * block,
        BusOp.INVALIDATE: control,
        BusOp.BROADCAST_INVALIDATE: network.broadcast_cycles(1),
        BusOp.WRITE_THROUGH: network.broadcast_cycles(1),
        BusOp.WRITE_UPDATE: network.broadcast_cycles(1),
        BusOp.DIR_CHECK: 2 * control,
        BusOp.DIR_CHECK_OVERLAPPED: 0.0,
        BusOp.SINGLE_BIT_UPDATE: control,
    }
    return BusCostModel(name=network.name, cycles=cycles)


def network_characterization(
    network: NetworkModel,
    words_per_block: int = WORDS_PER_BLOCK,
    version: str = "1",
):
    """Capture a network's derived cost model as a characterization.

    The result can be :meth:`~repro.characterization.Characterization.save`-d
    to a TOML file and from then on swept like any other characterization —
    the code-derived Section 6 what-ifs become ordinary data files.
    """
    # Imported lazily: repro.characterization imports interconnect.bus, so a
    # module-level import here would cycle during package initialisation.
    from ..characterization import Characterization

    return Characterization.from_bus_model(
        network_cost_model(network, words_per_block),
        version=version,
        description=(
            f"derived from the {network.topology.value} network model, "
            f"n_nodes={network.n_nodes}, per_hop_cycles={network.per_hop_cycles:g}"
        ),
    )
