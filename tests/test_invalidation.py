"""Unit tests for the invalidation fan-out histogram (Figure 1)."""

import pytest

from repro.core.invalidation import InvalidationHistogram


class TestHistogram:
    def test_empty(self):
        histogram = InvalidationHistogram()
        assert histogram.total == 0
        assert histogram.percentages() == []
        assert histogram.share_at_most(1) == 0.0
        assert histogram.mean_fanout == 0.0
        assert histogram.max_fanout == 0

    def test_record_and_count(self):
        histogram = InvalidationHistogram()
        for fanout in (0, 1, 1, 2):
            histogram.record(fanout)
        assert histogram.total == 4
        assert histogram.count(1) == 2
        assert histogram.count(3) == 0

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            InvalidationHistogram().record(-1)

    def test_percentages_are_dense(self):
        histogram = InvalidationHistogram()
        histogram.record(0)
        histogram.record(3)
        assert histogram.percentages() == [50.0, 0.0, 0.0, 50.0]

    def test_share_at_most(self):
        histogram = InvalidationHistogram()
        for fanout in (0, 0, 1, 2, 3):
            histogram.record(fanout)
        assert histogram.share_at_most(0) == pytest.approx(0.4)
        assert histogram.share_at_most(1) == pytest.approx(0.6)
        assert histogram.share_at_most(3) == pytest.approx(1.0)

    def test_mean(self):
        histogram = InvalidationHistogram()
        for fanout in (0, 1, 2, 3):
            histogram.record(fanout)
        assert histogram.mean_fanout == pytest.approx(1.5)

    def test_merge(self):
        a, b = InvalidationHistogram(), InvalidationHistogram()
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.total == 3
        assert a.count(1) == 2
        assert a.count(2) == 1

    def test_as_dict_is_a_copy(self):
        histogram = InvalidationHistogram()
        histogram.record(1)
        snapshot = histogram.as_dict()
        snapshot[1] = 99
        assert histogram.count(1) == 1
