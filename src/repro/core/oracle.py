"""A coherence oracle: value-level validation of any protocol.

The simulator's protocols manipulate *state*, not data.  This oracle layers
data on top: every write stamps a block with a fresh version number, every
cached copy and main memory remember the version they hold, and every
**read hit must observe the latest version** — the definition of coherence
the paper opens with ("all copies of a main memory location ... remain
consistent when the contents of that memory location are modified").

The oracle is protocol-agnostic.  It watches the sharing table before and
after each access to infer copy acquisition and invalidation, and watches
the emitted bus operations to track where data actually travelled:

* a ``WRITE_THROUGH`` makes memory current;
* a ``WRITE_BACK`` makes memory current and hands the requester the data
  (snarfing);
* a ``CACHE_SUPPLY`` hands the requester the owner's current data;
* a plain ``MEM_ACCESS`` hands the requester *whatever memory holds* — if a
  protocol forgets to flush a dirty owner first, the requester receives a
  stale version and the next read hit raises :class:`CoherenceViolation`;
* holders surviving a remote write in an update protocol received the new
  word (that is what the update broadcast does).

A protocol bug — forgetting to invalidate a sharer, skipping a flush,
resurrecting a stale copy — surfaces as a violation within a few accesses,
which is what the property-based tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..interconnect.bus import BusOp
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, AccessType, TraceRecord
from ..trace.stream import SharingModel

__all__ = ["CoherenceViolation", "CoherenceOracle", "OracleReport", "validate_coherence"]


class CoherenceViolation(AssertionError):
    """A cache observed (or retained) a stale copy of a block."""


@dataclass(frozen=True)
class OracleReport:
    """Summary of a validated run."""

    references: int
    writes: int
    copies_checked: int


class CoherenceOracle:
    """Wraps a protocol and validates data coherence access by access."""

    def __init__(self, protocol: CoherenceProtocol) -> None:
        self.protocol = protocol
        #: latest version written per block (0 = never written)
        self._latest: Dict[int, int] = {}
        #: version currently stored in main memory
        self._memory: Dict[int, int] = {}
        #: version held by each (cache, block) copy
        self._copy_version: Dict[Tuple[int, int], int] = {}
        self.copies_checked = 0
        self.writes = 0

    def access(self, cache: int, access: AccessType, block: int):
        """Forward one access to the protocol, validating coherence."""
        protocol = self.protocol
        sharing = protocol.sharing
        held_before = sharing.is_held(block, cache)
        holders_before = sharing.holders(block)

        if access is AccessType.READ and held_before:
            self._check_current(cache, block, "read hit")

        outcome = protocol.access(cache, access, block)
        ops = {op for op, _count in outcome.ops}
        holders_after = sharing.holders(block)
        latest = self._latest.get(block, 0)

        # Data movement implied by the bus operations.
        if BusOp.WRITE_BACK in ops:
            # The dirty owner's (current) data went to memory.
            self._memory[block] = latest
        if not held_before and sharing.is_held(block, cache):
            # The requester obtained a copy: from the owner (a supply or a
            # snarfed write-back) it is current; from memory it is whatever
            # memory holds — which is stale exactly when a dirty owner was
            # skipped, and the next read hit will flag it.
            owner_supplied = bool(ops & {BusOp.WRITE_BACK, BusOp.CACHE_SUPPLY})
            fetched = latest if owner_supplied else self._memory.get(block, 0)
            self._copy_version[(cache, block)] = fetched

        if access is AccessType.WRITE:
            self.writes += 1
            version = latest + 1
            self._latest[block] = version
            self._copy_version[(cache, block)] = version
            if BusOp.WRITE_THROUGH in ops:
                self._memory[block] = version
            # Update protocols keep other holders' copies current — but only
            # if a word actually went out on the bus (a write update or a
            # write-through the snoopers observe).  A broken invalidation
            # protocol that silently leaves sharers behind gets no credit,
            # and their stale copies are flagged on the next read.
            word_broadcast = bool(
                ops & {BusOp.WRITE_UPDATE, BusOp.WRITE_THROUGH}
            )
            if word_broadcast:
                survivors = holders_before & holders_after & ~(1 << cache)
                index = 0
                while survivors:
                    if survivors & 1:
                        self._copy_version[(index, block)] = version
                    survivors >>= 1
                    index += 1

        # Drop bookkeeping for copies the protocol invalidated.
        removed = holders_before & ~holders_after
        index = 0
        while removed:
            if removed & 1:
                self._copy_version.pop((index, block), None)
            removed >>= 1
            index += 1
        return outcome

    def _check_current(self, cache: int, block: int, context: str) -> None:
        self.copies_checked += 1
        held = self._copy_version.get((cache, block), 0)
        latest = self._latest.get(block, 0)
        if held != latest:
            raise CoherenceViolation(
                f"{context}: cache {cache} holds version {held} of block "
                f"{block:#x} but the latest write is version {latest} "
                f"(protocol {self.protocol.name})"
            )

    def check_all_copies(self) -> None:
        """Assert every currently cached copy is current (end-of-run sweep)."""
        for (cache, block), version in list(self._copy_version.items()):
            if not self.protocol.sharing.is_held(block, cache):
                continue
            self.copies_checked += 1
            latest = self._latest.get(block, 0)
            if version != latest:
                raise CoherenceViolation(
                    f"final sweep: cache {cache} holds version {version} of "
                    f"block {block:#x}, latest is {latest} "
                    f"(protocol {self.protocol.name})"
                )


def validate_coherence(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
) -> OracleReport:
    """Replay a trace through the oracle; raise on any stale read.

    This is the unified reference pipeline with ``check_values=True`` — the
    same feed loop as :func:`~repro.core.simulator.simulate`, with every
    access routed through the oracle.  Returns a report with how many copy
    checks the run performed.
    """
    from .counters import SimulationCounters
    from .pipeline import ReferencePipeline

    pipeline = ReferencePipeline(
        protocol,
        block_size=block_size,
        sharing_model=sharing_model,
        check_values=True,
    )
    counters = SimulationCounters()
    pipeline.feed(trace, counters)
    oracle = pipeline.oracle
    oracle.check_all_copies()
    return OracleReport(
        references=counters.references,
        writes=oracle.writes,
        copies_checked=oracle.copies_checked,
    )
