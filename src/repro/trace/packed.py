"""Column-packed traces: full-scale runs without per-record objects.

A full-length paper trace is ~3.2M references; as Python objects that is
hundreds of megabytes and a lot of allocator churn.  :class:`PackedTrace`
stores the same information as five NumPy columns (~45 MB at full scale),
iterates back into :class:`~repro.trace.record.TraceRecord` objects on
demand, and round-trips through a compressed ``.npz`` file — convenient for
generating a full-scale trace once and replaying it across many protocol
runs.

NumPy is an optional dependency of the library: importing this module
without it raises a clear error, and nothing else in the package depends
on it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

try:
    import numpy as _np
except ImportError as exc:  # pragma: no cover - environment without numpy
    raise ImportError(
        "repro.trace.packed requires numpy; install it or use the plain "
        "record iterators"
    ) from exc

from .record import AccessType, TraceRecord

__all__ = ["PackedTrace"]

PathLike = Union[str, Path]

_FLAG_SPIN = 0x1
_FLAG_OS = 0x2


class PackedTrace:
    """An immutable, column-oriented container of trace records."""

    __slots__ = ("cpu", "pid", "access", "address", "flags")

    def __init__(self, cpu, pid, access, address, flags) -> None:
        lengths = {len(cpu), len(pid), len(access), len(address), len(flags)}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        self.cpu = _np.asarray(cpu, dtype=_np.uint16)
        self.pid = _np.asarray(pid, dtype=_np.uint32)
        self.access = _np.asarray(access, dtype=_np.uint8)
        self.address = _np.asarray(address, dtype=_np.uint64)
        self.flags = _np.asarray(flags, dtype=_np.uint8)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "PackedTrace":
        cpu, pid, access, address, flags = [], [], [], [], []
        for record in records:
            cpu.append(record.cpu)
            pid.append(record.pid)
            access.append(int(record.access))
            address.append(record.address)
            flags.append(
                (_FLAG_SPIN if record.is_lock_spin else 0)
                | (_FLAG_OS if record.is_os else 0)
            )
        return cls(cpu, pid, access, address, flags)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cpu)

    def __iter__(self) -> Iterator[TraceRecord]:
        cpu, pid = self.cpu, self.pid
        access, address, flags = self.access, self.address, self.flags
        for index in range(len(cpu)):
            flag = int(flags[index])
            yield TraceRecord(
                cpu=int(cpu[index]),
                pid=int(pid[index]),
                access=AccessType(int(access[index])),
                address=int(address[index]),
                is_lock_spin=bool(flag & _FLAG_SPIN),
                is_os=bool(flag & _FLAG_OS),
            )

    def __getitem__(self, index) -> Union[TraceRecord, "PackedTrace"]:
        if isinstance(index, slice):
            return PackedTrace(
                self.cpu[index],
                self.pid[index],
                self.access[index],
                self.address[index],
                self.flags[index],
            )
        flag = int(self.flags[index])
        return TraceRecord(
            cpu=int(self.cpu[index]),
            pid=int(self.pid[index]),
            access=AccessType(int(self.access[index])),
            address=int(self.address[index]),
            is_lock_spin=bool(flag & _FLAG_SPIN),
            is_os=bool(flag & _FLAG_OS),
        )

    # -- vectorised statistics -------------------------------------------------

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the columns."""
        return sum(
            column.nbytes
            for column in (self.cpu, self.pid, self.access, self.address, self.flags)
        )

    def instruction_count(self) -> int:
        return int((self.access == int(AccessType.INSTR)).sum())

    def read_count(self) -> int:
        return int((self.access == int(AccessType.READ)).sum())

    def write_count(self) -> int:
        return int((self.access == int(AccessType.WRITE)).sum())

    def spin_count(self) -> int:
        return int((self.flags & _FLAG_SPIN).astype(bool).sum())

    def os_count(self) -> int:
        return int((self.flags & _FLAG_OS).astype(bool).sum())

    def distinct_data_blocks(self, block_size: int = 16) -> int:
        data = self.access != int(AccessType.INSTR)
        return len(_np.unique(self.address[data] // block_size))

    # -- persistence ------------------------------------------------------------

    def save(self, path: PathLike) -> None:
        """Write the columns to a compressed ``.npz`` file."""
        _np.savez_compressed(
            path,
            cpu=self.cpu,
            pid=self.pid,
            access=self.access,
            address=self.address,
            flags=self.flags,
        )

    @classmethod
    def load(cls, path: PathLike) -> "PackedTrace":
        with _np.load(path) as data:
            return cls(
                data["cpu"],
                data["pid"],
                data["access"],
                data["address"],
                data["flags"],
            )
