"""Section 5.2: impact of spin locks on consistency performance.

Paper: excluding lock-test reads improves Dir1NB from 0.32 to 0.12 bus
cycles per reference while Dir0B "gave the same performance as before".
"""

import pytest

from repro.analysis.spinlock import spin_lock_impact


def test_s52_spinlock_impact(benchmark, trace_factories, save_result):
    impacts = benchmark.pedantic(
        spin_lock_impact, args=(trace_factories,), rounds=1, iterations=1
    )
    dir1nb, dir0b = impacts["dir1nb"], impacts["dir0b"]
    save_result(
        "s52_spinlock_impact",
        "Section 5.2: excluding lock-test reads (normalised to the original\n"
        "reference count):\n"
        f"  {dir1nb.render()}  (paper: 0.32 -> 0.12)\n"
        f"  {dir0b.render()}  (paper: unchanged)",
    )
    # Dir1NB improves dramatically: locks stop ping-ponging between caches.
    assert dir1nb.improvement_factor > 1.3
    # Dir0B is essentially unchanged: spin reads hit in the spinner's cache.
    assert dir0b.improvement_factor == pytest.approx(1.0, abs=0.1)
    # Even without spins Dir1NB stays the most expensive scheme by far.
    assert dir1nb.without_spins > 2 * dir0b.without_spins
