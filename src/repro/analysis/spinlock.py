"""Section 5.2: the impact of spin locks on consistency performance.

The paper re-runs its simulations "excluding all the tests on locks" (the
spin reads of test-and-test-and-set) and finds that Dir1NB improves
dramatically (0.32 -> 0.12 bus cycles per reference, because locks no longer
ping-pong between the spinning caches) while Dir0B is unchanged.

Normalisation matters here: dropping the spin reads shrinks the trace, so a
naive cycles-per-*remaining*-reference would rise for every scheme purely
through the denominator.  To reproduce "Dir0B gave the same performance as
before", the filtered run's cycles are charged against the ORIGINAL
reference count — the spin reads still execute on the processor, they just
never touch the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from ..core.simulator import simulate
from ..interconnect.bus import BusCostModel
from ..protocols.registry import create_protocol
from ..trace.record import TraceRecord
from ..trace.stream import exclude_lock_spins
from ._defaults import _default_bus

__all__ = ["SpinLockImpact", "spin_lock_impact"]

TraceFactory = Callable[[], Iterable[TraceRecord]]


@dataclass(frozen=True)
class SpinLockImpact:
    """Bus cycles per reference with and without lock-test reads."""

    scheme: str
    with_spins: float
    without_spins: float

    @property
    def improvement_factor(self) -> float:
        """How many times cheaper the scheme is once spins are excluded."""
        if self.without_spins == 0:
            return float("inf")
        return self.with_spins / self.without_spins

    def render(self) -> str:
        return (
            f"{self.scheme}: {self.with_spins:.4f} -> {self.without_spins:.4f} "
            f"cycles/ref ({self.improvement_factor:.2f}x)"
        )


def spin_lock_impact(
    trace_factories: Mapping[str, TraceFactory],
    schemes: Sequence[str] = ("dir1nb", "dir0b"),
    n_caches: int = 4,
    bus: Optional[BusCostModel] = None,
) -> Dict[str, SpinLockImpact]:
    """Run the Section 5.2 experiment over the given traces.

    Returns per-scheme cycle costs averaged over the traces, with the
    lock-test-excluded run normalised to the unfiltered reference count.
    """
    bus = _default_bus(bus)
    results: Dict[str, SpinLockImpact] = {}
    for scheme in schemes:
        with_spins = []
        without_spins = []
        label = scheme
        for trace_name, factory in trace_factories.items():
            baseline = simulate(
                create_protocol(scheme, n_caches), factory(), trace_name=trace_name
            )
            label = baseline.protocol_label
            original_refs = baseline.references
            with_spins.append(baseline.cycles_per_reference(bus))
            filtered = simulate(
                create_protocol(scheme, n_caches),
                exclude_lock_spins(factory()),
                trace_name=f"{trace_name} (no lock tests)",
            )
            # Charge the filtered run's total cycles against the original
            # reference count (see the module docstring).
            cycles = filtered.cycles_per_reference(bus) * filtered.references
            without_spins.append(cycles / original_refs)
        results[scheme] = SpinLockImpact(
            scheme=label,
            with_spins=sum(with_spins) / len(with_spins),
            without_spins=sum(without_spins) / len(without_spins),
        )
    return results
