"""Interconnect substrate: bus timing models and cost accounting."""

from .bus import (
    TABLE5_CATEGORY,
    BusCostModel,
    BusOp,
    BusTiming,
    Table5Category,
    nonpipelined_bus,
    pipelined_bus,
    standard_buses,
)
from .costs import BusOpCounts, CostSummary, summarize_costs
from .network import NetworkModel, Topology, network_cost_model

__all__ = [
    "TABLE5_CATEGORY",
    "BusCostModel",
    "BusOp",
    "BusTiming",
    "Table5Category",
    "nonpipelined_bus",
    "pipelined_bus",
    "standard_buses",
    "NetworkModel",
    "Topology",
    "network_cost_model",
    "BusOpCounts",
    "CostSummary",
    "summarize_costs",
]
