"""On-disk result cache for sweep cells.

Results are pickled one file per cache key under a directory the caller
chooses.  The key (see :meth:`repro.runner.spec.RunSpec.cache_key`) hashes
everything that determines the result, so a hit can be replayed verbatim.
Specs carrying a ``characterization`` are additionally stored by the sweep
engine under their :meth:`~repro.runner.spec.RunSpec.base_cache_key` — the
key with the pricing axis cleared — because the simulated counters do not
depend on pricing; that second entry is what lets a sweep over brand-new
characterization files complete with zero simulations (re-pricing, see
``docs/characterization.md``).
A *missing* entry is an ordinary miss; an entry that exists but cannot be
decoded — truncated file, stale pickle, wrong type — is **corrupt**: it is
logged as a structured warning, counted in the ``cache.corrupt`` metric,
and deleted so the next run regenerates it instead of tripping over it
forever.

Alongside each result, :meth:`ResultCache.put` stores the run's
:class:`~repro.obs.manifest.RunManifest` as ``<key>.manifest.json`` —
human-readable provenance (spec, package version, host, wall time, peak
RSS) for every number the cache can serve.  Manifests are advisory: their
absence or corruption never invalidates the pickled result.

Writes go through a temp file + :func:`os.replace` so concurrent sweeps
sharing a cache directory never observe half-written entries.  A write
that fails outright — full or read-only disk, permissions — is *degraded*,
not fatal: :meth:`ResultCache.put` logs it, bumps the ``cache.put_errors``
metric and returns ``False``, and the sweep keeps the in-memory result and
carries on (the cell simply won't be warm next run).  Leftover ``*.tmp``
files from writers that were killed mid-write are swept when the cache is
opened.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Optional, Union

from ..core.simulator import SimulationResult
from ..obs.log import fields, get_logger
from ..obs.manifest import RunManifest
from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["ResultCache"]

logger = get_logger("runner.cache")


class ResultCache:
    """A directory of pickled :class:`SimulationResult`s, keyed by spec hash.

    ``registry`` receives the cache's metrics (``cache.hit``,
    ``cache.miss``, ``cache.corrupt`` counters); it defaults to the
    process-wide registry from :func:`repro.obs.metrics.get_registry`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else get_registry()
        #: lookups that returned a usable result
        self.hits = 0
        #: lookups that found nothing usable
        self.misses = 0
        #: lookups that found an undecodable entry (subset of ``misses``)
        self.corrupt = 0
        #: stores that failed and were degraded to in-memory-only results
        self.put_errors = 0
        self._sweep_tmp_files()

    def _sweep_tmp_files(self) -> None:
        """Remove ``*.tmp`` leftovers from writers killed mid-write."""
        swept = 0
        for tmp in self.directory.glob("*.tmp"):
            tmp.unlink(missing_ok=True)
            swept += 1
        if swept:
            logger.warning(
                "swept leftover temp files from interrupted writers",
                extra=fields(directory=str(self.directory), swept=swept),
            )

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def manifest_path_for(self, key: str) -> Path:
        return self.directory / f"{key}.manifest.json"

    def _corrupt(self, path: Path, key: str, reason: str) -> None:
        """Record and remove an undecodable entry so it gets regenerated."""
        self.corrupt += 1
        self.registry.counter("cache.corrupt").inc()
        logger.warning(
            "corrupt cache entry removed",
            extra=fields(key=key, path=str(path), reason=reason),
        )
        path.unlink(missing_ok=True)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (counted as hit/miss)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            self._corrupt(path, key, f"{type(error).__name__}: {error}")
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            self._corrupt(path, key, f"wrong type {type(result).__name__}")
            return None
        self.hits += 1
        self.registry.counter("cache.hit").inc()
        return result

    def get_manifest(self, key: str) -> Optional[RunManifest]:
        """The stored provenance for ``key``'s result, if any survives."""
        path = self.manifest_path_for(key)
        try:
            return RunManifest.read(path)
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def _write_result(self, key: str, tmp: Path, result: SimulationResult) -> None:
        """Seam: serialise ``result`` to ``tmp`` (overridden by fault injection)."""
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def _put_error(self, key: str, tmp: Path, error: OSError) -> None:
        """Degrade a failed store: log, count, clean up, carry on."""
        self.put_errors += 1
        self.registry.counter("cache.put_errors").inc()
        logger.warning(
            "cache store failed; keeping result in memory only",
            extra=fields(
                key=key, reason=f"{type(error).__name__}: {error}"
            ),
        )
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - same sick disk
            pass

    def put(
        self,
        key: str,
        result: SimulationResult,
        manifest: Optional[RunManifest] = None,
    ) -> bool:
        """Store ``result`` (and its provenance) under ``key`` atomically.

        Returns ``True`` when the result landed on disk.  A failed write
        (full or read-only disk) is degraded, never raised: the error is
        logged, counted in ``cache.put_errors``/:attr:`put_errors`, and
        ``False`` comes back so the caller knows the entry stayed
        in-memory only.
        """
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self._write_result(key, tmp, result)
            os.replace(tmp, path)
        except OSError as error:
            self._put_error(key, tmp, error)
            return False
        if manifest is not None:
            manifest_path = self.manifest_path_for(key)
            manifest_tmp = manifest_path.with_name(
                f"{manifest_path.name}.{os.getpid()}.tmp"
            )
            try:
                manifest.write(manifest_tmp)
                os.replace(manifest_tmp, manifest_path)
            except OSError as error:
                # The result is safe; losing advisory provenance is logged
                # and counted but never fails the store.
                self._put_error(key, manifest_tmp, error)
        return True

    def clear(self) -> int:
        """Delete every cached entry; returns how many results were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.manifest.json"):
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, corrupt={self.corrupt}, "
            f"put_errors={self.put_errors})"
        )
