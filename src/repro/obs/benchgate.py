"""The benchmark-history ledger and regression gate.

The benchmark suite writes machine-readable ``BENCH_*.json`` artifacts
(``benchmarks/results/``) but until now each run overwrote the last — the
repo had numbers, never a *trajectory*.  This module gives them one:

* :func:`extract_throughputs` pulls the throughput-like leaves out of a
  ``BENCH_*.json`` document (any positive numeric leaf whose dotted path
  mentions ``refs_per_sec`` or ends in ``speedup``), so both the
  registry-shaped simulator benchmark and the report-shaped sweep
  benchmark feed the same ledger without bespoke parsers;
* :func:`append_history` appends one entry per run to an append-only
  JSONL ledger (``benchmarks/results/history.jsonl``), keyed by git SHA,
  host and benchmark scale;
* :func:`check_latest` compares the newest entry against a baseline (the
  per-metric **median** of the preceding entries at the same scale, so
  one noisy run cannot poison the baseline) and reports every metric
  that regressed beyond a noise band as a :class:`Delta`;
* :func:`render_deltas` turns the comparison into the readable table CI
  prints before failing.

``tools/bench_history.py`` is the CLI half: it appends after a benchmark
run and gates in CI (``--check``, report-only on PRs).  Throughput on
shared CI runners is noisy, hence the generous default
:data:`DEFAULT_NOISE_PCT` band and the median baseline; the gate is meant
to catch step-function regressions (an accidental O(n^2), a dropped fast
path), not single-digit jitter.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "DEFAULT_NOISE_PCT",
    "Delta",
    "append_history",
    "check_latest",
    "extract_throughputs",
    "load_history",
    "render_deltas",
]

#: Relative drop (percent) a metric must exceed before it counts as a
#: regression.  Deliberately wide: CI runners share cores.
DEFAULT_NOISE_PCT = 30.0

#: How many prior same-scale entries feed the median baseline.
BASELINE_WINDOW = 5


def extract_throughputs(
    document: Mapping[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Throughput-like leaves of a ``BENCH_*.json`` document, by dotted path.

    A leaf qualifies when it is a positive number and its dotted path
    contains ``refs_per_sec`` or ends with ``speedup`` — zero values are
    skipped (a 0.0 refs/sec gauge means "not exercised", not "infinitely
    slow").
    """
    found: Dict[str, float] = {}
    for key, value in document.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            found.update(extract_throughputs(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if value > 0 and (
                "refs_per_sec" in path or path.endswith("speedup")
            ):
                found[path] = float(value)
    return found


def _entry(
    bench: Mapping[str, Mapping[str, float]],
    sha: str,
    host: str,
    scale: float,
    timestamp: Optional[float] = None,
) -> dict:
    return {
        "ts": time.time() if timestamp is None else float(timestamp),
        "sha": sha,
        "host": host,
        "scale": float(scale),
        "bench": {name: dict(metrics) for name, metrics in bench.items()},
    }


def append_history(
    history_path: Union[str, Path],
    results_dir: Union[str, Path],
    sha: str,
    host: str,
    scale: float,
    timestamp: Optional[float] = None,
) -> Optional[dict]:
    """Append one ledger entry built from ``BENCH_*.json`` in ``results_dir``.

    Returns the appended entry, or None (and appends nothing) when the
    directory holds no ``BENCH_*.json`` with throughput leaves — an empty
    entry would only dilute the baseline window.
    """
    results_dir = Path(results_dir)
    bench: Dict[str, Dict[str, float]] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(document, dict):
            continue
        metrics = extract_throughputs(document)
        if metrics:
            bench[path.stem] = metrics
    if not bench:
        return None
    entry = _entry(bench, sha=sha, host=host, scale=scale, timestamp=timestamp)
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: Union[str, Path]) -> List[dict]:
    """Every decodable ledger entry, in append order (missing file → [])."""
    entries: List[dict] = []
    try:
        lines = Path(history_path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed run; skip like the journal does
        if isinstance(entry, dict) and isinstance(entry.get("bench"), dict):
            entries.append(entry)
    return entries


@dataclass(frozen=True)
class Delta:
    """One metric's latest value against its baseline."""

    bench: str
    metric: str
    baseline: float
    latest: float

    @property
    def change_pct(self) -> float:
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.latest - self.baseline) / self.baseline

    @property
    def path(self) -> str:
        return f"{self.bench}:{self.metric}"


def _flatten(entry: Mapping[str, object]) -> Dict[Tuple[str, str], float]:
    flat: Dict[Tuple[str, str], float] = {}
    bench = entry.get("bench")
    if not isinstance(bench, Mapping):
        return flat
    for name, metrics in bench.items():
        if not isinstance(metrics, Mapping):
            continue
        for metric, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[(str(name), str(metric))] = float(value)
    return flat


def check_latest(
    entries: Iterable[Mapping[str, object]],
    noise_pct: float = DEFAULT_NOISE_PCT,
) -> Tuple[List[Delta], List[Delta]]:
    """Compare the newest entry to its same-scale median baseline.

    Returns ``(regressions, others)``: metrics that dropped more than
    ``noise_pct`` percent below baseline, and every other shared metric
    (for the report table).  With fewer than two same-scale entries there
    is nothing to compare and both lists are empty.
    """
    if noise_pct < 0:
        raise ValueError(f"noise_pct must be >= 0, got {noise_pct}")
    entries = list(entries)
    if len(entries) < 2:
        return [], []
    latest = entries[-1]
    scale = latest.get("scale")
    prior = [e for e in entries[:-1] if e.get("scale") == scale]
    prior = prior[-BASELINE_WINDOW:]
    if not prior:
        return [], []
    latest_flat = _flatten(latest)
    baselines: Dict[Tuple[str, str], float] = {}
    for key in latest_flat:
        history = [
            flat[key] for flat in map(_flatten, prior) if key in flat
        ]
        if history:
            baselines[key] = median(history)
    regressions: List[Delta] = []
    others: List[Delta] = []
    for key, baseline in sorted(baselines.items()):
        bench, metric = key
        delta = Delta(
            bench=bench, metric=metric,
            baseline=baseline, latest=latest_flat[key],
        )
        if delta.change_pct < -noise_pct:
            regressions.append(delta)
        else:
            others.append(delta)
    return regressions, others


def render_deltas(
    regressions: List[Delta],
    others: List[Delta],
    noise_pct: float = DEFAULT_NOISE_PCT,
) -> str:
    """The readable comparison table CI prints (regressions first)."""
    rows = regressions + others
    if not rows:
        return "bench history: nothing to compare (need 2+ same-scale runs)"
    width = max(len(row.path) for row in rows)
    header = (
        f"{'metric':<{width}}  {'baseline':>14}  {'latest':>14}  {'change':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        flag = "  REGRESSED" if row in regressions else ""
        lines.append(
            f"{row.path:<{width}}  {row.baseline:>14,.1f}  "
            f"{row.latest:>14,.1f}  {row.change_pct:>+8.1f}%{flag}"
        )
    verdict = (
        f"{len(regressions)} metric(s) regressed beyond the "
        f"{noise_pct:g}% noise band"
        if regressions
        else f"all {len(rows)} metrics within the {noise_pct:g}% noise band"
    )
    lines.append(verdict)
    return "\n".join(lines)
