"""Figure 1: caches invalidated per write to a previously-clean block."""

from repro.analysis.figures import figure1


def test_figure1_invalidation_histogram(benchmark, comparison, save_result):
    figure = benchmark(figure1, comparison)
    save_result("figure1_invalidation_histogram", figure.render())

    # "on average, over 85% of the writes to previously-clean blocks cause
    # invalidations in no more than one cache."  Our synthetic traces land
    # just above 80%; the qualitative claim — limited-pointer directories
    # cover the common case — holds.
    assert figure.share_at_most_one > 0.75
    # The histogram is bounded by the 4-processor system.
    assert len(figure.percentages) <= 4
    # Fan-outs of 2+ are rare (paper: ~15% combined).
    tail = sum(figure.percentages[2:])
    assert tail < 25.0
