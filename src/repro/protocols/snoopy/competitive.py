"""A competitive update/invalidate hybrid snoopy protocol.

The paper's comparison poses invalidation (Dir0B and friends) against pure
update (Dragon) and finds each wins on different sharing patterns: updates
are perfect for actively read-shared data (locks, producer/consumer) and
wasteful for migratory data whose old readers never look again.  The
classic resolution — competitive snooping (Karlin et al., and the
hardware EDWP variants) — is implemented here as an extension:

each cached copy carries a small counter; a bus *update* to the block
increments it, a local access resets it, and a copy whose counter reaches
``limit`` **self-invalidates** — it has proven it is no longer being read,
so further updates to it would be pure waste.  ``limit=∞`` degenerates to
Dragon exactly; small limits approach invalidation behaviour on migratory
data while keeping Dragon's strength on actively shared data.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER, iter_bits
from ..base import AccessOutcome, CoherenceProtocol, OpList
from ..events import Event

__all__ = ["CompetitiveUpdate"]


class CompetitiveUpdate(CoherenceProtocol):
    """Dragon with per-copy self-invalidation after ``limit`` unused updates."""

    name = "competitive"
    label = "EDWP"
    kind = "snoopy"

    def __init__(self, n_caches: int, limit: int = 4) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        super().__init__(n_caches)
        self.limit = limit
        #: (cache, block) -> updates received since the cache last touched it
        self._unused_updates: Dict[Tuple[int, int], int] = {}
        #: copies dropped by the competitive rule (diagnostic)
        self.self_invalidations = 0

    # -- bookkeeping -----------------------------------------------------------

    def _touch(self, cache: int, block: int) -> None:
        self._unused_updates.pop((cache, block), None)

    def _age_remote_copies(self, writer: int, block: int) -> None:
        """Distribute one update; drop copies that hit the limit."""
        sharing = self.sharing
        for holder in list(iter_bits(sharing.remote_holders(block, writer))):
            key = (holder, block)
            count = self._unused_updates.get(key, 0) + 1
            if count >= self.limit:
                sharing.remove_holder(block, holder)
                self._unused_updates.pop(key, None)
                self.self_invalidations += 1
            else:
                self._unused_updates[key] = count

    # -- reads ----------------------------------------------------------------

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            self._touch(cache, block)
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        sharing.add_holder(block, cache)
        self._touch(cache, block)
        if owner != NO_OWNER:
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY, ops=((BusOp.CACHE_SUPPLY, 1),)
            )
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        return AccessOutcome(event=event, ops=((BusOp.MEM_ACCESS, 1),))

    # -- writes ----------------------------------------------------------------

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            self._touch(cache, block)
            if sharing.remote_holders(block, cache):
                # Broadcast the update; aged-out copies drop instead.
                self._age_remote_copies(cache, block)
                sharing.set_dirty(block, cache)
                return AccessOutcome(
                    event=Event.WH_DISTRIB, ops=((BusOp.WRITE_UPDATE, 1),)
                )
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WH_LOCAL)
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        owner = self._remote_dirty_owner(cache, block)
        shared = bool(sharing.remote_holders(block, cache))
        if owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY
            ops: OpList = ((BusOp.CACHE_SUPPLY, 1),)
        elif shared:
            event = Event.WM_BLK_CLEAN
            ops = ((BusOp.MEM_ACCESS, 1),)
        else:
            event = Event.WM_UNCACHED
            ops = ((BusOp.MEM_ACCESS, 1),)
        sharing.add_holder(block, cache)
        self._touch(cache, block)
        if shared:
            ops += ((BusOp.WRITE_UPDATE, 1),)
            self._age_remote_copies(cache, block)
        sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops)

    def evict(self, cache: int, block: int) -> OpList:
        self._unused_updates.pop((cache, block), None)
        return super().evict(cache, block)
