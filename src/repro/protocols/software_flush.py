"""A software cache-consistency scheme (the paper's Section 5.2 aside).

"Software cache consistency schemes that flush a critical section from the
cache after each use will behave like the Dir1NB scheme.  For reasonable
performance, these schemes must take special care in handling locks."

This class makes that remark concrete: coherence is maintained not by
hardware messages but by compiler/runtime-inserted flushes, so at most one
cache holds a (shared) block at a time — exactly Dir1NB's state-change
specification.  The *costs* differ from Dir1NB in one way: removing the old
copy is a local cache-management instruction, not a bus message, so no
``INVALIDATE`` cycles are charged; dirty data still has to be written back
through memory before the next processor may read it (there is no
cache-to-cache path at all in a software scheme).

The Section 5.2 conclusion follows immediately: under spin locks this
scheme inherits Dir1NB's lock-block ping-pong, with every bounce paying a
full memory round trip.
"""

from __future__ import annotations

from typing import Optional

from ..interconnect.bus import BusOp
from ..memory.sharing import NO_OWNER
from .base import AccessOutcome
from .directory.dir1nb import Dir1NB, single_copy_rules
from .events import Event
from .table import TransitionTable, compile_rules

__all__ = ["SoftwareFlush"]


class SoftwareFlush(Dir1NB):
    """Software-managed consistency: flush-on-handoff, single copy."""

    name = "softflush"
    label = "SoftFlush"
    kind = "software"

    def _take_over(
        self, cache: int, block: int, dirty_after: bool, write: bool
    ) -> AccessOutcome:
        """Move the sole copy without hardware invalidation messages.

        The previous holder flushed the block itself (a local instruction);
        dirty data goes back through memory, after which the requester
        fetches from memory — a software scheme cannot snarf the write-back.
        """
        sharing = self.sharing
        owner = sharing.dirty_owner(block)
        remote = sharing.remote_holders(block, cache)
        if remote == 0:
            event = Event.WM_UNCACHED if write else Event.RM_UNCACHED
            ops = ((BusOp.MEM_ACCESS, 1),)
        elif owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY if write else Event.RM_BLK_DIRTY
            # Write the dirty data back, then fetch it from memory: two full
            # transactions, no snarfing.
            ops = ((BusOp.WRITE_BACK, 1), (BusOp.MEM_ACCESS, 1))
        else:
            event = Event.WM_BLK_CLEAN if write else Event.RM_BLK_CLEAN
            ops = ((BusOp.MEM_ACCESS, 1),)
        sharing.purge(block)
        sharing.add_holder(block, cache)
        if dirty_after:
            sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops)

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(
            self.name,
            single_copy_rules(
                ((BusOp.MEM_ACCESS, 1),),
                ((BusOp.WRITE_BACK, 1), (BusOp.MEM_ACCESS, 1)),
                ((BusOp.MEM_ACCESS, 1),),
            ),
        )

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """No hardware directory at all."""
        return 0
