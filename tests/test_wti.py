"""Unit tests for the WTI snoopy protocol."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.snoopy.wti import WTI
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return WTI(4)


class TestWriteThrough:
    def test_every_write_goes_to_memory(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (0, "w", 5), (0, "w", 5)])
        for outcome in outcomes:
            assert outcome.op_count(BusOp.WRITE_THROUGH) == 1

    def test_write_hit_invalidates_snoopers_for_free(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.event is Event.WRITE_HIT
        assert dict(hit.ops) == {BusOp.WRITE_THROUGH: 1}
        assert hit.invalidation_fanout == 1
        assert not proto.sharing.is_held(5, 1)

    def test_no_block_is_ever_dirty(self, proto):
        rng = random.Random(13)
        for _ in range(3000):
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
            for block in range(25):
                assert not proto.sharing.is_dirty(block)

    def test_write_miss_allocates_after_fetch(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {BusOp.MEM_ACCESS: 1, BusOp.WRITE_THROUGH: 1}
        assert proto.sharing.is_held(5, 0)

    def test_first_ref_write_still_pays_the_write_through(self, proto):
        # The block fetch is excluded (first reference) but WTI policy sends
        # the written word to memory regardless.
        (outcome,) = run_ops(proto, [(0, "w", 5)])
        assert outcome.event is Event.WM_FIRST_REF
        assert dict(outcome.ops) == {BusOp.WRITE_THROUGH: 1}

    def test_reads_always_served_by_memory(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "r", 5)])
        assert dict(outcomes[1].ops) == {BusOp.MEM_ACCESS: 1}


class TestEventEquivalenceWithDir0B:
    """Same state-change model: read events match Dir0B exactly."""

    def test_read_events_match(self):
        rng = random.Random(61)
        a, b = WTI(4), Dir0B(4)
        for _ in range(5000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(30)
            out_a, out_b = a.access(cache, access, block), b.access(
                cache, access, block
            )
            if access is AccessType.READ:
                # WTI has no dirty blocks, so its dirty-remote misses appear
                # as clean-remote; hit/miss classification is identical.
                assert out_a.event.is_miss == out_b.event.is_miss
                assert (out_a.event is Event.READ_HIT) == (
                    out_b.event is Event.READ_HIT
                )

    def test_read_miss_rates_match_dir0b(self):
        rng = random.Random(67)
        a, b = WTI(4), Dir0B(4)
        misses_a = misses_b = 0
        for _ in range(6000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(30)
            out_a, out_b = a.access(cache, access, block), b.access(
                cache, access, block
            )
            if access is AccessType.READ:
                misses_a += out_a.event.is_miss
                misses_b += out_b.event.is_miss
        assert misses_a == misses_b
