"""Distributed vs centralised directories: the Section 2/7 bandwidth claim.

"The basic bandwidth limitation to the memory and the directory can be
mitigated by distributing them on the processor boards.  This technique
allows the bandwidth to both the memory and the directory to scale with the
number of processors."

This module quantifies that claim with a simple service model.  The
simulator measures how many directory accesses and memory accesses a
reference generates (rates per reference).  A machine of ``n`` processors
generates ``n x rate`` requests; a *centralised* directory/memory module
serves them all, while *distributed* modules each serve ``1/n`` of them
(addresses interleave uniformly — the paper's implicit assumption).  The
module utilisation then either grows linearly with ``n`` (centralised,
saturating quickly) or stays flat (distributed) — exactly the paper's
argument, now with measured coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.simulator import SimulationResult
from ..interconnect.bus import BusOp

__all__ = ["DirectoryLoadModel", "load_model_from_result"]


@dataclass(frozen=True)
class DirectoryLoadModel:
    """Measured request rates feeding the centralised/distributed analysis.

    Rates are per memory reference.  ``service_cycles`` is how long one
    module is busy per request (directory lookup or memory access), in
    processor-clock cycles; ``references_per_cycle`` is how many references
    one processor issues per cycle (the paper's traces: one instruction plus
    one data reference every other cycle ≈ 1).
    """

    directory_rate: float
    memory_rate: float
    directory_service_cycles: float = 2.0
    memory_service_cycles: float = 4.0
    references_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.directory_rate < 0 or self.memory_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.directory_service_cycles <= 0 or self.memory_service_cycles <= 0:
            raise ValueError("service cycles must be positive")

    def _demand_per_processor(self) -> float:
        """Module-busy cycles generated per processor per processor cycle."""
        return self.references_per_cycle * (
            self.directory_rate * self.directory_service_cycles
            + self.memory_rate * self.memory_service_cycles
        )

    def centralized_utilization(self, n_processors: int) -> float:
        """Utilisation of a single directory+memory module serving everyone."""
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        return n_processors * self._demand_per_processor()

    def distributed_utilization(self, n_processors: int) -> float:
        """Per-module utilisation with one module per processor board.

        Uniform interleaving sends each module ``1/n`` of the aggregate, so
        the per-module load is independent of ``n`` — the paper's scaling
        argument.
        """
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        return self.centralized_utilization(n_processors) / n_processors

    def max_processors_centralized(self, max_utilization: float = 0.8) -> int:
        """Largest machine a centralised module sustains below saturation."""
        if not 0 < max_utilization <= 1:
            raise ValueError("max_utilization must be in (0, 1]")
        demand = self._demand_per_processor()
        if demand == 0:
            return 1 << 30  # no shared traffic at all
        return max(1, int(max_utilization / demand))

    def sweep(
        self, processor_counts: Sequence[int]
    ) -> Dict[int, Dict[str, float]]:
        """Centralised vs distributed module utilisation per machine size."""
        return {
            n: {
                "centralized": self.centralized_utilization(n),
                "distributed": self.distributed_utilization(n),
            }
            for n in processor_counts
        }


def load_model_from_result(
    result: SimulationResult,
    directory_service_cycles: float = 2.0,
    memory_service_cycles: float = 4.0,
) -> DirectoryLoadModel:
    """Extract the directory/memory request rates from a simulation.

    Directory requests: every standalone or overlapped directory check.
    Memory requests: block fetches, write-backs and write-throughs.
    """
    ops = result.counters.ops
    directory_rate = ops.rate(BusOp.DIR_CHECK) + ops.rate(
        BusOp.DIR_CHECK_OVERLAPPED
    )
    memory_rate = (
        ops.rate(BusOp.MEM_ACCESS)
        + ops.rate(BusOp.WRITE_BACK)
        + ops.rate(BusOp.WRITE_THROUGH)
    )
    return DirectoryLoadModel(
        directory_rate=directory_rate,
        memory_rate=memory_rate,
        directory_service_cycles=directory_service_cycles,
        memory_service_cycles=memory_service_cycles,
    )
