"""Unit tests for Dir1NB (single pointer, no broadcast)."""

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.dir1nb import Dir1NB
from repro.protocols.events import Event


@pytest.fixture
def proto():
    return Dir1NB(4)


class TestReads:
    def test_first_reference_is_free(self, proto):
        (outcome,) = run_ops(proto, [(0, "r", 5)])
        assert outcome.event is Event.RM_FIRST_REF
        assert outcome.ops == ()

    def test_read_hit(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "r", 5)])
        assert outcomes[1].event is Event.READ_HIT
        assert outcomes[1].ops == ()

    def test_read_miss_to_clean_remote_moves_the_copy(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_CLEAN
        assert dict(miss.ops) == {
            BusOp.MEM_ACCESS: 1,
            BusOp.INVALIDATE: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert proto.sharing.holders(5) == 0b0001  # only cache 0 now
        assert not proto.sharing.is_held(5, 1)

    def test_read_miss_to_dirty_remote_flushes(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {
            BusOp.FLUSH_REQUEST: 1,
            BusOp.WRITE_BACK: 1,
            BusOp.INVALIDATE: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert not proto.sharing.is_dirty(5)  # written back; new copy clean

    def test_dirty_remote_miss_costs_same_as_clean_on_pipelined_bus(self, proto):
        # 1 (request) + 4 (write-back) + 1 (invalidate) == 5 + 1.
        from repro.interconnect.bus import pipelined_bus

        bus = pipelined_bus()
        clean = run_ops(Dir1NB(4), [(1, "r", 5), (0, "r", 5)])[1]
        dirty = run_ops(Dir1NB(4), [(1, "w", 5), (0, "r", 5)])[1]
        cost = lambda o: sum(bus.cost_of(op) * n for op, n in o.ops)  # noqa: E731
        assert cost(clean) == cost(dirty) == 6


class TestWrites:
    def test_write_hit_is_local_even_when_clean(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        hit = outcomes[1]
        assert hit.event is Event.WRITE_HIT
        assert hit.ops == ()
        assert proto.sharing.is_dirty_in(5, 0)

    def test_first_write_is_free_and_dirty(self, proto):
        (outcome,) = run_ops(proto, [(0, "w", 5)])
        assert outcome.event is Event.WM_FIRST_REF
        assert proto.sharing.is_dirty_in(5, 0)

    def test_write_miss_to_clean_remote(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {
            BusOp.MEM_ACCESS: 1,
            BusOp.INVALIDATE: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert proto.sharing.is_dirty_in(5, 0)

    def test_write_miss_to_dirty_remote(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_DIRTY
        assert dict(miss.ops) == {
            BusOp.FLUSH_REQUEST: 1,
            BusOp.WRITE_BACK: 1,
            BusOp.INVALIDATE: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }


class TestSingleCopyInvariant:
    def test_at_most_one_holder_always(self, proto):
        import random

        from repro.trace.record import AccessType

        rng = random.Random(3)
        for _ in range(2000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(20)
            proto.access(cache, access, block)
            assert proto.sharing.holder_count(block) <= 1
        proto.sharing.check_invariants()

    def test_lock_ping_pong_misses_every_alternation(self, proto):
        # Two caches alternately reading one block: every read misses.
        ops = [(i % 2, "r", 9) for i in range(10)]
        outcomes = run_ops(proto, ops)
        assert outcomes[0].event is Event.RM_FIRST_REF
        assert all(o.event is Event.RM_BLK_CLEAN for o in outcomes[1:])


class TestIntrospection:
    def test_directory_bits(self):
        assert Dir1NB.directory_bits_per_block(4) == 3  # 2-bit pointer + valid
        assert Dir1NB.directory_bits_per_block(1024) == 11

    def test_instruction_fetches_are_free(self, proto):
        from repro.trace.record import AccessType

        outcome = proto.access(0, AccessType.INSTR, 5)
        assert outcome.event is Event.INSTR
        assert outcome.ops == ()
        assert proto.sharing.holders(5) == 0

    def test_cache_index_bounds_checked(self, proto):
        from repro.trace.record import AccessType

        with pytest.raises(ValueError, match="out of range"):
            proto.access(4, AccessType.READ, 5)
