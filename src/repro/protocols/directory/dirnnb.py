"""DirnNB: the Censier & Feautrier full-map directory, no broadcast.

Each directory entry holds a dirty bit plus one valid ("present") bit per
cache, so the directory always knows exactly which caches hold a block.
Invalidations are therefore **sequential directed messages** — one bus cycle
per copy — instead of a broadcast, which is what makes the scheme usable on
an arbitrary interconnection network (Section 6).

Because the state-change specification is identical to Dir0B (multiple clean
copies, single dirty copy), the event frequencies match Dir0B exactly; only
the invalidation cost differs, and the paper measures that difference to be
tiny (0.0499 vs 0.0491 cycles/reference) because over 85% of invalidation
situations involve at most one remote copy (Figure 1).
"""

from __future__ import annotations

from ...interconnect.bus import BusOp
from ..base import OpList
from ..table import InvalidationSpec
from .dir0b import Dir0B

__all__ = ["DirnNB"]


class DirnNB(Dir0B):
    """Full-map (valid-bit-per-cache) directory with sequential invalidates."""

    name = "dirnnb"
    label = "DirnNB"
    kind = "directory"

    def _invalidation_ops(self, fanout: int) -> OpList:
        """One directed invalidation per remote copy."""
        return ((BusOp.INVALIDATE, fanout),)

    def _invalidation_spec(self) -> InvalidationSpec:
        """Directed messages cover every fan-out (no broadcast regime)."""
        return InvalidationSpec(threshold=None, directed=((BusOp.INVALIDATE, 1),))

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """One valid bit per cache plus the dirty bit."""
        return n_caches + 1
