"""Tests for the NumPy-packed trace container."""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st  # noqa: E402

from conftest import record  # noqa: E402
from repro.core.simulator import simulate  # noqa: E402
from repro.protocols import create_protocol  # noqa: E402
from repro.trace import standard_trace, take  # noqa: E402
from repro.trace.packed import PackedTrace  # noqa: E402
from repro.trace.record import AccessType, TraceRecord  # noqa: E402


def _sample():
    return [
        record(0, kind="i", address=0x100),
        record(1, pid=7, kind="r", address=0x200, spin=True),
        record(2, pid=8, kind="w", address=0x300, os=True),
        record(3, kind="r", address=2**40),
    ]


class TestRoundTrip:
    def test_records_round_trip(self):
        packed = PackedTrace.from_records(_sample())
        assert list(packed) == _sample()

    def test_len_and_indexing(self):
        packed = PackedTrace.from_records(_sample())
        assert len(packed) == 4
        assert packed[1] == _sample()[1]

    def test_slicing_returns_packed(self):
        packed = PackedTrace.from_records(_sample())
        tail = packed[2:]
        assert isinstance(tail, PackedTrace)
        assert list(tail) == _sample()[2:]

    def test_save_and_load(self, tmp_path):
        packed = PackedTrace.from_records(_sample())
        path = tmp_path / "trace.npz"
        packed.save(path)
        assert list(PackedTrace.load(path)) == _sample()

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="column lengths"):
            PackedTrace([0], [0, 1], [1], [0], [0])


class TestVectorisedStats:
    @pytest.fixture(scope="class")
    def packed(self):
        return PackedTrace.from_records(
            take(standard_trace("POPS", scale=1 / 128), 15000)
        )

    def test_counts_match_record_iteration(self, packed):
        records = list(packed)
        assert packed.instruction_count() == sum(
            r.is_instruction for r in records
        )
        assert packed.read_count() == sum(r.is_read for r in records)
        assert packed.write_count() == sum(r.is_write for r in records)
        assert packed.spin_count() == sum(r.is_lock_spin for r in records)
        assert packed.os_count() == sum(r.is_os for r in records)

    def test_distinct_blocks(self, packed):
        records = list(packed)
        expected = len(
            {r.address // 16 for r in records if not r.is_instruction}
        )
        assert packed.distinct_data_blocks() == expected

    def test_memory_footprint_is_compact(self, packed):
        # 16 bytes of columns per record vs hundreds for Python objects.
        assert packed.nbytes <= 16 * len(packed)

    def test_simulation_from_packed_matches_records(self, packed):
        from_packed = simulate(create_protocol("dir0b", 4), packed)
        from_records = simulate(create_protocol("dir0b", 4), list(packed))
        assert from_packed.counters.events == from_records.counters.events


#: Records spanning the full representable width of every packed column:
#: cpu is uint16, pid uint32, address uint64, plus both boolean flags.
_FUZZ_RECORDS = st.builds(
    TraceRecord,
    cpu=st.integers(0, 2**16 - 1),
    pid=st.integers(0, 2**32 - 1),
    access=st.sampled_from(list(AccessType)),
    address=st.integers(0, 2**64 - 1),
    is_lock_spin=st.booleans(),
    is_os=st.booleans(),
)


class TestRoundTripFuzz:
    @settings(max_examples=200, deadline=None)
    @given(records=st.lists(_FUZZ_RECORDS, max_size=40))
    def test_full_width_round_trip(self, records):
        packed = PackedTrace.from_records(records)
        assert list(packed) == records

    @settings(max_examples=100, deadline=None)
    @given(records=st.lists(_FUZZ_RECORDS, max_size=40))
    def test_encode_decode_encode_is_stable(self, records):
        once = PackedTrace.from_records(records)
        twice = PackedTrace.from_records(list(once))
        for name in PackedTrace.__slots__:
            first, second = getattr(once, name), getattr(twice, name)
            assert first.dtype == second.dtype
            assert np.array_equal(first, second)

    @settings(max_examples=100, deadline=None)
    @given(records=st.lists(_FUZZ_RECORDS, max_size=40), data=st.data())
    def test_slice_round_trip(self, records, data):
        packed = PackedTrace.from_records(records)
        start = data.draw(st.integers(0, len(records)))
        stop = data.draw(st.integers(start, len(records)))
        assert list(packed[start:stop]) == records[start:stop]


class TestEmptyTrace:
    def test_empty_round_trip(self):
        packed = PackedTrace.from_records([])
        assert len(packed) == 0
        assert list(packed) == []
        assert packed.instruction_count() == 0
        assert packed.distinct_data_blocks() == 0

    def test_empty_save_and_load(self, tmp_path):
        path = tmp_path / "empty.npz"
        PackedTrace.from_records([]).save(path)
        loaded = PackedTrace.load(path)
        assert len(loaded) == 0
        assert loaded.cpu.dtype == np.uint16
        assert loaded.address.dtype == np.uint64

    def test_empty_slice_of_nonempty(self):
        packed = PackedTrace.from_records(_sample())
        assert list(packed[2:2]) == []


class TestColumnValidation:
    def test_max_width_values_survive(self):
        packed = PackedTrace(
            [2**16 - 1], [2**32 - 1], [2], [2**64 - 1], [3]
        )
        top = packed[0]
        assert top.cpu == 2**16 - 1
        assert top.pid == 2**32 - 1
        assert top.address == 2**64 - 1
        assert top.is_lock_spin and top.is_os

    @pytest.mark.parametrize(
        "kwargs, column",
        [
            (dict(cpu=[2**16]), "cpu"),
            (dict(pid=[2**32]), "pid"),
            (dict(access=[300]), "access"),
            (dict(address=[2**64]), "address"),
            (dict(flags=[-1]), "flags"),
            (dict(cpu=[-1]), "cpu"),
        ],
    )
    def test_out_of_range_values_rejected(self, kwargs, column):
        columns = dict(cpu=[0], pid=[0], access=[1], address=[0], flags=[0])
        columns.update(kwargs)
        with pytest.raises(ValueError, match=column):
            PackedTrace(**columns)

    def test_non_integer_column_rejected(self):
        with pytest.raises(ValueError, match="address.*integers"):
            PackedTrace([0], [0], [1], [1.5], [0])
