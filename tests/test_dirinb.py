"""Unit tests for DiriNB (i pointers, displacement instead of broadcast)."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.protocols.directory.dir1nb import Dir1NB
from repro.protocols.directory.dirinb import EVICTION_POLICIES, DiriNB
from repro.protocols.events import Event
from repro.trace.record import AccessType


class TestCopyCap:
    def test_never_more_than_i_copies(self):
        proto = DiriNB(4, pointers=2)
        rng = random.Random(17)
        for _ in range(4000):
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
            for block in range(25):
                assert proto.sharing.holder_count(block) <= 2

    def test_displacement_costs_one_invalidate(self):
        proto = DiriNB(4, pointers=2, eviction="fifo")
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
        third = outcomes[2]
        assert third.event is Event.RM_BLK_CLEAN
        assert third.op_count(BusOp.INVALIDATE) == 1
        assert proto.displacements == 1

    def test_fifo_displaces_oldest_sharer(self):
        proto = DiriNB(4, pointers=2, eviction="fifo")
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
        assert not proto.sharing.is_held(5, 0)
        assert proto.sharing.is_held(5, 1)
        assert proto.sharing.is_held(5, 2)

    def test_lifo_displaces_newest_sharer(self):
        proto = DiriNB(4, pointers=2, eviction="lifo")
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
        assert proto.sharing.is_held(5, 0)
        assert not proto.sharing.is_held(5, 1)
        assert proto.sharing.is_held(5, 2)

    def test_random_policy_is_deterministic_for_seed(self):
        ops = [(c, "r", 5) for c in (0, 1, 2, 3, 0, 1)]
        a = DiriNB(4, pointers=2, eviction="random", seed=5)
        b = DiriNB(4, pointers=2, eviction="random", seed=5)
        run_ops(a, ops)
        run_ops(b, ops)
        assert a.sharing.holders(5) == b.sharing.holders(5)

    def test_rejects_unknown_eviction_policy(self):
        with pytest.raises(ValueError, match="eviction"):
            DiriNB(4, pointers=2, eviction="clairvoyant")

    def test_policies_registry(self):
        assert set(EVICTION_POLICIES) == {"fifo", "lifo", "random"}


class TestDegenerationToDir1NB:
    """DiriNB with one pointer must behave exactly like Dir1NB."""

    def _random_ops(self, seed, n=5000):
        rng = random.Random(seed)
        return [
            (
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(30),
            )
            for _ in range(n)
        ]

    def test_same_bus_cycles_as_dir1nb(self):
        bus = pipelined_bus()
        a, b = DiriNB(4, pointers=1), Dir1NB(4)
        total_a = total_b = 0.0
        for op in self._random_ops(41):
            out_a, out_b = a.access(*op), b.access(*op)
            total_a += sum(bus.cost_of(kind) * n for kind, n in out_a.ops)
            total_b += sum(bus.cost_of(kind) * n for kind, n in out_b.ops)
        assert total_a == total_b

    def test_same_miss_events_as_dir1nb(self):
        a, b = DiriNB(4, pointers=1), Dir1NB(4)
        for op in self._random_ops(43):
            event_a = a.access(*op).event
            event_b = b.access(*op).event
            if event_a.is_miss or event_b.is_miss:
                assert event_a is event_b

    def test_same_final_state_as_dir1nb(self):
        a, b = DiriNB(4, pointers=1), Dir1NB(4)
        for op in self._random_ops(47):
            a.access(*op)
            b.access(*op)
        for block in range(30):
            assert a.sharing.holders(block) == b.sharing.holders(block)
            assert a.sharing.dirty_owner(block) == b.sharing.dirty_owner(block)


class TestMissRateTradeoff:
    def test_more_pointers_fewer_displacements(self):
        ops = TestDegenerationToDir1NB()._random_ops(51, n=6000)

        def displaced(pointers):
            proto = DiriNB(4, pointers=pointers)
            for op in ops:
                proto.access(*op)
            return proto.displacements

        assert displaced(1) >= displaced(2) >= displaced(4)
        assert displaced(4) == 0  # four pointers cover all four caches

    def test_storage_bits(self):
        assert DiriNB.directory_bits_per_block(4, pointers=2) == 5
        assert DiriNB.directory_bits_per_block(256, pointers=4) == 33
