"""Exhaustive model checking of coherence protocols on small configurations.

Trace-driven simulation and random property tests sample behaviour; for a
small machine the state space can simply be **enumerated**.  This module
drives a protocol — through the oracle-checked
:class:`~repro.core.pipeline.ReferencePipeline`, the same engine every
simulation mode runs on — through *every* access sequence of bounded depth
over a few caches and blocks, proving — not sampling — that no
interleaving of reads and writes can make any cache observe stale data
within that bound.

Two caches, one block and depth 8 already cover every two-party coherence
dance (read/read, read/write, write/write hand-offs in every order); three
caches catch the three-party bugs (invalidate one sharer, forget the
other).  The search is depth-first over (protocol, oracle) snapshots, so
the cost is ``(caches × 2 × blocks)^depth`` oracle steps — milliseconds
for the useful configurations.

On failure the checker returns the exact minimal sequence, ready to paste
into a regression test.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..protocols.base import CoherenceProtocol
from ..trace.record import AccessType
from .counters import SimulationCounters
from .oracle import CoherenceViolation
from .pipeline import ReferencePipeline

__all__ = ["ModelCheckReport", "model_check"]

#: One step of a checked program.
Step = Tuple[int, AccessType, int]


@dataclass(frozen=True)
class ModelCheckReport:
    """Outcome of an exhaustive search."""

    protocol: str
    n_caches: int
    n_blocks: int
    depth: int
    sequences_explored: int
    steps_executed: int
    counterexample: Optional[Sequence[Step]]
    error: Optional[str]

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def render(self) -> str:
        verdict = "OK" if self.ok else f"VIOLATION: {self.error}"
        text = (
            f"{self.protocol}: caches={self.n_caches} blocks={self.n_blocks} "
            f"depth={self.depth} -> {self.sequences_explored} sequences, "
            f"{self.steps_executed} steps: {verdict}"
        )
        if self.counterexample:
            pretty = ", ".join(
                f"P{cache}{'R' if access is AccessType.READ else 'W'}b{block}"
                for cache, access, block in self.counterexample
            )
            text += f"\n  counterexample: {pretty}"
        return text


def model_check(
    protocol_factory: Callable[[int], CoherenceProtocol],
    n_caches: int = 2,
    n_blocks: int = 1,
    depth: int = 8,
) -> ModelCheckReport:
    """Exhaustively verify coherence for all programs up to ``depth`` steps.

    Args:
        protocol_factory: builds a fresh protocol for ``n_caches`` caches.
        n_caches / n_blocks: configuration size (the branching factor is
            ``n_caches * 2 * n_blocks`` per step).
        depth: maximum program length.

    Returns:
        a report; ``report.ok`` is False iff some sequence made a cache
        observe stale data, in which case ``report.counterexample`` holds
        the shortest such sequence found (DFS order).
    """
    if n_caches < 1 or n_blocks < 1 or depth < 1:
        raise ValueError("n_caches, n_blocks and depth must all be >= 1")
    alphabet: List[Step] = [
        (cache, access, block)
        for cache in range(n_caches)
        for access in (AccessType.READ, AccessType.WRITE)
        for block in range(n_blocks)
    ]
    protocol_name = protocol_factory(n_caches).name
    sequences = 0
    steps_executed = 0

    # Each state is a value-checked reference pipeline (the unified engine
    # with ``check_values=True``), so the enumeration exercises exactly the
    # per-reference path every simulation mode runs — a pipeline regression
    # that breaks coherence fails here by exhaustion, not by sampling.
    root = ReferencePipeline(protocol_factory(n_caches), check_values=True)
    # Iterative DFS over (pipeline_state, prefix, remaining_depth).  States
    # are deep-copied on branching; at the leaf we also run the final sweep.
    stack: List[Tuple[ReferencePipeline, Tuple[Step, ...]]] = [(root, ())]
    while stack:
        pipeline, prefix = stack.pop()
        if len(prefix) == depth:
            continue
        for step in alphabet:
            child = copy.deepcopy(pipeline)
            cache, access, block = step
            steps_executed += 1
            try:
                child.step(cache, access, block, SimulationCounters())
                child.oracle.check_all_copies()
            except CoherenceViolation as violation:
                return ModelCheckReport(
                    protocol=protocol_name,
                    n_caches=n_caches,
                    n_blocks=n_blocks,
                    depth=depth,
                    sequences_explored=sequences,
                    steps_executed=steps_executed,
                    counterexample=prefix + (step,),
                    error=str(violation),
                )
            sequences += 1
            stack.append((child, prefix + (step,)))
    return ModelCheckReport(
        protocol=protocol_name,
        n_caches=n_caches,
        n_blocks=n_blocks,
        depth=depth,
        sequences_explored=sequences,
        steps_executed=steps_executed,
        counterexample=None,
        error=None,
    )
