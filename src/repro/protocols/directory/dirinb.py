"""DiriNB: i directory pointers, no broadcast — copies capped at i.

Section 6's alternative to broadcast fallback: the directory stores up to
``i`` pointers and simply **refuses to let more than i copies exist**.  When
an ``i+1``-th cache misses on the block, one existing copy is displaced
(invalidated) to free a pointer, trading a slightly increased miss rate for
never needing a broadcast — the property that makes the scheme scale to
arbitrary interconnection networks.

``DiriNB(i=1)`` degenerates to Dir1NB, which the test suite exploits as a
cross-check: both produce identical miss events and bus operations.

Because the copy cap changes which references miss, this scheme's event
frequencies genuinely differ from Dir0B's (unlike DirnNB/DiriB) and must be
measured by simulation — which is exactly why the library implements it as a
real state machine rather than a cost-model tweak.

The displacement victim is chosen by a pluggable policy: ``"fifo"`` (oldest
sharer, the default), ``"lifo"`` (newest), or ``"random"`` (seeded).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from ...interconnect.bus import BusOp
from ..base import NO_OPS, AccessOutcome, OpList
from ..events import Event
from .dirnnb import DirnNB

__all__ = ["DiriNB", "EVICTION_POLICIES"]

EVICTION_POLICIES = ("fifo", "lifo", "random")


class DiriNB(DirnNB):
    """Directory with ``i`` pointers and displacement instead of broadcast."""

    name = "dirinb"
    label = "DiriNB"
    kind = "directory"

    def compile_table(self):
        """Not table-compilable: displacement depends on per-block admission
        order (and possibly an RNG), which the table state cannot carry."""
        return None

    def __init__(
        self,
        n_caches: int,
        pointers: int = 2,
        eviction: str = "fifo",
        seed: int = 0,
    ) -> None:
        if pointers < 1:
            raise ValueError(f"pointers must be >= 1, got {pointers}")
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"eviction must be one of {EVICTION_POLICIES}, got {eviction!r}"
            )
        super().__init__(n_caches)
        self.pointers = pointers
        self.eviction = eviction
        self._rng = random.Random(seed)
        #: per-block sharer list in admission order (for FIFO/LIFO policies)
        self._order: Dict[int, List[int]] = {}
        #: total copies displaced to free pointers (diagnostic)
        self.displacements = 0

    # -- pointer bookkeeping -------------------------------------------------

    def _admit_holder(self, cache: int, block: int, flushed: bool = False) -> OpList:
        sharing = self.sharing
        order = self._order.setdefault(block, [])
        ops: OpList = NO_OPS
        if sharing.holder_count(block) >= self.pointers:
            victim = self._choose_victim(order)
            sharing.remove_holder(block, victim)
            order.remove(victim)
            self.displacements += 1
            # Displaced copies are always clean here: dirty copies are
            # flushed before any new sharer is admitted.
            ops = ((BusOp.INVALIDATE, 1),)
        sharing.add_holder(block, cache)
        order.append(cache)
        return ops

    def _choose_victim(self, order: List[int]) -> int:
        if self.eviction == "fifo":
            return order[0]
        if self.eviction == "lifo":
            return order[-1]
        return self._rng.choice(order)

    def _note_exclusive(self, cache: int, block: int) -> None:
        self._order[block] = [cache]

    def evict(self, cache: int, block: int) -> OpList:
        order = self._order.get(block)
        if order is not None and cache in order:
            order.remove(cache)
        return super().evict(cache, block)

    # -- the i == 1 special case ------------------------------------------------

    def _write_hit_clean(self, cache: int, block: int) -> AccessOutcome:
        if self.pointers == 1:
            # The holder is provably the only copy (the cap is 1), so the
            # dirty bit can be set locally with no directory check — the same
            # argument Dir1NB uses.
            self.sharing.set_dirty(block, cache)
            self._note_exclusive(cache, block)
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN, ops=NO_OPS, invalidation_fanout=0
            )
        return super()._write_hit_clean(cache, block)

    @classmethod
    def directory_bits_per_block(cls, n_caches: int, pointers: int = 2) -> int:
        """``i`` cache pointers plus a dirty bit (no broadcast bit needed)."""
        pointer_bits = max(1, math.ceil(math.log2(n_caches)))
        return pointers * pointer_bits + 1
