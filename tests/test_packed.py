"""Tests for the NumPy-packed trace container."""

import pytest

from conftest import record
from repro.core.simulator import simulate
from repro.protocols import create_protocol
from repro.trace import standard_trace, take
from repro.trace.packed import PackedTrace


def _sample():
    return [
        record(0, kind="i", address=0x100),
        record(1, pid=7, kind="r", address=0x200, spin=True),
        record(2, pid=8, kind="w", address=0x300, os=True),
        record(3, kind="r", address=2**40),
    ]


class TestRoundTrip:
    def test_records_round_trip(self):
        packed = PackedTrace.from_records(_sample())
        assert list(packed) == _sample()

    def test_len_and_indexing(self):
        packed = PackedTrace.from_records(_sample())
        assert len(packed) == 4
        assert packed[1] == _sample()[1]

    def test_slicing_returns_packed(self):
        packed = PackedTrace.from_records(_sample())
        tail = packed[2:]
        assert isinstance(tail, PackedTrace)
        assert list(tail) == _sample()[2:]

    def test_save_and_load(self, tmp_path):
        packed = PackedTrace.from_records(_sample())
        path = tmp_path / "trace.npz"
        packed.save(path)
        assert list(PackedTrace.load(path)) == _sample()

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="column lengths"):
            PackedTrace([0], [0, 1], [1], [0], [0])


class TestVectorisedStats:
    @pytest.fixture(scope="class")
    def packed(self):
        return PackedTrace.from_records(
            take(standard_trace("POPS", scale=1 / 128), 15000)
        )

    def test_counts_match_record_iteration(self, packed):
        records = list(packed)
        assert packed.instruction_count() == sum(
            r.is_instruction for r in records
        )
        assert packed.read_count() == sum(r.is_read for r in records)
        assert packed.write_count() == sum(r.is_write for r in records)
        assert packed.spin_count() == sum(r.is_lock_spin for r in records)
        assert packed.os_count() == sum(r.is_os for r in records)

    def test_distinct_blocks(self, packed):
        records = list(packed)
        expected = len(
            {r.address // 16 for r in records if not r.is_instruction}
        )
        assert packed.distinct_data_blocks() == expected

    def test_memory_footprint_is_compact(self, packed):
        # 16 bytes of columns per record vs hundreds for Python objects.
        assert packed.nbytes <= 16 * len(packed)

    def test_simulation_from_packed_matches_records(self, packed):
        from_packed = simulate(create_protocol("dir0b", 4), packed)
        from_records = simulate(create_protocol("dir0b", 4), list(packed))
        assert from_packed.counters.events == from_records.counters.events
