"""On-disk result cache for sweep cells.

Results are pickled one file per cache key under a directory the caller
chooses.  The key (see :meth:`repro.runner.spec.RunSpec.cache_key`) hashes
everything that determines the result, so a hit can be replayed verbatim.
A *missing* entry is an ordinary miss; an entry that exists but cannot be
decoded — truncated file, stale pickle, wrong type — is **corrupt**: it is
logged as a structured warning, counted in the ``cache.corrupt`` metric,
and deleted so the next run regenerates it instead of tripping over it
forever.

Alongside each result, :meth:`ResultCache.put` stores the run's
:class:`~repro.obs.manifest.RunManifest` as ``<key>.manifest.json`` —
human-readable provenance (spec, package version, host, wall time, peak
RSS) for every number the cache can serve.  Manifests are advisory: their
absence or corruption never invalidates the pickled result.

Writes go through a temp file + :func:`os.replace` so concurrent sweeps
sharing a cache directory never observe half-written entries.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Optional, Union

from ..core.simulator import SimulationResult
from ..obs.log import fields, get_logger
from ..obs.manifest import RunManifest
from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["ResultCache"]

logger = get_logger("runner.cache")


class ResultCache:
    """A directory of pickled :class:`SimulationResult`s, keyed by spec hash.

    ``registry`` receives the cache's metrics (``cache.hit``,
    ``cache.miss``, ``cache.corrupt`` counters); it defaults to the
    process-wide registry from :func:`repro.obs.metrics.get_registry`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else get_registry()
        #: lookups that returned a usable result
        self.hits = 0
        #: lookups that found nothing usable
        self.misses = 0
        #: lookups that found an undecodable entry (subset of ``misses``)
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def manifest_path_for(self, key: str) -> Path:
        return self.directory / f"{key}.manifest.json"

    def _corrupt(self, path: Path, key: str, reason: str) -> None:
        """Record and remove an undecodable entry so it gets regenerated."""
        self.corrupt += 1
        self.registry.counter("cache.corrupt").inc()
        logger.warning(
            "corrupt cache entry removed",
            extra=fields(key=key, path=str(path), reason=reason),
        )
        path.unlink(missing_ok=True)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None (counted as hit/miss)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            self._corrupt(path, key, f"{type(error).__name__}: {error}")
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            self.registry.counter("cache.miss").inc()
            self._corrupt(path, key, f"wrong type {type(result).__name__}")
            return None
        self.hits += 1
        self.registry.counter("cache.hit").inc()
        return result

    def get_manifest(self, key: str) -> Optional[RunManifest]:
        """The stored provenance for ``key``'s result, if any survives."""
        path = self.manifest_path_for(key)
        try:
            return RunManifest.read(path)
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def put(
        self,
        key: str,
        result: SimulationResult,
        manifest: Optional[RunManifest] = None,
    ) -> None:
        """Store ``result`` (and its provenance) under ``key`` atomically."""
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        if manifest is not None:
            manifest_path = self.manifest_path_for(key)
            manifest_tmp = manifest_path.with_name(
                f"{manifest_path.name}.{os.getpid()}.tmp"
            )
            manifest.write(manifest_tmp)
            os.replace(manifest_tmp, manifest_path)

    def clear(self) -> int:
        """Delete every cached entry; returns how many results were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.manifest.json"):
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, corrupt={self.corrupt})"
        )
