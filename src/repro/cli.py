"""Command-line interface: run the paper's experiments from a shell.

Subcommands::

    repro-coherence compare  [--schemes ...] [--scale N] [--bus ...]
    repro-coherence sweep    [--schemes ...] [--traces ...] [--block-sizes ...]
                             [--geometries ...] [--characterization ...]
    repro-coherence models   [NAME|PATH ...]
    repro-coherence finite   [--schemes ...] [--geometries ...] [--scale N]
    repro-coherence profile  [--protocols ...] [--traces ...] [--geometry G]
    repro-coherence table4   [--scale N]
    repro-coherence table5   [--scale N]
    repro-coherence figure1  [--scale N]
    repro-coherence spinlock [--scale N]
    repro-coherence storage  [--caches 4 16 64 256 1024]
    repro-coherence trace-stats [--scale N]
    repro-coherence classify TRACE [--scale N]
    repro-coherence validate SCHEME [--scale N]
    repro-coherence modelcheck SCHEME [--caches 2] [--depth 6]
    repro-coherence timed SCHEME [--scale N] [--q 1]
    repro-coherence export-trace NAME FILE [--scale N] [--format text|binary]
    repro-coherence status   [--status-file FILE | --cache-dir DIR] [--watch S]
    repro-coherence serve    --cache-dir DIR [--host H] [--port P] [--workers N]

``--scale`` is the denominator applied to the paper's trace lengths
(``--scale 16`` simulates 1/16 of ~3.2M references per trace).  ``--jobs``
fans simulations across worker processes and ``--cache-dir`` enables the
on-disk result cache; both apply to ``sweep`` and to the table/figure
commands, always with bit-identical results to the serial path.  Sweep
tables go to stdout; progress and throughput/cache metrics go to stderr.

Hardware models are data (see docs/characterization.md): ``models`` lists
the bundled characterizations (or previews user files) and ``sweep
--characterization NAME|PATH ...`` prices the grid under each one — k
characterizations cost one simulation per configuration, the rest are
re-priced from the same counters.

Resilience (see docs/robustness.md): ``sweep`` accepts ``--retries N``
(per-cell retry budget with deterministic backoff), ``--cell-timeout S``
(SIGKILL overruns), ``--keep-going``/``--max-failures N`` (record failures
and finish the grid) and ``--resume`` (skip journaled successes after a
crash; requires ``--cache-dir``).

Exit codes: 0 success; 1 runtime failure (a cell failed fail-fast, a
model-check violation, an unwritable output); 2 usage, spec or
trace-format errors; 3 the sweep finished but some cells failed under
``--keep-going``; 130 interrupted (completed cells are already flushed to
the cache and journal).

Observability (see docs/observability.md): ``--log-level``/``-v`` raise
logging verbosity and ``--log-json`` switches to JSON-lines logs;
``compare``/``sweep``/``finite`` accept ``--emit-trace FILE`` (stream every
reference to a Chrome-trace/Perfetto file; forces inline, uncached
execution), ``--metrics-json FILE`` (dump the sweep's metrics registry),
``--metrics-openmetrics FILE`` (the same registry as OpenMetrics /
Prometheus text), ``--emit-spans FILE`` (record the sweep's span tree —
including worker-subprocess spans — as a Perfetto-loadable trace),
``--heartbeat-seconds S`` (heartbeat/status cadence; 0 disables; env
``REPRO_HEARTBEAT_SECONDS``) and ``--status-file FILE`` (where to publish
the live status snapshot; defaults next to the journal with
``--cache-dir``); ``status`` renders a running sweep's snapshot from a
different process; ``profile`` prints a per-stage wall-time breakdown of
the pipeline.

Serving (see docs/service.md): ``serve`` runs the sweep runner as a
long-lived HTTP job API rooted at ``--cache-dir`` — ``POST /sweeps``
through ``GET /metrics``, with per-client rate limits, bounded-queue
backpressure and graceful drain on SIGTERM.  The global ``--jobs`` flag
caps the per-sweep worker count a request may ask for.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis import (
    directory_storage_bits,
    figure1,
    figure2,
    finite_sensitivity,
    spin_lock_impact,
    table4,
    table5,
)
from .interconnect import nonpipelined_bus, pipelined_bus
from .obs import (
    ChromeTraceSink,
    MetricsRegistry,
    SpanRecorder,
    get_logger,
    profile_spec,
    read_status,
    render_status,
    setup_logging,
)
from .protocols import (
    PAPER_CORE_SCHEMES,
    PROTOCOLS,
    protocol_names,
    unknown_protocol_message,
)
from .resilience import (
    CellFailure,
    FaultPlan,
    FaultyCache,
    SweepInterrupted,
    SweepJournal,
)
from .runner import (
    ResultCache,
    RunSpec,
    SweepReport,
    normalize_geometry,
    run_sweep,
    sweep_grid,
)
from .runner.sweep import STATUS_SUFFIX
from .trace import SharingModel, collect_stats, standard_trace, standard_trace_names
from .trace.atum import write_binary, write_text
from .trace.stats import format_table3

__all__ = ["main", "build_parser"]


class UsageError(Exception):
    """A bad flag, spec or input file: one line on stderr, exit code 2."""


_DEFAULT_SCALE_DENOMINATOR = 16.0

#: Default geometry ladder for the ``finite`` sensitivity table:
#: three finite sizes bracketing the working sets, plus the paper's
#: infinite-cache baseline.
_DEFAULT_FINITE_GEOMETRIES = ("16x2", "64x2", "256x2", "inf")


def _scheme_arg(name: str) -> str:
    """argparse type for scheme names: lowercase, with a did-you-mean error."""
    candidate = name.lower()
    if candidate not in PROTOCOLS:
        raise argparse.ArgumentTypeError(unknown_protocol_message(name))
    return candidate


def _geometry_arg(text: str) -> Optional[str]:
    """argparse type for geometry specs: "SETSxWAYS" or "inf" (``None``)."""
    try:
        return normalize_geometry(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coherence",
        description=(
            "Trace-driven evaluation of directory schemes for cache "
            "coherence (ISCA 1988 reproduction)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=_DEFAULT_SCALE_DENOMINATOR,
        metavar="N",
        help="simulate 1/N of the paper's trace lengths (default 16)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate sweep cells across N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="serve repeated simulations from an on-disk result cache",
    )
    parser.add_argument(
        "--backend",
        choices=["reference", "fast"],
        default="reference",
        help=(
            "simulation backend: the per-reference loop, or the table-driven "
            "fast backend (bit-identical counters; needs numpy)"
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="logging verbosity (default: warning)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v: info, -vv: debug)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--emit-trace",
            default=None,
            metavar="FILE",
            help=(
                "stream every reference to a Chrome-trace/Perfetto JSON file "
                "(forces inline, uncached execution)"
            ),
        )
        command.add_argument(
            "--metrics-json",
            default=None,
            metavar="FILE",
            help="write the run's metrics registry as JSON",
        )
        command.add_argument(
            "--metrics-openmetrics",
            default=None,
            metavar="FILE",
            help=(
                "write the run's metrics registry as OpenMetrics/Prometheus "
                "text exposition"
            ),
        )
        command.add_argument(
            "--emit-spans",
            default=None,
            metavar="FILE",
            help=(
                "record the sweep's span tree (sweep/cell/attempt/stage plus "
                "cache_hit/reprice/retry/timeout/fault markers, including "
                "worker-subprocess spans) as a Chrome-trace/Perfetto JSON file"
            ),
        )
        command.add_argument(
            "--heartbeat-seconds",
            type=float,
            default=None,
            metavar="S",
            help=(
                "seconds between heartbeat log lines and status snapshots "
                "(default: $REPRO_HEARTBEAT_SECONDS or 10; 0 disables)"
            ),
        )
        command.add_argument(
            "--status-file",
            default=None,
            metavar="FILE",
            help=(
                "publish an atomic live-status snapshot here (default: "
                "next to the journal when --cache-dir is set); read it with "
                "'repro-coherence status'"
            ),
        )

    compare = sub.add_parser("compare", help="bus cycles per reference per scheme")
    compare.add_argument(
        "--schemes",
        nargs="+",
        default=list(PAPER_CORE_SCHEMES),
        type=_scheme_arg,
        metavar="SCHEME",
        help=f"schemes to compare (choices: {', '.join(protocol_names())})",
    )
    add_obs_flags(compare)

    sweep = sub.add_parser(
        "sweep", help="parallel sweep over a protocol x trace x config grid"
    )
    sweep.add_argument(
        "--schemes",
        nargs="+",
        default=list(PAPER_CORE_SCHEMES),
        type=_scheme_arg,
        metavar="SCHEME",
        help=f"schemes to sweep (choices: {', '.join(protocol_names())})",
    )
    sweep.add_argument(
        "--traces",
        nargs="+",
        default=list(standard_trace_names()),
        choices=list(standard_trace_names()),
        metavar="TRACE",
    )
    sweep.add_argument(
        "--block-sizes",
        nargs="+",
        type=int,
        default=[16],
        metavar="BYTES",
        help="block sizes to sweep (default: the paper's 16)",
    )
    sweep.add_argument(
        "--geometries",
        nargs="+",
        type=_geometry_arg,
        default=[None],
        metavar="SETSxWAYS",
        help=(
            "cache geometries to sweep: SETSxWAYS specs like 64x4, or 'inf' "
            "for the paper's infinite caches (default: inf)"
        ),
    )
    sweep.add_argument(
        "--sharing",
        nargs="+",
        choices=[model.value for model in SharingModel],
        default=[SharingModel.PROCESS.value],
        help="sharing models to sweep (default: process)",
    )
    sweep.add_argument(
        "--characterization",
        nargs="+",
        default=[None],
        metavar="NAME|PATH",
        help=(
            "hardware characterizations to price the grid under: bundled "
            "names (pipelined, non-pipelined) or TOML/CSV files; k "
            "characterizations still cost one simulation per cell (see "
            "'models' and docs/characterization.md)"
        ),
    )
    sweep.add_argument(
        "--n-caches", type=int, default=4, help="caches per system (default 4)"
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "extra attempts per failed cell, with exponential backoff and "
            "deterministic jitter (default 0)"
        ),
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; overruns are killed and count as "
            "retryable timeout failures"
        ),
    )
    sweep.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "record failed cells and finish the rest of the grid instead of "
            "aborting (exit code 3 when any cell failed)"
        ),
    )
    sweep.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="with --keep-going, abort once more than N cells have failed",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep from its journal (requires "
            "--cache-dir): journaled successes are served from the cache, "
            "only failed or missing cells re-run"
        ),
    )
    # Deliberately undocumented: deterministic fault injection for the
    # resilience test suite and CI soak runs (docs/robustness.md).
    sweep.add_argument("--fault-plan", default=None, help=argparse.SUPPRESS)
    add_obs_flags(sweep)

    finite = sub.add_parser(
        "finite",
        help="cycles/ref vs cache size: finite-geometry sensitivity table",
    )
    finite.add_argument(
        "--schemes",
        nargs="+",
        default=list(PAPER_CORE_SCHEMES),
        type=_scheme_arg,
        metavar="SCHEME",
        help=f"schemes to tabulate (choices: {', '.join(protocol_names())})",
    )
    finite.add_argument(
        "--geometries",
        nargs="+",
        type=_geometry_arg,
        default=[_geometry_arg(g) for g in _DEFAULT_FINITE_GEOMETRIES],
        metavar="SETSxWAYS",
        help=(
            "cache geometries to tabulate (default: "
            f"{' '.join(_DEFAULT_FINITE_GEOMETRIES)})"
        ),
    )
    finite.add_argument(
        "--n-caches", type=int, default=4, help="caches per system (default 4)"
    )
    add_obs_flags(finite)

    profile = sub.add_parser(
        "profile",
        help="per-stage wall-time breakdown of the reference pipeline",
    )
    profile.add_argument(
        "--protocols",
        "--schemes",
        dest="protocols",
        nargs="+",
        default=["dir0b"],
        type=_scheme_arg,
        metavar="SCHEME",
        help=f"schemes to profile (choices: {', '.join(protocol_names())})",
    )
    profile.add_argument(
        "--traces",
        nargs="+",
        default=["POPS"],
        choices=list(standard_trace_names()),
        metavar="TRACE",
    )
    profile.add_argument(
        "--geometry",
        type=_geometry_arg,
        default=None,
        metavar="SETSxWAYS",
        help="finite cache geometry (default: the paper's infinite caches)",
    )
    profile.add_argument(
        "--n-caches", type=int, default=4, help="caches per system (default 4)"
    )
    profile.add_argument(
        "--metrics-json",
        default=None,
        metavar="FILE",
        help="write the accumulated stage timers as JSON",
    )

    models = sub.add_parser(
        "models",
        help="list hardware characterizations and preview their Table 2 column",
    )
    models.add_argument(
        "characterizations",
        nargs="*",
        metavar="NAME|PATH",
        help=(
            "bundled names or characterization files to preview "
            "(default: every bundled model)"
        ),
    )

    sub.add_parser("table4", help="event frequencies (paper Table 4)")
    sub.add_parser("table5", help="bus-cycle breakdown (paper Table 5)")
    sub.add_parser("figure1", help="invalidation fan-out histogram (Figure 1)")
    sub.add_parser("spinlock", help="lock-test exclusion experiment (Sec 5.2)")
    sub.add_parser("trace-stats", help="trace characteristics (paper Table 3)")

    storage = sub.add_parser("storage", help="directory storage scaling (Sec 6)")
    storage.add_argument(
        "--caches", nargs="+", type=int, default=[4, 16, 64, 256, 1024]
    )

    classify = sub.add_parser(
        "classify", help="sharing-pattern composition of a trace"
    )
    classify.add_argument("trace", choices=list(standard_trace_names()))

    validate = sub.add_parser(
        "validate", help="value-level coherence validation of a scheme"
    )
    validate.add_argument("scheme", type=_scheme_arg)

    modelcheck = sub.add_parser(
        "modelcheck", help="exhaustively verify a scheme on a small config"
    )
    modelcheck.add_argument("scheme", type=_scheme_arg)
    modelcheck.add_argument("--caches", type=int, default=2)
    modelcheck.add_argument("--blocks", type=int, default=1)
    modelcheck.add_argument("--depth", type=int, default=6)

    timed = sub.add_parser(
        "timed", help="timing-accurate run with bus arbitration"
    )
    timed.add_argument("scheme", type=_scheme_arg)
    timed.add_argument("--q", type=int, default=1, help="fixed overhead cycles")

    export = sub.add_parser(
        "export-trace", help="write a synthetic trace to an ATUM-style file"
    )
    export.add_argument("trace", choices=list(standard_trace_names()))
    export.add_argument("path")
    export.add_argument("--format", choices=["text", "binary"], default="text")

    status_cmd = sub.add_parser(
        "status",
        help=(
            "live view of a (possibly running) sweep, read from its status "
            "snapshot and journal — works from a different process"
        ),
    )
    status_cmd.add_argument(
        "--status-file",
        default=None,
        metavar="FILE",
        help="the snapshot to read (as passed to sweep --status-file)",
    )
    status_cmd.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help=(
            "find the most recently updated *.status.json in this cache "
            "directory (where sweeps with --cache-dir publish theirs)"
        ),
    )
    status_cmd.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render every SECONDS until the sweep leaves 'running'",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the sweep runner as a long-lived HTTP job API (POST /sweeps "
            "... GET /metrics) rooted at --cache-dir"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent sweep jobs (each runs in its own process)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help="queued jobs beyond the running ones before 503s (default 16)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="per-client submissions per second (default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=10,
        metavar="N",
        help="per-client burst size for --rate-limit (default 10)",
    )
    serve.add_argument(
        "--job-ttl",
        type=float,
        default=3600.0,
        metavar="S",
        help="seconds to keep finished jobs and their artifacts (default 3600)",
    )
    serve.add_argument(
        "--max-cells",
        type=int,
        default=4096,
        metavar="N",
        help="largest sweep grid a single request may expand to",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds to wait for running sweeps on SIGTERM (default 30)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "where the crash-safe service journal lives (default: "
            "<cache-dir>/state); restarting with the same directory "
            "recovers interrupted jobs without re-simulating finished cells"
        ),
    )
    serve.add_argument(
        "--no-recover",
        action="store_true",
        help="skip journal replay on startup (start with an empty job table)",
    )
    # Deterministic service-seam fault injection for the chaos harness.
    serve.add_argument("--fault-plan", default=None, help=argparse.SUPPRESS)
    return parser


def _scale(args: argparse.Namespace) -> float:
    if args.scale <= 0:
        raise UsageError("--scale must be positive")
    return 1.0 / args.scale


def _jobs(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    return args.jobs


def _backend(args: argparse.Namespace) -> str:
    """The validated ``--backend`` choice.

    The fast backend's packed-trace kernel needs numpy; requesting it in an
    environment without the optional extra is a usage error rather than a
    silent slow path.
    """
    backend = getattr(args, "backend", "reference")
    if backend == "fast":
        from .core.fastsim import HAS_NUMPY

        if not HAS_NUMPY:
            raise UsageError(
                "--backend fast requires numpy; install the optional extra "
                "(pip install 'repro[fast]') or use --backend reference"
            )
    return backend


def _comparison(args: argparse.Namespace, schemes=PAPER_CORE_SCHEMES):
    """Run the standard grid through the sweep runner (jobs/cache honoured)."""
    try:
        specs = sweep_grid(tuple(schemes), scale=_scale(args), backend=_backend(args))
    except ValueError as error:
        raise UsageError(f"{args.command}: {error}") from error
    return _run_grid(args, specs).comparison()


def _cmd_compare(args: argparse.Namespace) -> None:
    comparison = _comparison(args, args.schemes)
    pipe, nonpipe = pipelined_bus(), nonpipelined_bus()
    bars = figure2(comparison)
    print(bars.render())
    print()
    for scheme in args.schemes:
        print(
            f"{scheme:<10} pipelined {comparison.average_cycles(scheme, pipe):.4f}"
            f"  non-pipelined {comparison.average_cycles(scheme, nonpipe):.4f}"
            " cycles/ref"
        )


def _cmd_table4(args: argparse.Namespace) -> None:
    print(table4(_comparison(args)).render())


def _cmd_table5(args: argparse.Namespace) -> None:
    print(table5(_comparison(args)).render())


def _cmd_figure1(args: argparse.Namespace) -> None:
    print(figure1(_comparison(args, ("dir0b",))).render())


def _run_grid(args: argparse.Namespace, specs: List[RunSpec]) -> SweepReport:
    """Run a spec grid with the CLI's jobs/cache/probe/metrics plumbing.

    Commands that expose the resilience flags (``sweep``) get them wired
    through; everything else falls back to the historic fail-fast
    defaults via ``getattr``.
    """
    logger = get_logger("cli")
    registry = MetricsRegistry()
    emit_trace = getattr(args, "emit_trace", None)
    emit_spans = getattr(args, "emit_spans", None)
    telemetry = SpanRecorder() if emit_spans else None
    heartbeat_seconds = getattr(args, "heartbeat_seconds", None)
    if heartbeat_seconds is not None and heartbeat_seconds < 0:
        raise UsageError("--heartbeat-seconds must be >= 0 (0 disables)")
    status_file = getattr(args, "status_file", None)

    retries = getattr(args, "retries", 0)
    if retries < 0:
        raise UsageError("--retries must be >= 0")
    cell_timeout = getattr(args, "cell_timeout", None)
    if cell_timeout is not None and cell_timeout <= 0:
        raise UsageError("--cell-timeout must be positive")
    max_failures = getattr(args, "max_failures", None)
    if max_failures is not None and max_failures < 0:
        raise UsageError("--max-failures must be >= 0")
    fault_plan = None
    fault_plan_path = getattr(args, "fault_plan", None)
    if fault_plan_path:
        try:
            fault_plan = FaultPlan.load(fault_plan_path)
        except ValueError as error:
            raise UsageError(str(error)) from error

    cache = None
    if args.cache_dir and emit_trace:
        # A cache hit would produce no event stream; trace runs re-simulate.
        logger.warning("--emit-trace bypasses the result cache")
    elif args.cache_dir:
        if fault_plan is not None and fault_plan.has_cache_faults:
            cache = FaultyCache(args.cache_dir, fault_plan, registry=registry)
        else:
            cache = ResultCache(args.cache_dir, registry=registry)

    journal = None
    resume = getattr(args, "resume", False)
    if cache is not None and hasattr(args, "resume"):
        journal = SweepJournal.for_sweep(
            cache.directory, [spec.cache_key() for spec in specs]
        )
    if resume and journal is None:
        raise UsageError(
            "--resume requires --cache-dir (the sweep journal lives beside "
            "the result cache)"
        )

    done = 0

    def progress(outcome) -> None:
        nonlocal done
        done += 1
        if not outcome.ok:
            source = f"FAILED: {outcome.error.kind}"
        elif outcome.cached:
            source = "cache"
        elif outcome.repriced:
            source = "repriced"
        else:
            source = f"{outcome.elapsed:.2f}s"
        geometry = outcome.spec.geometry or "inf"
        print(
            f"[{done}/{len(specs)}] {outcome.spec.protocol} "
            f"{outcome.spec.trace} b{outcome.spec.block_size} "
            f"g{geometry} ({source})",
            file=sys.stderr,
        )

    sink = None
    probe_factory = None
    if emit_trace:
        try:
            sink = ChromeTraceSink(emit_trace)
        except OSError as error:
            raise SystemExit(f"cannot write {emit_trace}: {error}")

        def probe_factory(spec: RunSpec):
            geometry = spec.geometry or "inf"
            return sink.cell(
                f"{spec.protocol}/{spec.trace} b{spec.block_size} g{geometry}"
            )

    try:
        report = run_sweep(
            specs,
            jobs=_jobs(args),
            cache=cache,
            progress=progress,
            probe_factory=probe_factory,
            registry=registry,
            retry=retries,
            cell_timeout=cell_timeout,
            keep_going=getattr(args, "keep_going", False),
            max_failures=max_failures,
            faults=fault_plan,
            journal=journal,
            resume=resume,
            telemetry=telemetry,
            heartbeat_seconds=heartbeat_seconds,
            status_path=status_file,
        )
    finally:
        if sink is not None:
            sink.close()
    if emit_trace:
        print(f"wrote Chrome trace to {emit_trace}", file=sys.stderr)
    if emit_spans and telemetry is not None and len(telemetry):
        try:
            slices = telemetry.write_chrome_trace(emit_spans)
        except OSError as error:
            raise SystemExit(f"cannot write {emit_spans}: {error}")
        print(
            f"wrote {slices} spans to {emit_spans}", file=sys.stderr
        )

    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        try:
            with open(metrics_json, "w", encoding="utf-8") as handle:
                json.dump(report.metrics_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            raise SystemExit(f"cannot write {metrics_json}: {error}")
        print(f"wrote metrics to {metrics_json}", file=sys.stderr)
    metrics_openmetrics = getattr(args, "metrics_openmetrics", None)
    if metrics_openmetrics:
        try:
            report.registry.write_openmetrics(metrics_openmetrics)
        except OSError as error:
            raise SystemExit(f"cannot write {metrics_openmetrics}: {error}")
        print(
            f"wrote OpenMetrics to {metrics_openmetrics}", file=sys.stderr
        )
    return report


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        specs = sweep_grid(
            tuple(args.schemes),
            traces=tuple(args.traces),
            scale=_scale(args),
            n_caches=args.n_caches,
            block_sizes=tuple(args.block_sizes),
            geometries=tuple(args.geometries),
            sharing_models=tuple(SharingModel(value) for value in args.sharing),
            backend=_backend(args),
            characterizations=tuple(args.characterization),
        )
    except ValueError as error:
        raise UsageError(f"sweep: {error}") from error
    report = _run_grid(args, specs)
    print(report.cell_table())
    if any(spec.characterization for spec in specs):
        print()
        print(report.pricing_table())
    if report.failures:
        print()
        print(report.failure_table())
    else:
        try:
            comparison = report.comparison()
        except ValueError:
            pass  # grid has extra axes; the cell table is the whole story
        else:
            print()
            print(table4(comparison).render())
            print()
            print(table5(comparison).render())
    print(report.render_metrics(), file=sys.stderr)
    if report.failures:
        print(
            f"sweep: {len(report.failures)}/{report.cells} cells failed "
            "(see failure table; rerun with --resume to retry them)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_models(args: argparse.Namespace) -> None:
    from .characterization import builtin_names, load_characterization

    sources = args.characterizations or list(builtin_names())
    first = True
    for source in sources:
        characterization = load_characterization(source)  # ValueError -> exit 2
        if not first:
            print()
        first = False
        bus = characterization.bus_model()
        print(f"{characterization.name} (version {characterization.version})")
        print(f"  source: {characterization.source}")
        print(f"  content hash: {characterization.content_hash()}")
        if characterization.description:
            print(f"  {characterization.description}")
        rows = characterization.table2_rows()
        width = max(len(label) for label in rows)
        print("  Table 2 column [bus cycles]:")
        for label, cycles in rows.items():
            print(f"    {label:<{width}}  {cycles:g}")
        if characterization.has_energy:
            ops = sorted(
                characterization.energy_nj, key=lambda op: op.value
            )
            op_width = max(len(op.value) for op in ops)
            print("  energy axis [nJ/op]:")
            for op in ops:
                print(f"    {op.value:<{op_width}}  {bus.energy_of(op):g}")
        else:
            print("  energy axis: none (cycles only)")


def _cmd_finite(args: argparse.Namespace) -> None:
    try:
        specs = sweep_grid(
            tuple(args.schemes),
            scale=_scale(args),
            n_caches=args.n_caches,
            geometries=tuple(args.geometries),
            backend=_backend(args),
        )
    except ValueError as error:
        raise UsageError(f"finite: {error}") from error
    report = _run_grid(args, specs)
    table = finite_sensitivity(
        [
            (outcome.spec.protocol, outcome.spec.geometry, outcome.result)
            for outcome in report.outcomes
        ]
    )
    print(table.render())
    print(report.render_metrics(), file=sys.stderr)


def _cmd_profile(args: argparse.Namespace) -> None:
    registry = MetricsRegistry()
    first = True
    for protocol in args.protocols:
        for trace in args.traces:
            spec = RunSpec(
                protocol=protocol,
                trace=trace,
                scale=_scale(args),
                n_caches=args.n_caches,
                geometry=args.geometry,
                backend=_backend(args),
            )
            report = profile_spec(spec, registry=registry)
            if not first:
                print()
            first = False
            print(report.render())
    if args.metrics_json:
        try:
            registry.write_json(args.metrics_json)
        except OSError as error:
            raise SystemExit(f"cannot write {args.metrics_json}: {error}")
        print(f"wrote metrics to {args.metrics_json}", file=sys.stderr)


def _cmd_spinlock(args: argparse.Namespace) -> None:
    scale = _scale(args)
    factories = {
        name: (lambda name=name: standard_trace(name, scale=scale))
        for name in standard_trace_names()
    }
    for impact in spin_lock_impact(factories).values():
        print(impact.render())


def _cmd_trace_stats(args: argparse.Namespace) -> None:
    scale = _scale(args)
    stats = [
        collect_stats(standard_trace(name, scale=scale), name=name)
        for name in standard_trace_names()
    ]
    print(format_table3(stats))


def _cmd_storage(args: argparse.Namespace) -> None:
    bits = directory_storage_bits(tuple(args.caches))
    header = f"{'Scheme':<20}" + "".join(f"{n:>8}" for n in args.caches)
    print("Directory bits per main-memory block vs number of caches")
    print(header)
    print("-" * len(header))
    for scheme, row in bits.items():
        print(f"{scheme:<20}" + "".join(f"{row[n]:>8}" for n in args.caches))


def _cmd_classify(args: argparse.Namespace) -> None:
    from .trace.classify import classify_blocks, sharing_profile

    trace = standard_trace(args.trace, scale=_scale(args))
    print(sharing_profile(classify_blocks(trace)).render())


def _cmd_validate(args: argparse.Namespace) -> None:
    from .core import validate_coherence
    from .protocols import create_protocol

    for name in standard_trace_names():
        report = validate_coherence(
            create_protocol(args.scheme, 4),
            standard_trace(name, scale=_scale(args)),
        )
        print(
            f"{name}: coherent over {report.references} references "
            f"({report.writes} writes, {report.copies_checked} copy checks)"
        )


def _cmd_modelcheck(args: argparse.Namespace) -> None:
    from .core import model_check
    from .protocols import create_protocol

    if args.caches < 1 or args.blocks < 1 or args.depth < 1:
        raise UsageError("modelcheck: --caches, --blocks and --depth must be >= 1")
    report = model_check(
        lambda n: create_protocol(args.scheme, n),
        n_caches=args.caches,
        n_blocks=args.blocks,
        depth=args.depth,
    )
    print(report.render())
    if not report.ok:
        raise SystemExit(1)


def _cmd_timed(args: argparse.Namespace) -> None:
    from .core import simulate_timed
    from .protocols import create_protocol

    bus = pipelined_bus()
    for name in standard_trace_names():
        result = simulate_timed(
            create_protocol(args.scheme, 4),
            standard_trace(name, scale=_scale(args)),
            bus,
            q_overhead=args.q,
        )
        print(
            f"{name}: {result.total_cycles} cycles, "
            f"bus util {result.bus_utilization:.3f}, "
            f"proc util {result.processor_utilization:.3f}, "
            f"{result.references_per_cycle:.2f} refs/cycle"
        )


def _status_snapshot_path(args: argparse.Namespace) -> Path:
    """Resolve which status snapshot the ``status`` verb should read."""
    if args.status_file:
        return Path(args.status_file)
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        raise UsageError(
            "status: pass --status-file FILE, or --cache-dir DIR to pick the "
            "most recent snapshot published there"
        )
    directory = Path(cache_dir)
    stamped = []
    for p in directory.glob(f"*{STATUS_SUFFIX}"):
        # stat() each candidate defensively: a concurrent cache clean can
        # delete a snapshot between the glob and the stat.
        try:
            stamped.append((p.stat().st_mtime, p))
        except OSError:
            continue
    candidates = [p for _, p in sorted(stamped, reverse=True)]
    if not candidates:
        raise UsageError(
            f"status: no *{STATUS_SUFFIX} snapshot in {directory} (is a "
            "sweep running there with a journal or --status-file?)"
        )
    return candidates[0]


def _journal_counts(status: dict) -> Optional[dict]:
    """ok/failed cell counts from the journal the snapshot points at."""
    journal_path = status.get("journal")
    if not journal_path or not Path(str(journal_path)).exists():
        return None
    records = SweepJournal(journal_path).load().values()
    return {
        "ok": sum(1 for r in records if r.get("status") == "ok"),
        "failed": sum(1 for r in records if r.get("status") == "failed"),
    }


def _cmd_status(args: argparse.Namespace) -> int:
    if args.watch is not None and args.watch <= 0:
        raise UsageError("status: --watch must be positive")
    path = _status_snapshot_path(args)
    rendered = False
    while True:
        status = read_status(path)
        if status is None:
            if args.watch is not None and rendered:
                # The snapshot vanished mid-watch (cache dir cleaned, sweep
                # artifacts reaped).  That ends the watch, it isn't an error.
                print(
                    f"repro-coherence: status: snapshot {path} disappeared; "
                    "ending watch",
                    file=sys.stderr,
                )
                return 0
            print(
                f"repro-coherence: status: no readable snapshot at {path}",
                file=sys.stderr,
            )
            return 1
        if rendered:
            print()
        rendered = True
        print(render_status(status, _journal_counts(status)))
        if args.watch is None or status.get("state") != "running":
            return 0
        time.sleep(args.watch)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP job API until SIGTERM/SIGINT, then drain."""
    if not args.cache_dir:
        raise UsageError(
            "serve: --cache-dir DIR is required (the service root: shared "
            "result cache plus per-job artifacts live under it)"
        )
    if args.workers < 1:
        raise UsageError("serve: --workers must be >= 1")
    if args.queue_limit < 1:
        raise UsageError("serve: --queue-limit must be >= 1")
    if args.rate_limit is not None and args.rate_limit < 0:
        raise UsageError("serve: --rate-limit must be >= 0")
    if args.burst < 1:
        raise UsageError("serve: --burst must be >= 1")

    from .service import JobManager, run_service

    fault_plan = None
    if args.fault_plan:
        from .resilience import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except ValueError as error:
            raise UsageError(f"serve: {error}")

    manager = JobManager(
        Path(args.cache_dir),
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_cells=args.max_cells,
        max_jobs=_jobs(args),
        rate_per_sec=args.rate_limit,
        burst=args.burst,
        job_ttl=args.job_ttl,
        state_dir=Path(args.state_dir) if args.state_dir else None,
        fault_plan=fault_plan,
        recover=not args.no_recover,
    )
    return run_service(
        manager,
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
    )


def _cmd_export_trace(args: argparse.Namespace) -> None:
    trace = standard_trace(args.trace, scale=_scale(args))
    writer = write_text if args.format == "text" else write_binary
    try:
        count = writer(args.path, trace)
    except OSError as error:
        raise SystemExit(f"export-trace: cannot write {args.path}: {error}")
    print(f"wrote {count} records to {args.path} ({args.format} format)")


_COMMANDS = {
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "models": _cmd_models,
    "finite": _cmd_finite,
    "profile": _cmd_profile,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "figure1": _cmd_figure1,
    "spinlock": _cmd_spinlock,
    "trace-stats": _cmd_trace_stats,
    "storage": _cmd_storage,
    "classify": _cmd_classify,
    "validate": _cmd_validate,
    "modelcheck": _cmd_modelcheck,
    "timed": _cmd_timed,
    "export-trace": _cmd_export_trace,
    "status": _cmd_status,
    "serve": _cmd_serve,
}


def _configure_logging(args: argparse.Namespace) -> None:
    if args.log_level is not None:
        level = args.log_level
    elif args.verbose >= 2:
        level = "debug"
    elif args.verbose == 1:
        level = "info"
    else:
        level = "warning"
    setup_logging(level=level, json_lines=args.log_json)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    try:
        status = _COMMANDS[args.command](args)
    except UsageError as error:
        print(f"repro-coherence: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Spec and trace-format errors (TraceFormatError is a ValueError):
        # one clean line, not a traceback.
        print(f"repro-coherence: {args.command}: {error}", file=sys.stderr)
        return 2
    except CellFailure as error:
        print(f"repro-coherence: {error}", file=sys.stderr)
        return 1
    except SweepInterrupted as error:
        report = error.report
        print(
            f"repro-coherence: interrupted: {len(report.outcomes)}/"
            f"{error.total} cells completed "
            f"({len(report.failures)} of them failed); completed results "
            "were flushed to the cache and journal — rerun with --resume",
            file=sys.stderr,
        )
        if report.outcomes:
            print(report.render_metrics(), file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("repro-coherence: interrupted", file=sys.stderr)
        return 130
    return status or 0


if __name__ == "__main__":
    sys.exit(main())
