"""The trace-driven multiprocessor simulator.

One simulation run feeds every record of a multiprocessor trace through a
coherence protocol's state machine, classifying references into Table 4
events and tallying the primitive bus operations they cost.  Following the
paper's method (Section 4.1), hardware costs are *not* applied here — the
returned :class:`SimulationResult` carries raw counts, and any number of bus
models can be priced against it afterwards.

Sharing is classified at **process** level by default (one infinite cache
per process, Section 4.4); pass ``SharingModel.PROCESSOR`` to key caches by
CPU instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from ..interconnect.bus import BusCostModel
from ..interconnect.costs import CostSummary, summarize_costs
from ..protocols.base import CoherenceProtocol
from ..trace.record import DEFAULT_BLOCK_SIZE, TraceRecord
from ..trace.stream import SharingModel
from .counters import EventFrequencies, SimulationCounters
from .invalidation import InvalidationHistogram

__all__ = ["SimulationResult", "simulate", "simulate_chunks"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one (protocol, trace) simulation."""

    protocol_name: str
    protocol_label: str
    trace_name: str
    counters: SimulationCounters
    n_caches: int
    block_size: int
    sharing_model: SharingModel

    @property
    def references(self) -> int:
        return self.counters.references

    def frequencies(self) -> EventFrequencies:
        """Event rates in percent of all references (Table 4 column)."""
        return self.counters.frequencies()

    def cost_summary(self, bus: BusCostModel) -> CostSummary:
        """Bus cycles per reference under ``bus`` (Table 5 column)."""
        return summarize_costs(self.protocol_label, self.counters.ops, bus)

    def cycles_per_reference(self, bus: BusCostModel) -> float:
        return self.cost_summary(bus).cycles_per_reference

    @property
    def invalidation_histogram(self) -> InvalidationHistogram:
        """Fan-out distribution of writes to previously-clean blocks (Fig 1)."""
        return self.counters.fanout


def simulate(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
    check_invariants_every: int = 0,
) -> SimulationResult:
    """Run ``protocol`` over ``trace`` and return the tallied result.

    Args:
        protocol: a freshly constructed protocol (its cache count bounds the
            number of distinct sharing units the trace may contain).
        trace: any iterable of trace records.
        trace_name: label carried into the result.
        block_size: bytes per block (the paper uses 16 throughout).
        sharing_model: classify sharing by process (paper default) or by
            processor.
        check_invariants_every: if positive, assert the single-writer
            invariant on the sharing table every N references (slow; meant
            for tests).

    Raises:
        ValueError: if the trace contains more sharing units than the
            protocol has caches.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    counters = SimulationCounters()
    _feed(
        protocol,
        trace,
        counters,
        {},
        by_process=sharing_model is SharingModel.PROCESS,
        block_size=block_size,
        check_invariants_every=check_invariants_every,
    )
    return SimulationResult(
        protocol_name=protocol.name,
        protocol_label=protocol.label,
        trace_name=trace_name,
        counters=counters,
        n_caches=protocol.n_caches,
        block_size=block_size,
        sharing_model=sharing_model,
    )


def simulate_chunks(
    protocol: CoherenceProtocol,
    chunks: Iterable[Iterable[TraceRecord]],
    trace_name: str = "trace",
    block_size: int = DEFAULT_BLOCK_SIZE,
    sharing_model: SharingModel = SharingModel.PROCESS,
    check_invariants_every: int = 0,
    chunk_done: Optional[Callable[[SimulationCounters], None]] = None,
) -> SimulationResult:
    """Simulate a trace supplied as consecutive chunks, merging exactly.

    The sharding invariant: chunk boundaries affect only how *counts* are
    accumulated, never the protocol's state machine.  Protocol state (and
    the sharing-unit registry) is threaded through the chunks in order,
    each chunk tallies into a fresh :class:`SimulationCounters`, and the
    per-chunk counters are merged — so the result is bit-identical to one
    :func:`simulate` over the concatenated trace.  ``chunk_done``, when
    given, receives each chunk's own counters as it completes (checkpoint
    and progress hook for the runner).
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    merged = SimulationCounters()
    units: Dict[int, int] = {}
    by_process = sharing_model is SharingModel.PROCESS
    processed = 0
    for chunk in chunks:
        counters = SimulationCounters()
        processed = _feed(
            protocol,
            chunk,
            counters,
            units,
            by_process=by_process,
            block_size=block_size,
            check_invariants_every=check_invariants_every,
            processed_offset=processed,
        )
        merged.merge(counters)
        if chunk_done is not None:
            chunk_done(counters)
    return SimulationResult(
        protocol_name=protocol.name,
        protocol_label=protocol.label,
        trace_name=trace_name,
        counters=merged,
        n_caches=protocol.n_caches,
        block_size=block_size,
        sharing_model=sharing_model,
    )


def _feed(
    protocol: CoherenceProtocol,
    trace: Iterable[TraceRecord],
    counters: SimulationCounters,
    units: Dict[int, int],
    *,
    by_process: bool,
    block_size: int,
    check_invariants_every: int,
    processed_offset: int = 0,
) -> int:
    """Feed ``trace`` through ``protocol``, tallying into ``counters``.

    ``units`` is the sharing-unit registry, owned by the caller so that a
    chunked run assigns the same dense cache indices as a single-pass run.
    Returns the running reference count (offset included) so the
    invariant-check cadence is also split-point independent.
    """
    access = protocol.access
    record_outcome = counters.record
    processed = processed_offset
    for record in trace:
        key = record.pid if by_process else record.cpu
        unit = units.get(key)
        if unit is None:
            unit = len(units)
            if unit >= protocol.n_caches:
                raise ValueError(
                    f"trace has more than {protocol.n_caches} sharing units; "
                    f"construct the protocol with more caches"
                )
            units[key] = unit
        outcome = access(unit, record.access, record.address // block_size)
        record_outcome(outcome)
        processed += 1
        if check_invariants_every and processed % check_invariants_every == 0:
            protocol.sharing.check_invariants()
    return processed
