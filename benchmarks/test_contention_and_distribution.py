"""Extensions of the paper's Section 5/7 system-level arguments.

1. **Bus contention** — the paper's 15-processor figure is "an optimistic
   upper bound because we have not included ... the effects of bus
   contention"; the queueing model here produces the saturating speedup
   curve and its knee.
2. **Distributed directories** — Section 7's claim that distributing the
   directory and memory with the processors makes their bandwidth scale;
   the model compares centralised vs distributed module utilisation using
   request rates measured by the simulator.
"""

from repro.analysis.contention import (
    BusContentionModel,
    knee_processors,
    speedup_curve,
)
from repro.analysis.distribution import load_model_from_result


def test_bus_contention_speedup(benchmark, comparison, pipe_bus, save_result):
    best = min(
        comparison.average_cycles(scheme, pipe_bus)
        for scheme in ("dir0b", "dragon")
    )
    model = BusContentionModel(cycles_per_reference=best)

    def run():
        return speedup_curve(model, (1, 2, 4, 8, 16, 32, 64)), knee_processors(
            model
        )

    curve, knee = benchmark(run)
    lines = [
        "Speedup on one shared bus with contention "
        f"(best scheme: {best:.4f} cyc/ref, demand {model.demand_fraction:.3f}):"
    ]
    for n, s in curve.items():
        lines.append(f"  n={n:<3} speedup {s:5.1f}")
    lines.append(
        f"  knee at ~{knee} processors "
        "(the paper's straight-line bound said ~15 and called itself optimistic)"
    )
    save_result("contention_speedup", "\n".join(lines))

    values = list(curve.values())
    assert values == sorted(values)  # monotone
    assert curve[64] < 1.05 / model.demand_fraction  # saturates at ~1/d
    assert 5 <= knee <= 40


def test_distributed_directory_bandwidth(
    benchmark, comparison, save_result
):
    result = comparison.result("dir0b", "POPS")

    def run():
        model = load_model_from_result(result)
        return model, model.sweep((4, 16, 64, 256))

    model, sweep = benchmark(run)
    lines = [
        "Directory+memory module utilisation, centralised vs distributed",
        f"(measured rates: directory {model.directory_rate:.4f}/ref, "
        f"memory {model.memory_rate:.4f}/ref):",
        f"  {'n':>4} {'centralized':>12} {'distributed':>12}",
    ]
    for n, row in sweep.items():
        lines.append(
            f"  {n:>4} {row['centralized']:>12.3f} {row['distributed']:>12.3f}"
        )
    lines.append(
        f"  centralised module saturates at ~"
        f"{model.max_processors_centralized()} processors; distributed "
        "utilisation is flat (Section 7's scaling argument)"
    )
    save_result("distributed_directory_bandwidth", "\n".join(lines))

    # Distributed per-module load is independent of machine size.
    assert sweep[4]["distributed"] == sweep[256]["distributed"]
    # Centralised load crosses saturation somewhere in the sweep.
    assert sweep[256]["centralized"] > 1.0
    # The paper's conclusion: the directory demand is comparable to (not
    # wildly above) the memory demand.
    directory_demand = model.directory_rate * model.directory_service_cycles
    memory_demand = model.memory_rate * model.memory_service_cycles
    assert directory_demand < 2 * memory_demand
