"""Deterministic fault injection for the sweep runner.

A :class:`FaultPlan` is a seeded, declarative list of faults to inject at
the pipeline and cache seams — no wall-clock randomness anywhere, so a
plan plus a grid always produces the same failures in the same cells on
the same attempts.  The resilience test suite is built on it, and the CLI
exposes it behind the hidden ``--fault-plan FILE`` flag for CI soak runs.

Fault kinds, by the seam they fire at:

worker (inside the cell's process, before the simulation starts)
    ``raise``  — raise :class:`InjectedFault` (exercises retry/isolation)
    ``delay``  — sleep ``value`` seconds (exercises ``--cell-timeout``)
    ``kill``   — SIGKILL the worker (exercises crash detection)

parent (in the sweep loop, when the matching cell completes)
    ``interrupt`` — raise ``KeyboardInterrupt`` (exercises SIGINT cleanup)

cache (inside :class:`FaultyCache`, during ``put``)
    ``put-error``   — raise ``OSError`` as if the disk were full/read-only
    ``short-write`` — truncate the entry mid-pickle (torn write)
    ``corrupt``     — replace the entry with garbage bytes

service (inside :class:`~repro.service.journal.ServiceJournal`, as a job
state transition is journalled; the pattern matches the transition name —
``"submitted"``, ``"running"``, ``"finished"``…)
    ``journal-error`` — raise ``OSError`` on the append (disk full); the
        service must degrade, not die
    ``journal-torn``  — write a torn, newline-less half record, as if the
        process were SIGKILLed mid-append
    ``serve-kill``    — append the record, fsync, then SIGKILL the serving
        process: a deterministic crash point for restart-recovery tests

Cells are matched by :meth:`~repro.runner.spec.RunSpec.cell_id` with
``fnmatch`` patterns (``"dir0b:POPS:*"``, ``"*"``), and each fault names
the 1-based attempt it fires on (``attempt=None`` fires on every attempt —
a permanent fault no retry can outlive).  For service faults the
"attempt" is the Nth journal append of that transition name.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..runner.cache import ResultCache

__all__ = [
    "CACHE_KINDS",
    "FAULT_KINDS",
    "PARENT_KINDS",
    "SERVICE_KINDS",
    "WORKER_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyCache",
    "InjectedFault",
]

logger = get_logger("resilience.faults")

WORKER_KINDS = ("raise", "delay", "kill")
PARENT_KINDS = ("interrupt",)
CACHE_KINDS = ("put-error", "short-write", "corrupt")
SERVICE_KINDS = ("journal-error", "journal-torn", "serve-kill")
FAULT_KINDS = WORKER_KINDS + PARENT_KINDS + CACHE_KINDS + SERVICE_KINDS


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: which cells, which kind, which attempt, how hard."""

    #: fnmatch pattern against RunSpec.cell_id() ("*" matches every cell)
    cell: str
    #: one of :data:`FAULT_KINDS`
    kind: str
    #: 1-based attempt this fault fires on; None = every attempt (permanent)
    attempt: Optional[int] = 1
    #: seconds for ``delay`` faults
    value: float = 0.0
    #: message for ``raise``/``put-error`` faults
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError(f"attempt is 1-based, got {self.attempt}")
        if self.value < 0:
            raise ValueError(f"value must be >= 0, got {self.value}")

    def fires(self, cell: str, attempt: int) -> bool:
        if self.attempt is not None and self.attempt != attempt:
            return False
        return fnmatchcase(cell, self.cell)

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "kind": self.kind,
            "attempt": self.attempt,
            "value": self.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            cell=str(payload["cell"]),
            kind=str(payload["kind"]),
            attempt=(
                None if payload.get("attempt", 1) is None
                else int(payload.get("attempt", 1))
            ),
            value=float(payload.get("value", 0.0)),
            message=str(payload.get("message", "injected fault")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of faults to inject into one sweep."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    # -- matching -------------------------------------------------------------

    def matching(
        self, cell: str, attempt: int, kinds: Sequence[str]
    ) -> Iterator[FaultSpec]:
        for fault in self.faults:
            if fault.kind in kinds and fault.fires(cell, attempt):
                yield fault

    def has_kind(self, *kinds: str) -> bool:
        return any(fault.kind in kinds for fault in self.faults)

    @property
    def has_worker_kills(self) -> bool:
        return self.has_kind("kill")

    @property
    def has_cache_faults(self) -> bool:
        return self.has_kind(*CACHE_KINDS)

    # -- firing ---------------------------------------------------------------

    def fire_worker_faults(
        self, cell: str, attempt: int, allow_kill: bool = True
    ) -> None:
        """Apply worker-seam faults for this (cell, attempt), in plan order.

        Runs inside the worker process, or inline for serial/probed
        sweeps — which pass ``allow_kill=False`` so a ``kill`` fault is
        skipped (with a warning) instead of taking down the parent.
        """
        for fault in self.matching(cell, attempt, WORKER_KINDS):
            if fault.kind == "delay":
                time.sleep(fault.value)
            elif fault.kind == "raise":
                raise InjectedFault(fault.message)
            elif fault.kind == "kill":
                if not allow_kill:
                    logger.warning(
                        "kill fault skipped: cell is running in the parent",
                        extra=log_fields(cell=cell, attempt=attempt),
                    )
                    continue
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def should_interrupt(self, cell: str, attempt: int) -> bool:
        """True when an ``interrupt`` fault fires as this cell completes."""
        return any(self.matching(cell, attempt, PARENT_KINDS))

    def cache_fault(self, cell: str, attempt: int) -> Optional[FaultSpec]:
        """The first cache-seam fault for this (cell, put-attempt), if any."""
        return next(iter(self.matching(cell, attempt, CACHE_KINDS)), None)

    def service_fault(self, transition: str, append: int) -> Optional[FaultSpec]:
        """The first service-journal fault for this transition append, if any.

        ``transition`` is the job state being journalled (``"submitted"``,
        ``"running"``, …) matched against the fault's cell pattern, and
        ``append`` is the 1-based count of appends of that transition —
        so ``FaultSpec(cell="running", kind="serve-kill", attempt=1)``
        crashes the server exactly as its first job starts running.
        """
        return next(iter(self.matching(transition, append, SERVICE_KINDS)), None)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("fault plan 'faults' must be a list")
        return cls(
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults),
            seed=int(payload.get("seed", 0)),
        )

    def dump(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot read fault plan {path}: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan {path} must be a JSON object")
        return cls.from_dict(payload)

    # -- sampling -------------------------------------------------------------

    @classmethod
    def sample(
        cls,
        cells: Iterable[str],
        kinds: Sequence[str] = ("raise",),
        rate: float = 0.25,
        seed: int = 0,
        attempt: Optional[int] = 1,
        delay_seconds: float = 5.0,
    ) -> "FaultPlan":
        """A pseudo-random plan over ``cells``, fully determined by ``seed``.

        Each cell independently draws from a SHA-256 of ``(seed, cell)``:
        it faults with probability ``rate``, and the fault kind cycles
        through ``kinds`` by the same hash.  No wall-clock randomness —
        the CI soak job regenerates the identical plan every run.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ValueError("at least one fault kind is required")
        faults = []
        for cell in cells:
            digest = hashlib.sha256(f"{seed}:{cell}".encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / 2**64
            if draw >= rate:
                continue
            kind = kinds[digest[8] % len(kinds)]
            faults.append(
                FaultSpec(
                    cell=cell,
                    kind=kind,
                    attempt=attempt,
                    value=delay_seconds if kind == "delay" else 0.0,
                    message=f"sampled fault (seed={seed})",
                )
            )
        return cls(faults=tuple(faults), seed=seed)


class FaultyCache(ResultCache):
    """A :class:`ResultCache` that injects its plan's cache-seam faults.

    The sweep registers each cache key's cell id as it scans the grid
    (:meth:`register_cell`), so ``put`` can match faults by cell pattern.
    Faults fire on the Nth *put* of a key (``attempt`` counts puts), and
    they exercise the **base class's** degradation paths: ``put-error``
    raises ``OSError`` inside the write (graceful skip + ``cache.put_errors``),
    while ``short-write``/``corrupt`` land a damaged entry that the next
    ``get`` detects, counts and deletes.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(directory, registry=registry)
        self.plan = plan
        self._cells: dict = {}
        self._puts: dict = {}

    def register_cell(self, key: str, cell: str) -> None:
        """Remember which cell id a cache key belongs to (for matching)."""
        self._cells[key] = cell

    def _write_result(self, key: str, tmp: Path, result) -> None:
        cell = self._cells.get(key, "")
        attempt = self._puts.get(key, 0) + 1
        self._puts[key] = attempt
        fault = self.plan.cache_fault(cell, attempt)
        if fault is not None and fault.kind == "put-error":
            raise OSError(f"injected cache put error: {fault.message}")
        super()._write_result(key, tmp, result)
        if fault is not None:
            logger.warning(
                "injecting cache fault",
                extra=log_fields(kind=fault.kind, key=key, cell=cell),
            )
            if fault.kind == "short-write":
                with tmp.open("rb+") as handle:
                    handle.truncate(max(1, tmp.stat().st_size // 2))
            elif fault.kind == "corrupt":
                tmp.write_bytes(b"\x00corrupt cache entry\x00")
