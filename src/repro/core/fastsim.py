"""The fast backend: table-driven simulation over packed trace columns.

:class:`FastPipeline` is a drop-in alternative to
:class:`~repro.core.pipeline.ReferencePipeline` that produces **bit-identical**
:class:`~repro.core.counters.SimulationCounters` (the differential suite in
``tests/test_backend_differential.py`` proves this for every registered
protocol).  Instead of calling the protocol's ``_read``/``_write`` per
reference, it asks the protocol to :meth:`~repro.protocols.base.CoherenceProtocol.compile_table`
itself into a 512-entry dispatch table (see :mod:`repro.protocols.table`) and
then drives a tight integer kernel:

* per-block state is one packed integer — holder mask, dirty owner, and the
  optional aux annotation (Write-Once reserved / Illinois exclusive /
  Yen & Fu single bit);
* each reference encodes its condition code from that integer, looks up the
  matching :class:`~repro.protocols.table.Row`, and tallies *hits per row*
  (plus the remote-copy count ``F`` where a row's costs depend on it);
* at batch boundaries the tally is *flushed* into real
  ``SimulationCounters`` — events, op multisets, bus transactions and the
  Figure 1 fan-out histogram are all linear in the per-row hit counts, so
  the flush reconstructs exactly what the reference loop would have counted.

:class:`~repro.trace.packed.PackedTrace` inputs are decoded column-wise with
NumPy (unit resolution via one ``np.unique`` per batch, block extraction as a
vectorised divide) — no :class:`~repro.trace.record.TraceRecord` objects are
ever materialised.  NumPy is optional: plain record iterables run through the
same kernel via a pure-Python accumulation path.

**Fidelity fallback.**  Some configurations need the reference loop's
per-reference granularity: protocols whose state does not fit the table
vocabulary (``compile_table()`` is ``None``), oracle value checking, periodic
invariant checks, custom geometry stages, and probes that declare
``granularity = "reference"``.  For those the pipeline transparently wraps a
:class:`ReferencePipeline` and feeds it — still decoding packed columns
without building records — so ``backend="fast"`` is always safe to request.
Batch-granularity probes (``granularity = "batch"``) keep the table kernel
and receive :meth:`~repro.obs.probe.ReferenceProbe.on_batch` at internal
batch boundaries.

Two small infidelities are documented rather than mirrored: in table mode
the protocol object itself is never mutated (all state lives in the kernel),
so per-protocol *diagnostic* attributes (DiriB's ``broadcasts``, Yen & Fu's
``saved_directory_checks``) stay zero; and a trace with too many sharing
units raises the same ``ValueError`` as the reference pipeline but at batch
decode time, i.e. potentially a few thousand references earlier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

try:  # NumPy is an optional extra (pip install repro[fast])
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

if _np is not None:
    from ..trace.packed import PackedTrace
else:  # pragma: no cover - environment without numpy
    PackedTrace = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from ..obs.probe import ReferenceProbe

from ..interconnect.bus import BusOp
from ..memory.cache import CacheGeometry
from ..protocols.base import CoherenceProtocol
from ..protocols.events import Event
from ..protocols.table import TableError
from ..trace.record import DEFAULT_BLOCK_SIZE, AccessType, TraceRecord
from ..trace.stream import SharingModel
from .counters import SimulationCounters
from .pipeline import (
    GeometryStage,
    InfinitePassthrough,
    ReferencePipeline,
    SimulationResult,
)

__all__ = ["FastPipeline", "HAS_NUMPY", "BATCH_SIZE"]

#: Whether the vectorised packed-trace decode path is available.
HAS_NUMPY = _np is not None

#: References per internal batch (tally flush / probe notification cadence).
BATCH_SIZE = 1 << 18

_ACCESS_BY_CODE = (AccessType.INSTR, AccessType.READ, AccessType.WRITE)


class FastPipeline:
    """Table-driven pipeline, bit-identical to :class:`ReferencePipeline`.

    Accepts the same constructor arguments; see the module docstring for
    when it runs the vectorised table kernel versus wrapping the reference
    loop.  State persists across :meth:`feed` calls, so the chunking
    contract (merge of per-chunk counters == single-run counters) holds
    exactly as it does for the reference pipeline.
    """

    def __init__(
        self,
        protocol: CoherenceProtocol,
        *,
        geometry: Optional[CacheGeometry] = None,
        stage: Optional[GeometryStage] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sharing_model: SharingModel = SharingModel.PROCESS,
        check_invariants_every: int = 0,
        check_values: bool = False,
        probe: Optional["ReferenceProbe"] = None,
    ) -> None:
        table = protocol.compile_table()
        probe_granularity = (
            getattr(probe, "granularity", "reference") if probe is not None else None
        )
        custom_stage = stage is not None and not isinstance(stage, InfinitePassthrough)
        table_mode = (
            table is not None
            and not check_values
            and check_invariants_every == 0
            and not custom_stage
            and probe_granularity in (None, "batch")
        )
        # An explicit InfinitePassthrough overrides geometry, exactly as the
        # reference pipeline's constructor does.
        self._geometry = None if isinstance(stage, InfinitePassthrough) else geometry
        self._probe = probe
        self._processed = 0
        self._by_process = sharing_model is SharingModel.PROCESS
        self.protocol = protocol
        self.block_size = block_size
        self.sharing_model = sharing_model
        if table_mode:
            # The inner reference pipeline only owns the sharing-unit
            # registry (and packages results); it never steps a reference.
            self._ref = ReferencePipeline(
                protocol, block_size=block_size, sharing_model=sharing_model
            )
            self._table = table
            self._init_kernel()
        else:
            self._ref = ReferencePipeline(
                protocol,
                geometry=geometry,
                stage=stage,
                block_size=block_size,
                sharing_model=sharing_model,
                check_invariants_every=check_invariants_every,
                check_values=check_values,
                probe=probe,
            )
            self._table = None
        self.oracle = self._ref.oracle

    @property
    def uses_table(self) -> bool:
        """Whether this run executes the table kernel (vs the reference loop)."""
        return self._table is not None

    def _init_kernel(self) -> None:
        n_caches = self.protocol.n_caches
        self._n_caches = n_caches
        self._full = (1 << n_caches) - 1
        self._oshift = n_caches
        obits = (n_caches + 1).bit_length()
        self._omask = (1 << obits) - 1
        self._ashift = n_caches + obits
        self._threshold = self._table.threshold
        #: block -> packed state int; presence in the dict == block seen
        self._states: dict = {}
        rows = self._table.rows
        self._rows = rows
        entries = []
        for index in self._table.dispatch:
            if index is None:
                entries.append(None)
                continue
            row = rows[index]
            fan_dyn = row.fanout and row.fclass > 0
            entries.append((index, row.actions, row.aux_action, row.needs_f, fan_dyn))
        self._entries = entries
        # Per-row tallies, flushed into SimulationCounters at batch boundaries.
        self._hits = [0] * len(rows)
        self._sumf = [0] * len(rows)
        self._fan: dict = {}
        self._instr = 0
        self._nrefs = 0
        self._ev = 0
        self._dev = 0
        geometry = self._geometry
        if geometry is not None:
            # Finite-geometry mirror of SetAssociativeLRU: per-unit, per-set
            # insertion-ordered dicts (LRU order = insertion order).
            self._sets = [
                [dict() for _ in range(geometry.n_sets)] for _ in range(n_caches)
            ]
            self._set_mask = geometry.n_sets - 1
            self._assoc = geometry.associativity
        else:
            self._sets = None

    def attach_probe(self, probe: Optional["ReferenceProbe"]) -> None:
        """Attach (or detach) a probe.

        In table mode only batch-granularity probes can be attached after
        construction — a per-reference probe would need the reference loop,
        so construct the pipeline with ``probe=...`` instead.
        """
        if (
            self._table is not None
            and probe is not None
            and getattr(probe, "granularity", "reference") != "batch"
        ):
            raise RuntimeError(
                "cannot attach a reference-granularity probe to a running "
                "table-mode pipeline; pass probe= at construction to get the "
                "reference-fidelity path"
            )
        self._probe = probe
        if self._table is None:
            self._ref.attach_probe(probe)

    # -- the kernel ------------------------------------------------------------

    def _unmapped(self, code: int) -> TableError:
        dirty = ("none", "local", "remote")[(code >> 3) & 3]
        aux = ("none", "self", "other")[(code >> 7) & 3]
        fclass = (code >> 5) & 3
        return TableError(
            f"protocol {self.protocol.name!r}: no transition rule for "
            f"condition write={bool(code & 1)} first={bool(code & 2)} "
            f"held={bool(code & 4)} dirty={dirty} fclass={fclass} aux={aux} "
            f"(code {code})"
        )

    def _run_data(self, units: list, writes: list, blocks: list) -> None:
        """Feed one batch of *data* references through the table kernel.

        ``units``/``writes``/``blocks`` are parallel plain-Python lists;
        instruction fetches never reach here (they are tallied separately
        and generate no coherence traffic).
        """
        states = self._states
        entries = self._entries
        threshold = self._threshold
        no_threshold = threshold is None
        oshift = self._oshift
        ashift = self._ashift
        omask = self._omask
        full = self._full
        hits = self._hits
        sumf = self._sumf
        fan = self._fan
        sets = self._sets
        finite = sets is not None
        if finite:
            set_mask = self._set_mask
            assoc = self._assoc
            n_caches = self._n_caches
            ev = 0
            dev = 0
        for i in range(len(units)):
            unit = units[i]
            block = blocks[i]
            bit = 1 << unit
            if finite:
                # Mirror of SetAssociativeLRU.before_access: make the block
                # resident, displacing the LRU victim if the set is full.
                lru = sets[unit][block & set_mask]
                if block in lru:
                    del lru[block]  # re-insert == move to MRU position
                    lru[block] = True
                else:
                    if len(lru) >= assoc:
                        victim = next(iter(lru))
                        del lru[victim]
                        ev += 1
                        vstate = states.get(victim)
                        if vstate is not None:
                            # Mirror of protocol.evict(): drop any aux
                            # annotation pointing at this cache, then remove
                            # the holder bit, writing back a dirty victim.
                            vaux = vstate >> ashift
                            aux_cleared = vaux == bit
                            if aux_cleared:
                                vaux = 0
                            vmask = vstate & full
                            if vmask & bit:
                                vmask &= ~bit
                                vowner = ((vstate >> oshift) & omask) - 1
                                if vowner == unit:
                                    vowner = -1
                                    dev += 1
                                states[victim] = (
                                    vmask | (vowner + 1) << oshift | vaux << ashift
                                )
                            elif aux_cleared:
                                states[victim] = (
                                    vmask
                                    | (vstate & (omask << oshift))
                                    | vaux << ashift
                                )
                    lru[block] = True
            state = states.get(block)
            if state is None:
                code = 2 | writes[i]  # globally first reference
                mask = 0
                owner = -1
                aux = 0
                F = 0
            else:
                mask = state & full
                owner = ((state >> oshift) & omask) - 1
                aux = state >> ashift
                F = (mask & ~bit).bit_count()
                code = writes[i]
                if mask & bit:
                    code |= 4
                if owner >= 0:
                    code |= 8 if owner == unit else 16
                if F:
                    code |= 32 if no_threshold or F <= threshold else 64
                if aux:
                    code |= 128 if aux == bit else 256
            entry = entries[code]
            if entry is None:
                raise self._unmapped(code)
            ridx, actions, aux_act, needs_f, fan_dyn = entry
            hits[ridx] += 1
            if needs_f:
                sumf[ridx] += F
                if fan_dyn:
                    fan[F] = fan.get(F, 0) + 1
            if actions or aux_act or state is None:
                if actions & 1:  # ACT_CLEAR_DIRTY
                    owner = -1
                if actions & 2:  # ACT_MASK_ADD
                    mask |= bit
                elif actions & 4:  # ACT_MASK_ONLY
                    mask = bit
                    if owner != unit:
                        owner = -1
                    if finite and F:
                        # Mirror of after_access: every other cache lost its
                        # holder bit just now, so drop its resident line.
                        set_index = block & set_mask
                        for other in range(n_caches):
                            if other != unit:
                                sets[other][set_index].pop(block, None)
                if actions & 8:  # ACT_SET_DIRTY
                    owner = unit
                if aux_act == 1:  # AUX_CLEAR
                    aux = 0
                elif aux_act == 2:  # AUX_SELF
                    aux = bit
                states[block] = mask | (owner + 1) << oshift | aux << ashift
        if finite:
            self._ev += ev
            self._dev += dev

    def _flush(self, counters: SimulationCounters) -> None:
        """Fold the per-row tallies into ``counters`` and reset them.

        Everything the reference loop counts per reference is linear in the
        per-row hit counts (and in the accumulated ``F`` totals for rows
        with per-remote-copy costs), so this reconstruction is exact.
        """
        rows = self._rows
        hits = self._hits
        sumf = self._sumf
        events = counters.events
        op_counts = counters.ops
        ops = op_counts.ops
        op_counts.references += self._nrefs
        if self._instr:
            events[Event.INSTR] = events.get(Event.INSTR, 0) + self._instr
        transactions = 0
        fan0 = 0
        for ridx, count in enumerate(hits):
            if not count:
                continue
            row = rows[ridx]
            event = row.event
            events[event] = events.get(event, 0) + count
            for op, per_hit in row.base_ops:
                if per_hit:
                    ops[op] = ops.get(op, 0) + per_hit * count
            f_total = sumf[ridx]
            if f_total:
                for op, coeff in row.linear_ops:
                    if coeff:
                        ops[op] = ops.get(op, 0) + coeff * f_total
            if row.used_bus:
                transactions += count
            if row.fanout and row.fclass == 0:
                fan0 += count
        op_counts.transactions += transactions
        fanout = counters.fanout
        for f, count in self._fan.items():
            fanout.add(f, count)
        if fan0:
            fanout.add(0, fan0)
        if self._ev:
            counters.evictions += self._ev
        if self._dev:
            counters.dirty_evictions += self._dev
            ops[BusOp.WRITE_BACK] = ops.get(BusOp.WRITE_BACK, 0) + self._dev
        self._hits = [0] * len(rows)
        self._sumf = [0] * len(rows)
        self._fan = {}
        self._instr = 0
        self._nrefs = 0
        self._ev = 0
        self._dev = 0

    # -- feeding ---------------------------------------------------------------

    def _resolve_batch_units(self, keys):
        """Vectorised unit resolution preserving first-appearance order.

        Shares the inner pipeline's registry (and its overflow check), so a
        fast run assigns exactly the unit indices a reference run would.
        """
        uniq, first_pos, inverse = _np.unique(
            keys, return_index=True, return_inverse=True
        )
        resolve = self._ref.resolve_key
        lut = _np.empty(len(uniq), dtype=_np.int64)
        for uidx in _np.argsort(first_pos, kind="stable").tolist():
            lut[uidx] = resolve(int(uniq[uidx]))
        return lut[inverse]

    def _feed_packed(self, trace, counters: SimulationCounters) -> None:
        block_size = self.block_size
        key_col = trace.pid if self._by_process else trace.cpu
        access_col = trace.access
        address_col = trace.address
        probe = self._probe
        n = len(trace)
        for start in range(0, n, BATCH_SIZE):
            stop = min(start + BATCH_SIZE, n)
            units = self._resolve_batch_units(key_col[start:stop])
            access = access_col[start:stop]
            data = access != 0
            n_batch = stop - start
            n_data = int(data.sum())
            self._instr += n_batch - n_data
            self._nrefs += n_batch
            if n_data:
                if n_data != n_batch:
                    units = units[data]
                    access = access[data]
                    blocks = address_col[start:stop][data] // block_size
                else:
                    blocks = address_col[start:stop] // block_size
                self._run_data(
                    units.tolist(), (access == 2).tolist(), blocks.tolist()
                )
            self._processed += n_batch
            if probe is not None:
                self._flush(counters)
                probe.on_batch(self._processed, counters)

    def _feed_records(
        self, trace: Iterable[TraceRecord], counters: SimulationCounters
    ) -> None:
        """Pure-Python path: accumulate records into kernel batches."""
        resolve = self._ref.resolve_key
        by_process = self._by_process
        block_size = self.block_size
        probe = self._probe
        units: list = []
        writes: list = []
        blocks: list = []
        pending = 0
        for record in trace:
            unit = resolve(record.pid if by_process else record.cpu)
            pending += 1
            access = record.access
            if access is AccessType.INSTR:
                self._instr += 1
            else:
                units.append(unit)
                writes.append(1 if access is AccessType.WRITE else 0)
                blocks.append(record.address // block_size)
            if pending == BATCH_SIZE:
                self._run_data(units, writes, blocks)
                self._nrefs += pending
                self._processed += pending
                units, writes, blocks = [], [], []
                pending = 0
                if probe is not None:
                    self._flush(counters)
                    probe.on_batch(self._processed, counters)
        if pending:
            self._run_data(units, writes, blocks)
            self._nrefs += pending
            self._processed += pending
            if probe is not None:
                self._flush(counters)
                probe.on_batch(self._processed, counters)

    def _feed_packed_reference(self, trace, counters: SimulationCounters) -> None:
        """Reference-fidelity path for packed input: column decode, then step.

        Keeps per-reference semantics (probes, oracle, invariant checks,
        custom stages) while still skipping TraceRecord construction.
        """
        ref = self._ref
        step = ref.step
        block_size = self.block_size
        key_col = trace.pid if self._by_process else trace.cpu
        kinds = _ACCESS_BY_CODE
        n = len(trace)
        for start in range(0, n, BATCH_SIZE):
            stop = min(start + BATCH_SIZE, n)
            units = self._resolve_batch_units(key_col[start:stop]).tolist()
            accesses = trace.access[start:stop].tolist()
            blocks = (trace.address[start:stop] // block_size).tolist()
            for i in range(stop - start):
                step(units[i], kinds[accesses[i]], blocks[i], counters)

    def feed(
        self, trace: Iterable[TraceRecord], counters: SimulationCounters
    ) -> None:
        """Feed a trace (or one chunk of it) through the pipeline.

        State persists across calls; chunk boundaries only affect how counts
        are accumulated, exactly as with the reference pipeline.
        """
        if self._table is None:
            if PackedTrace is not None and isinstance(trace, PackedTrace):
                self._feed_packed_reference(trace, counters)
            else:
                self._ref.feed(trace, counters)
            probe = self._probe
            if probe is not None:
                probe.on_batch(self._ref._processed, counters)
            return
        if PackedTrace is not None and isinstance(trace, PackedTrace):
            self._feed_packed(trace, counters)
        else:
            self._feed_records(trace, counters)
        self._flush(counters)

    # -- run wrappers ----------------------------------------------------------

    def run(
        self, trace: Iterable[TraceRecord], trace_name: str = "trace"
    ) -> SimulationResult:
        """Feed the whole trace and package the tallied result."""
        counters = SimulationCounters()
        self.feed(trace, counters)
        return self.result(trace_name, counters)

    def run_chunks(
        self,
        chunks: Iterable[Iterable[TraceRecord]],
        trace_name: str = "trace",
        chunk_done: Optional[Callable[[SimulationCounters], None]] = None,
    ) -> SimulationResult:
        """Feed a trace supplied as consecutive chunks, merging exactly."""
        merged = SimulationCounters()
        for chunk in chunks:
            counters = SimulationCounters()
            self.feed(chunk, counters)
            merged.merge(counters)
            if chunk_done is not None:
                chunk_done(counters)
        return self.result(trace_name, merged)

    def result(
        self, trace_name: str, counters: SimulationCounters
    ) -> SimulationResult:
        """Package ``counters`` as this pipeline's :class:`SimulationResult`."""
        if self._table is None:
            return self._ref.result(trace_name, counters)
        geometry = self._geometry
        return SimulationResult(
            protocol_name=self.protocol.name,
            protocol_label=self.protocol.label,
            trace_name=trace_name,
            counters=counters,
            n_caches=self.protocol.n_caches,
            block_size=self.block_size,
            sharing_model=self.sharing_model,
            geometry=geometry.spec if geometry is not None else None,
        )
