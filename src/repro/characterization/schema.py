"""The characterization schema: one validated hardware model as data.

A characterization is four sections of plain data:

``[model]``
    ``name`` (required), ``version`` (required), ``description``
    (optional), ``schema`` (optional, must equal
    :data:`CHARACTERIZATION_SCHEMA_VERSION`).

``[table1]``
    Fundamental bus timings, one key per
    :class:`~repro.interconnect.bus.BusTiming` field (all optional;
    missing fields take the paper's Table 1 defaults).

``[cycles]``
    Bus cycles per primitive op, one key per
    :class:`~repro.interconnect.bus.BusOp` value.  Required section.  Ops
    may be omitted — pricing a protocol that emits a missing op raises a
    clear :class:`~repro.interconnect.bus.UnknownBusOpError`.

``[energy_nj]``
    Energy per op occurrence in nanojoules.  Optional; when present it
    gives every :class:`CostSummary` an ``energy_per_reference``.

Identity is the **content hash**: a SHA-256 over the canonical payload
(names, versions, timings, numeric values normalised so ``5`` and ``5.0``
hash alike).  Two files with the same semantic content share a hash — and
therefore share result-cache keys — regardless of path, comments or
formatting; editing any value retires the cached pricing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..interconnect.bus import BusCostModel, BusOp, BusTiming

__all__ = [
    "CHARACTERIZATION_SCHEMA_VERSION",
    "Characterization",
    "CharacterizationError",
]

#: Bump when the file format's meaning changes incompatibly.
CHARACTERIZATION_SCHEMA_VERSION = 1

_TIMING_FIELDS = tuple(f.name for f in dataclass_fields(BusTiming))
_OP_VALUES = {op.value: op for op in BusOp}


class CharacterizationError(ValueError):
    """A characterization file is missing, unreadable, or schema-invalid."""


def _require_number(section: str, key: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CharacterizationError(
            f"[{section}] {key} must be a number, got {value!r}"
        )
    if value < 0:
        raise CharacterizationError(
            f"[{section}] {key} must be non-negative, got {value!r}"
        )
    return value


def _op_table(section: str, raw: Mapping[str, Any]) -> Dict[BusOp, float]:
    table: Dict[BusOp, float] = {}
    for key, value in raw.items():
        op = _OP_VALUES.get(str(key))
        if op is None:
            known = ", ".join(sorted(_OP_VALUES))
            raise CharacterizationError(
                f"[{section}] unknown bus op {key!r}; known ops: {known}"
            )
        table[op] = _require_number(section, key, value)
    return table


@dataclass(frozen=True)
class Characterization:
    """One hardware model: metadata, Table 1 timings, cycle and energy costs.

    ``source`` records where the data was loaded from (builtin name or
    file path) purely for display; it is **not** part of the content hash.
    """

    name: str
    version: str
    description: str = ""
    timing: BusTiming = field(default_factory=BusTiming)
    cycles: Mapping[BusOp, float] = field(default_factory=dict)
    energy_nj: Mapping[BusOp, float] = field(default_factory=dict)
    source: Optional[str] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        source: Optional[str] = None,
    ) -> "Characterization":
        """Validate a parsed TOML/CSV payload into a characterization."""
        if not isinstance(payload, Mapping):
            raise CharacterizationError("characterization must be a table")
        unknown = set(payload) - {"model", "table1", "cycles", "energy_nj"}
        if unknown:
            raise CharacterizationError(
                f"unknown sections: {', '.join(sorted(unknown))}"
            )
        model = payload.get("model")
        if not isinstance(model, Mapping):
            raise CharacterizationError("missing required [model] section")
        name = model.get("name")
        if not isinstance(name, str) or not name.strip():
            raise CharacterizationError("[model] name must be a non-empty string")
        version = model.get("version")
        if version is None:
            raise CharacterizationError("[model] version is required")
        schema = model.get("schema", CHARACTERIZATION_SCHEMA_VERSION)
        if schema != CHARACTERIZATION_SCHEMA_VERSION:
            raise CharacterizationError(
                f"unsupported schema {schema!r}; this version of repro reads "
                f"schema {CHARACTERIZATION_SCHEMA_VERSION}"
            )
        description = model.get("description", "")
        if not isinstance(description, str):
            raise CharacterizationError("[model] description must be a string")

        timing_raw = payload.get("table1", {})
        if not isinstance(timing_raw, Mapping):
            raise CharacterizationError("[table1] must be a table")
        unknown = set(timing_raw) - set(_TIMING_FIELDS)
        if unknown:
            raise CharacterizationError(
                f"[table1] unknown timings: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(_TIMING_FIELDS)}"
            )
        timing_kwargs = {
            key: int(_require_number("table1", key, value))
            for key, value in timing_raw.items()
        }
        timing = BusTiming(**timing_kwargs)

        cycles_raw = payload.get("cycles")
        if not isinstance(cycles_raw, Mapping) or not cycles_raw:
            raise CharacterizationError(
                "missing required [cycles] section (per-op bus cycle costs)"
            )
        cycles = _op_table("cycles", cycles_raw)

        energy_raw = payload.get("energy_nj", {})
        if not isinstance(energy_raw, Mapping):
            raise CharacterizationError("[energy_nj] must be a table")
        energy = _op_table("energy_nj", energy_raw)

        return cls(
            name=name.strip(),
            version=str(version),
            description=description,
            timing=timing,
            cycles=cycles,
            energy_nj=energy,
            source=source,
        )

    @classmethod
    def from_bus_model(
        cls,
        bus: BusCostModel,
        version: str = "1",
        description: str = "",
        energy_nj: Optional[Mapping[BusOp, float]] = None,
    ) -> "Characterization":
        """Characterize an existing cost model (e.g. a Section 6 network).

        This is the write path for what-if studies: derive a
        :class:`BusCostModel` in code once (say via
        :func:`~repro.interconnect.network.network_cost_model`), capture it
        as a characterization, :meth:`save` it, and from then on it is an
        ordinary data file the sweep axis can load.
        """
        return cls(
            name=bus.name,
            version=version,
            description=description,
            timing=bus.timing,
            cycles=dict(bus.cycles),
            energy_nj=dict(energy_nj if energy_nj is not None else bus.energy_nj),
            source=None,
        )

    # -- identity -------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The characterization as plain sectioned data (save/round-trip)."""
        data: Dict[str, Any] = {
            "model": {
                "name": self.name,
                "version": self.version,
                "schema": CHARACTERIZATION_SCHEMA_VERSION,
            },
            "table1": {
                key: getattr(self.timing, key) for key in _TIMING_FIELDS
            },
            "cycles": {
                op.value: self.cycles[op]
                for op in sorted(self.cycles, key=lambda o: o.value)
            },
        }
        if self.description:
            data["model"]["description"] = self.description
        if self.energy_nj:
            data["energy_nj"] = {
                op.value: self.energy_nj[op]
                for op in sorted(self.energy_nj, key=lambda o: o.value)
            }
        return data

    def content_hash(self) -> str:
        """SHA-256 of the canonical content (path/comments excluded).

        Numeric values are normalised through ``repr(float(...))`` so
        ``5`` and ``5.0`` are the same content; the hash changes exactly
        when a name, version, timing, cycle or energy value changes.
        """
        parts = [
            f"schema={CHARACTERIZATION_SCHEMA_VERSION}",
            f"name={self.name}",
            f"version={self.version}",
            f"description={self.description}",
        ]
        for key in _TIMING_FIELDS:
            parts.append(f"table1.{key}={repr(float(getattr(self.timing, key)))}")
        for op in sorted(self.cycles, key=lambda o: o.value):
            parts.append(f"cycles.{op.value}={repr(float(self.cycles[op]))}")
        for op in sorted(self.energy_nj, key=lambda o: o.value):
            parts.append(
                f"energy_nj.{op.value}={repr(float(self.energy_nj[op]))}"
            )
        token = "|".join(parts)
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:40]

    # -- views ----------------------------------------------------------------

    @property
    def has_energy(self) -> bool:
        return bool(self.energy_nj)

    def bus_model(self) -> BusCostModel:
        """The priced cost model this characterization describes."""
        return BusCostModel(
            name=self.name,
            cycles=dict(self.cycles),
            timing=self.timing,
            energy_nj=dict(self.energy_nj),
        )

    def table2_rows(self) -> Dict[str, float]:
        """This model's Table 2 column (for the ``models`` CLI verb)."""
        return self.bus_model().table2_rows()

    # -- serialisation --------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write this characterization as a TOML file (round-trips exactly)."""
        path = Path(path)
        lines = []
        for section, entries in self.payload().items():
            lines.append(f"[{section}]")
            for key, value in entries.items():
                if isinstance(value, str):
                    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
                    lines.append(f'{key} = "{escaped}"')
                else:
                    lines.append(f"{key} = {value!r}")
            lines.append("")
        path.write_text("\n".join(lines), encoding="utf-8")
        return path
