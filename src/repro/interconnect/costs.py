"""Cost accounting: from counted bus operations to the paper's metrics.

The paper's method deliberately separates *event frequencies* (one simulation
per protocol) from *hardware costs* (Section 4.1): "Since the choice of the
hardware model is independent of the event frequencies, we need just one
simulation run per protocol to compute the event frequencies, and we can
then vary costs for different hardware models."

:class:`BusOpCounts` is the simulation-side half: an additive tally of
primitive bus operations (plus the number of bus transactions, i.e.
references that used the bus at all).  :class:`CostSummary` is the
hardware-side half: cycles per reference under a given
:class:`~repro.interconnect.bus.BusCostModel`, broken down by Table 5
category, with the Section 5.1 fixed-overhead model available via
``cycles_per_reference_with_overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .bus import TABLE5_CATEGORY, BusCostModel, BusOp, Table5Category

__all__ = ["BusOpCounts", "CostSummary", "summarize_costs"]


class BusOpCounts:
    """Additive tally of primitive bus operations over a simulation run."""

    __slots__ = ("ops", "transactions", "references")

    def __init__(self) -> None:
        self.ops: Dict[BusOp, int] = {}
        #: number of references that performed at least one bus operation
        self.transactions: int = 0
        #: total references processed (instructions included)
        self.references: int = 0

    def add(self, op: BusOp, count: int = 1) -> None:
        if count:
            self.ops[op] = self.ops.get(op, 0) + count

    def merge(self, other: "BusOpCounts") -> "BusOpCounts":
        for op, count in other.ops.items():
            self.ops[op] = self.ops.get(op, 0) + count
        self.transactions += other.transactions
        self.references += other.references
        return self

    def __iadd__(self, other: "BusOpCounts") -> "BusOpCounts":
        return self.merge(other)

    def rate(self, op: BusOp) -> float:
        """Occurrences of ``op`` per reference."""
        if self.references == 0:
            return 0.0
        return self.ops.get(op, 0) / self.references

    @property
    def transactions_per_reference(self) -> float:
        if self.references == 0:
            return 0.0
        return self.transactions / self.references


@dataclass(frozen=True)
class CostSummary:
    """Bus cycles per memory reference under one bus model (Table 5 column)."""

    protocol: str
    bus: str
    cycles_per_reference: float
    by_category: Mapping[Table5Category, float]
    transactions_per_reference: float
    #: nanojoules per memory reference; ``None`` when the bus model carries
    #: no energy axis (parametric derivations, Section 6 network models)
    energy_per_reference: Optional[float] = None

    @property
    def cycles_per_transaction(self) -> float:
        """Average bus cycles per bus transaction (paper Figure 5)."""
        if self.transactions_per_reference == 0:
            return 0.0
        return self.cycles_per_reference / self.transactions_per_reference

    def cycles_per_reference_with_overhead(self, q: float) -> float:
        """Add ``q`` fixed bus cycles to every bus transaction (Section 5.1).

        The paper notes every transaction carries at least one extra cycle of
        cache access / bus controller / arbitration overhead; schemes with
        many cheap transactions (Dragon) are hurt more by this than schemes
        with fewer, larger ones.
        """
        if q < 0:
            raise ValueError(f"overhead q must be non-negative, got {q}")
        return self.cycles_per_reference + q * self.transactions_per_reference

    def category_fractions(self) -> Dict[Table5Category, float]:
        """Each category's share of the scheme's total cycles (Figure 4)."""
        total = self.cycles_per_reference
        if total == 0:
            return {category: 0.0 for category in self.by_category}
        return {
            category: cycles / total for category, cycles in self.by_category.items()
        }


def summarize_costs(
    protocol: str, counts: BusOpCounts, bus: BusCostModel
) -> CostSummary:
    """Weight counted bus ops by a bus model's cycle costs."""
    if counts.references == 0:
        raise ValueError("cannot summarize costs of an empty run")
    by_category: Dict[Table5Category, float] = {
        category: 0.0 for category in Table5Category
    }
    for op, count in counts.ops.items():
        by_category[TABLE5_CATEGORY[op]] += bus.cost_of(op) * count
    per_ref = {
        category: cycles / counts.references
        for category, cycles in by_category.items()
    }
    energy: Optional[float] = None
    if bus.has_energy:
        energy = bus.total_energy_nj(counts.ops) / counts.references
    return CostSummary(
        protocol=protocol,
        bus=bus.name,
        cycles_per_reference=sum(per_ref.values()),
        by_category=per_ref,
        transactions_per_reference=counts.transactions_per_reference,
        energy_per_reference=energy,
    )
