"""Column-packed traces: full-scale runs without per-record objects.

A full-length paper trace is ~3.2M references; as Python objects that is
hundreds of megabytes and a lot of allocator churn.  :class:`PackedTrace`
stores the same information as five NumPy columns (~45 MB at full scale),
iterates back into :class:`~repro.trace.record.TraceRecord` objects on
demand, and round-trips through a compressed ``.npz`` file — convenient for
generating a full-scale trace once and replaying it across many protocol
runs.

NumPy is an optional dependency of the library: importing this module
without it raises a clear error, and nothing else in the package depends
on it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

try:
    import numpy as _np
except ImportError as exc:  # pragma: no cover - environment without numpy
    raise ImportError(
        "repro.trace.packed requires numpy; install it or use the plain "
        "record iterators"
    ) from exc

from .record import AccessType, TraceRecord

__all__ = ["PackedTrace"]

PathLike = Union[str, Path]

_FLAG_SPIN = 0x1
_FLAG_OS = 0x2


def _as_column(name: str, values, dtype) -> "_np.ndarray":
    """Convert one column to its packed dtype, rejecting lossy narrowing.

    ``np.asarray(values, dtype=...)`` would silently wrap out-of-range
    values on some NumPy versions (a ``cpu`` of 65536 becoming 0) and raise
    an opaque ``OverflowError`` on others, and dtype *inference* on a plain
    list silently promotes mixed-magnitude integers to ``float64``
    (``[0, 2**63]`` loses low bits).  Validating here turns all of those
    into one clear ``ValueError`` at construction time and keeps every
    in-range integer exact.
    """
    info = _np.iinfo(dtype)

    def _out_of_range(lo, hi):
        return ValueError(
            f"{name} column value out of range for {_np.dtype(dtype).name}: "
            f"saw [{lo}, {hi}], representable [0, {int(info.max)}]"
        )

    if isinstance(values, _np.ndarray):
        if values.dtype == dtype:
            return values
        if values.size:
            if not _np.issubdtype(values.dtype, _np.integer):
                raise ValueError(
                    f"{name} column must hold integers, got dtype {values.dtype}"
                )
            lo, hi = int(values.min()), int(values.max())
            if lo < 0 or hi > int(info.max):
                raise _out_of_range(lo, hi)
        return values.astype(dtype)

    # Plain sequence: validate in Python so numpy's inference never sees it.
    checked = []
    for value in values:
        if not isinstance(value, (int, _np.integer)):
            raise ValueError(
                f"{name} column must hold integers, got {type(value).__name__}"
            )
        checked.append(int(value))
    if checked:
        lo, hi = min(checked), max(checked)
        if lo < 0 or hi > int(info.max):
            raise _out_of_range(lo, hi)
    return _np.asarray(checked, dtype=dtype)


class PackedTrace:
    """An immutable, column-oriented container of trace records."""

    __slots__ = ("cpu", "pid", "access", "address", "flags")

    def __init__(self, cpu, pid, access, address, flags) -> None:
        lengths = {len(cpu), len(pid), len(access), len(address), len(flags)}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        self.cpu = _as_column("cpu", cpu, _np.uint16)
        self.pid = _as_column("pid", pid, _np.uint32)
        self.access = _as_column("access", access, _np.uint8)
        self.address = _as_column("address", address, _np.uint64)
        self.flags = _as_column("flags", flags, _np.uint8)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "PackedTrace":
        cpu, pid, access, address, flags = [], [], [], [], []
        for record in records:
            cpu.append(record.cpu)
            pid.append(record.pid)
            access.append(int(record.access))
            address.append(record.address)
            flags.append(
                (_FLAG_SPIN if record.is_lock_spin else 0)
                | (_FLAG_OS if record.is_os else 0)
            )
        return cls(cpu, pid, access, address, flags)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cpu)

    def __iter__(self) -> Iterator[TraceRecord]:
        cpu, pid = self.cpu, self.pid
        access, address, flags = self.access, self.address, self.flags
        for index in range(len(cpu)):
            flag = int(flags[index])
            yield TraceRecord(
                cpu=int(cpu[index]),
                pid=int(pid[index]),
                access=AccessType(int(access[index])),
                address=int(address[index]),
                is_lock_spin=bool(flag & _FLAG_SPIN),
                is_os=bool(flag & _FLAG_OS),
            )

    def __getitem__(self, index) -> Union[TraceRecord, "PackedTrace"]:
        if isinstance(index, slice):
            return PackedTrace(
                self.cpu[index],
                self.pid[index],
                self.access[index],
                self.address[index],
                self.flags[index],
            )
        flag = int(self.flags[index])
        return TraceRecord(
            cpu=int(self.cpu[index]),
            pid=int(self.pid[index]),
            access=AccessType(int(self.access[index])),
            address=int(self.address[index]),
            is_lock_spin=bool(flag & _FLAG_SPIN),
            is_os=bool(flag & _FLAG_OS),
        )

    # -- vectorised statistics -------------------------------------------------

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the columns."""
        return sum(
            column.nbytes
            for column in (self.cpu, self.pid, self.access, self.address, self.flags)
        )

    def instruction_count(self) -> int:
        return int((self.access == int(AccessType.INSTR)).sum())

    def read_count(self) -> int:
        return int((self.access == int(AccessType.READ)).sum())

    def write_count(self) -> int:
        return int((self.access == int(AccessType.WRITE)).sum())

    def spin_count(self) -> int:
        return int((self.flags & _FLAG_SPIN).astype(bool).sum())

    def os_count(self) -> int:
        return int((self.flags & _FLAG_OS).astype(bool).sum())

    def distinct_data_blocks(self, block_size: int = 16) -> int:
        data = self.access != int(AccessType.INSTR)
        return len(_np.unique(self.address[data] // block_size))

    # -- persistence ------------------------------------------------------------

    def save(self, path: PathLike) -> None:
        """Write the columns to a compressed ``.npz`` file."""
        _np.savez_compressed(
            path,
            cpu=self.cpu,
            pid=self.pid,
            access=self.access,
            address=self.address,
            flags=self.flags,
        )

    @classmethod
    def load(cls, path: PathLike) -> "PackedTrace":
        with _np.load(path) as data:
            return cls(
                data["cpu"],
                data["pid"],
                data["access"],
                data["address"],
                data["flags"],
            )
