"""The parallel sweep engine: fan RunSpecs across workers, merge results.

One sweep executes a grid of :class:`~repro.runner.spec.RunSpec`s —
consulting the optional :class:`~repro.runner.cache.ResultCache` first,
fanning the misses over worker processes (``jobs > 1``) or running them
inline (``jobs == 1``) — and returns a :class:`SweepReport` carrying every
result plus the throughput and cache metrics.

Re-pricing (the paper's Section 4.1 method at sweep scale): cells whose
specs differ only in the ``characterization`` pricing axis share a
:meth:`~repro.runner.spec.RunSpec.base_cache_key` and therefore identical
counters, so only one of them — the leader — simulates; the rest are served
from its result, flagged :attr:`RunOutcome.repriced` and counted in the
``sweep.repriced`` metric.  Sweeping k characterization files costs exactly
one simulation per (protocol, trace, ...) configuration.  Results land in
the cache under both the full key and the base key, so a *later* sweep with
a brand-new characterization file re-prices from disk without simulating at
all.  See ``docs/characterization.md``.

Resilience (see ``docs/robustness.md``): cells execute one process per
attempt through :class:`~repro.resilience.executor.CellExecutor`, so a
cell that raises, hangs past ``cell_timeout`` (SIGKILLed by the parent) or
loses its worker to a crash becomes a structured
:class:`~repro.resilience.errors.RunError` rather than a hung or aborted
sweep.  Failed attempts are retried with exponential backoff and
deterministic jitter (:class:`~repro.resilience.retry.RetryPolicy`); a
cell that exhausts its budget either aborts the sweep
(``keep_going=False``, the historic fail-fast default, raising
:class:`~repro.resilience.errors.CellFailure`) or lands in
:attr:`SweepReport.failures` while the rest of the grid completes.  A
:class:`~repro.resilience.journal.SweepJournal` records every outcome for
crash-safe ``--resume``, SIGINT tears the pool down promptly and raises
:class:`~repro.resilience.errors.SweepInterrupted` with the flushed
partial results, and a seeded
:class:`~repro.resilience.faults.FaultPlan` can inject failures at every
seam for testing.

Observability: every sweep tallies into a
:class:`~repro.obs.metrics.MetricsRegistry` (wall time, cell timings,
cache traffic, ``sweep.failures``/``sweep.retries``/``sweep.timeouts``;
exposed as :attr:`SweepReport.registry` and via
:meth:`SweepReport.metrics_dict` for ``--metrics-json``), every executed
cell carries a :class:`~repro.obs.manifest.RunManifest` with its
provenance (failed cells carry the failure record in the manifest's
``error`` field), progress and heartbeat lines go through the structured
``repro.runner.sweep`` logger, and a ``probe_factory`` can attach a
per-reference :class:`~repro.obs.probe.ReferenceProbe` to each simulated
cell (probed sweeps run inline, since event streams cannot cross process
boundaries).

Distributed telemetry (see ``docs/observability.md``): registry snapshots
tallied *inside* worker subprocesses ride back on the executor's result
events and are folded into the sweep registry with
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so
:meth:`SweepReport.metrics_dict` reflects what workers actually did.  An
optional :class:`~repro.obs.telemetry.SpanRecorder` (``telemetry=``)
records the sweep's causal tree — ``sweep → cell → attempt → stage``
spans plus ``cache_hit``/``reprice``/``retry``/``timeout``/``fault``
markers — with worker-side spans joined across the process boundary via
:data:`~repro.obs.telemetry.SpanContext`.  On the heartbeat cadence
(``heartbeat_seconds``, env ``REPRO_HEARTBEAT_SECONDS``, ``0`` disables)
the loop also atomically publishes a status snapshot next to the journal
(or at ``status_path``) that the ``repro-coherence status`` verb renders
from a different process.  All of it is observer-only: counters stay
bit-identical with telemetry on, and with everything off the loop pays a
handful of ``is None`` checks.

Determinism contract: the outcome list is ordered exactly like the input
spec list regardless of worker scheduling, and each worker reconstructs its
trace from the spec's seed, so ``jobs=N`` produces bit-identical counters
to ``jobs=1``.  Only the metrics (timings, worker attribution) vary from
run to run, which is why :meth:`SweepReport.cell_table` excludes them and
the CLI routes them to stderr.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.comparison import ComparisonResult
from ..core.simulator import SimulationResult
from ..interconnect.bus import nonpipelined_bus, pipelined_bus
from ..obs.log import fields, get_logger
from ..obs.manifest import RunManifest, collect_manifest
from ..obs.metrics import MetricsRegistry
from ..obs.probe import ReferenceProbe
from ..obs.telemetry import SpanRecorder, write_status
from ..resilience.errors import CellFailure, RunError, SweepInterrupted
from ..resilience.executor import CellExecutor
from ..resilience.journal import JOURNAL_SUFFIX, SweepJournal
from ..resilience.retry import RetryPolicy
from .cache import ResultCache
from .spec import INFINITE_GEOMETRY, RunSpec

__all__ = ["RunOutcome", "SweepReport", "run_sweep"]

logger = get_logger("runner.sweep")

#: Hook called once per completed cell (cache hits in spec order first,
#: then simulated cells in completion order).
ProgressHook = Callable[["RunOutcome"], None]

#: Factory producing a per-cell probe for instrumented sweeps.
ProbeFactory = Callable[[RunSpec], Optional[ReferenceProbe]]

#: Default seconds between heartbeat lines / status snapshots while a sweep
#: runs; override per sweep with ``heartbeat_seconds`` (CLI
#: ``--heartbeat-seconds``) or process-wide with ``REPRO_HEARTBEAT_SECONDS``.
HEARTBEAT_SECONDS = 10.0

#: Environment override for the heartbeat cadence (``0`` disables).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_SECONDS"

#: Suffix of the status-snapshot file auto-derived from the journal path.
STATUS_SUFFIX = ".status.json"


def _resolve_heartbeat(heartbeat_seconds: Optional[float]) -> float:
    """Explicit argument, else ``$REPRO_HEARTBEAT_SECONDS``, else the default.

    ``0`` disables periodic heartbeats (status snapshots are then written
    only at sweep start and end); negative values are rejected.
    """
    if heartbeat_seconds is None:
        raw = os.environ.get(HEARTBEAT_ENV)
        if raw is None:
            return HEARTBEAT_SECONDS
        try:
            heartbeat_seconds = float(raw)
        except ValueError:
            raise ValueError(
                f"{HEARTBEAT_ENV} must be a number, got {raw!r}"
            ) from None
    interval = float(heartbeat_seconds)
    if interval < 0:
        raise ValueError(
            f"heartbeat interval must be >= 0 (0 disables), got {interval}"
        )
    return interval


@dataclass(frozen=True)
class RunOutcome:
    """One sweep cell: cache-served, executed, re-priced, or failed."""

    spec: RunSpec
    #: the simulated counters, or None when the cell failed
    result: Optional[SimulationResult]
    cached: bool
    #: simulation seconds (0.0 for cache hits)
    elapsed: float
    #: pid of the process that produced the result (or final failure)
    worker: int
    #: provenance of the execution (None when served from a pre-manifest cache)
    manifest: Optional[RunManifest] = None
    #: why the cell failed, across all attempts (None on success)
    error: Optional[RunError] = None
    #: True when the counters were simulated for a sibling cell differing
    #: only in characterization (same :meth:`RunSpec.base_cache_key`) —
    #: this cell paid for pricing, not for a simulation
    repriced: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def __post_init__(self) -> None:
        if (self.result is None) == (self.error is None):
            raise ValueError(
                "a RunOutcome carries exactly one of result or error"
            )


@dataclass(frozen=True)
class SweepReport:
    """Everything a sweep produced: results in spec order, plus metrics."""

    outcomes: Sequence[RunOutcome]
    wall_time: float
    jobs: int
    #: the sweep's metrics (wall/cell timers, cache counters); always set by
    #: :func:`run_sweep`, defaulted for hand-built reports in tests
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- counts ----------------------------------------------------------------

    @property
    def cells(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> Tuple[RunOutcome, ...]:
        """Cells that produced a result (cache-served or simulated)."""
        return tuple(outcome for outcome in self.outcomes if outcome.ok)

    @property
    def failures(self) -> Tuple[RunOutcome, ...]:
        """Cells that exhausted their attempts without a result."""
        return tuple(outcome for outcome in self.outcomes if not outcome.ok)

    @property
    def simulations(self) -> int:
        """Cells actually simulated to completion this run.

        Excludes cache hits *and* re-priced cells — the paper's
        one-run-many-models method means k characterizations of one
        configuration count as one simulation here.
        """
        return sum(
            1
            for outcome in self.outcomes
            if outcome.ok and not outcome.cached and not outcome.repriced
        )

    @property
    def repricings(self) -> int:
        """Cells served by re-weighting another cell's counters."""
        return sum(1 for outcome in self.outcomes if outcome.repriced)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def cache_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    @property
    def total_references(self) -> int:
        return sum(outcome.result.references for outcome in self.successes)

    @property
    def simulated_references(self) -> int:
        return sum(
            outcome.result.references
            for outcome in self.successes
            if not outcome.cached and not outcome.repriced
        )

    @property
    def refs_per_sec(self) -> float:
        """Simulation throughput: freshly simulated references per wall second."""
        if self.wall_time <= 0:
            return 0.0
        return self.simulated_references / self.wall_time

    def worker_timings(self) -> Dict[int, Tuple[int, float]]:
        """Per-worker (cells simulated, simulation seconds), keyed by pid."""
        timings: Dict[int, Tuple[int, float]] = {}
        for outcome in self.outcomes:
            if outcome.cached or outcome.repriced or not outcome.ok:
                continue
            cells, seconds = timings.get(outcome.worker, (0, 0.0))
            timings[outcome.worker] = (cells + 1, seconds + outcome.elapsed)
        return timings

    # -- views -----------------------------------------------------------------

    def comparison(self) -> ComparisonResult:
        """The sweep's results as a protocol x trace comparison.

        Requires the grid to collapse onto those two axes: exactly one
        result per (protocol, trace) cell and a complete cross product —
        the shape every paper table and figure consumes.
        """
        if self.failures:
            failed = [outcome.spec.cell_id() for outcome in self.failures]
            raise ValueError(
                f"grid has {len(failed)} failed cells ({', '.join(failed)}); "
                "a comparison needs every cell's result — retry the failures "
                "(e.g. sweep --resume) first"
            )
        protocols: List[str] = []
        traces: List[str] = []
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for outcome in self.outcomes:
            protocol, trace = outcome.spec.protocol, outcome.spec.trace
            if protocol not in results:
                protocols.append(protocol)
                results[protocol] = {}
            if trace not in traces:
                traces.append(trace)
            if trace in results[protocol]:
                raise ValueError(
                    f"grid has multiple results for ({protocol}, {trace}); "
                    "a comparison needs the sweep collapsed to one config "
                    "per (protocol, trace) cell"
                )
            results[protocol][trace] = outcome.result
        for protocol in protocols:
            missing = [t for t in traces if t not in results[protocol]]
            if missing:
                raise ValueError(
                    f"grid is not a full cross product: {protocol} lacks "
                    f"traces {missing}"
                )
        return ComparisonResult(
            protocols=tuple(protocols), traces=tuple(traces), results=results
        )

    def cell_table(self) -> str:
        """Deterministic per-cell summary (identical across jobs/cache runs)."""
        pipe, nonpipe = pipelined_bus(), nonpipelined_bus()
        header = (
            f"{'protocol':<13}{'trace':<7}{'block':>6}{'geometry':>10}"
            f"{'sharing':>10}{'refs':>10}"
            f"{'cyc/ref pipe':>14}{'cyc/ref nonp':>14}"
        )
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            spec, result = outcome.spec, outcome.result
            geometry = spec.geometry or INFINITE_GEOMETRY
            prefix = (
                f"{spec.protocol:<13}{spec.trace:<7}{spec.block_size:>6}"
                f"{geometry:>10}"
                f"{spec.sharing_model.value:>10}"
            )
            if outcome.ok:
                lines.append(
                    prefix
                    + f"{result.references:>10}"
                    f"{result.cycles_per_reference(pipe):>14.6f}"
                    f"{result.cycles_per_reference(nonpipe):>14.6f}"
                )
            else:
                lines.append(
                    prefix
                    + f"{'-':>10}{'FAILED':>14}{outcome.error.kind:>14}"
                )
        return "\n".join(lines)

    def pricing_table(self) -> str:
        """Per-cell pricing under each cell's own characterization.

        The characterization-axis companion to :meth:`cell_table`: one row
        per cell, priced by the cell's :meth:`~repro.runner.spec.RunSpec
        .bus_model` (pipelined default when the axis is unset), with the
        energy column shown for models that carry an ``[energy_nj]``
        section.  Deterministic across jobs/cache/re-pricing paths.
        """
        header = (
            f"{'protocol':<13}{'trace':<7}{'characterization':<24}"
            f"{'refs':>10}{'cyc/ref':>12}{'nJ/ref':>12}"
        )
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            spec = outcome.spec
            model = spec.characterization or "(default)"
            prefix = f"{spec.protocol:<13}{spec.trace:<7}{model:<24}"
            if not outcome.ok:
                lines.append(prefix + f"{'-':>10}{'FAILED':>12}{'-':>12}")
                continue
            summary = outcome.result.cost_summary(spec.bus_model())
            energy = summary.energy_per_reference
            lines.append(
                prefix
                + f"{outcome.result.references:>10}"
                f"{summary.cycles_per_reference:>12.6f}"
                + (f"{energy:>12.4f}" if energy is not None else f"{'-':>12}")
            )
        return "\n".join(lines)

    def failure_table(self) -> str:
        """Deterministic failure summary: cell, kind, attempts, error."""
        failures = self.failures
        if not failures:
            return "no failures"
        header = f"{'cell':<44}{'kind':<14}{'attempts':>9}  error"
        lines = [header, "-" * len(header)]
        for outcome in failures:
            error = outcome.error
            description = f"{error.exc_type}: {error.message}"
            if len(description) > 72:
                description = description[:69] + "..."
            lines.append(
                f"{outcome.spec.cell_id():<44}{error.kind:<14}"
                f"{error.attempts:>9}  {description}"
            )
        return "\n".join(lines)

    def render_metrics(self) -> str:
        """Human-readable throughput / cache metrics (non-deterministic)."""
        repriced = (
            f"{self.repricings} repriced, " if self.repricings else ""
        )
        lines = [
            f"sweep: {self.cells} cells ({self.simulations} simulated, "
            f"{repriced}"
            f"{self.cache_hits} cached, {len(self.failures)} failed) "
            f"in {self.wall_time:.2f}s wall, jobs={self.jobs}",
            f"refs: {self.total_references:,} total, "
            f"{self.simulated_references:,} simulated, "
            f"{self.refs_per_sec:,.0f} refs/sec",
            f"cache: {self.cache_hits} hits, "
            f"{self.cache_hit_rate:.1%} hit rate",
        ]
        for worker, (cells, seconds) in sorted(self.worker_timings().items()):
            lines.append(
                f"worker {worker}: {cells} cells, {seconds:.2f}s simulation"
            )
        return "\n".join(lines)

    def metrics_dict(self) -> Dict[str, object]:
        """The sweep's metrics as JSON-able data (``--metrics-json``)."""
        return {
            "cells": self.cells,
            "simulated": self.simulations,
            "repriced": self.repricings,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "failures": [
                {"cell": outcome.spec.cell_id(), **outcome.error.to_dict()}
                for outcome in self.failures
            ],
            "jobs": self.jobs,
            "wall_s": self.wall_time,
            "total_references": self.total_references,
            "simulated_references": self.simulated_references,
            "refs_per_sec": self.refs_per_sec,
            "workers": {
                str(pid): {"cells": cells, "simulation_s": seconds}
                for pid, (cells, seconds) in sorted(self.worker_timings().items())
            },
            "registry": self.registry.as_dict(),
        }


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressHook] = None,
    probe_factory: Optional[ProbeFactory] = None,
    registry: Optional[MetricsRegistry] = None,
    retry: Union[int, RetryPolicy] = 0,
    cell_timeout: Optional[float] = None,
    keep_going: bool = False,
    max_failures: Optional[int] = None,
    faults=None,
    journal: Optional[SweepJournal] = None,
    resume: bool = False,
    telemetry: Optional[SpanRecorder] = None,
    heartbeat_seconds: Optional[float] = None,
    status_path: Optional[Union[str, Path]] = None,
) -> SweepReport:
    """Execute a sweep grid, optionally in parallel and through a cache.

    Cache lookups happen up front in the parent; only misses are dispatched
    to workers, and their results (plus run manifests) are written back to
    the cache by the parent (one writer, no cross-process races on fresh
    entries).  The ``progress`` hook fires once per cell — cache hits in
    spec order first, then executed cells as they complete.
    ``probe_factory``, when given, produces a per-reference probe for every
    simulated cell and forces inline execution (probes cannot stream across
    processes).  ``registry`` collects the sweep's metrics; a fresh one is
    created when omitted and either way it rides on the returned report.

    Resilience knobs:

    * ``retry`` — extra attempts per failed cell: an int, or a full
      :class:`RetryPolicy` to control backoff.  Backoff jitter is hashed
      from the cell's cache key, never wall-clock random.
    * ``cell_timeout`` — per-cell wall-clock budget in seconds; overruns
      are SIGKILLed and count as a (retryable) ``timeout`` failure.
      Enforcing it requires a child process, so it applies even at
      ``jobs=1`` (probed sweeps excepted).
    * ``keep_going`` / ``max_failures`` — with ``keep_going=False`` (the
      default) the first cell to exhaust its attempts raises
      :class:`CellFailure`; with ``keep_going=True`` failures become
      outcomes in :attr:`SweepReport.failures` until more than
      ``max_failures`` of them accumulate.
    * ``journal`` / ``resume`` — a :class:`SweepJournal` records every
      outcome as it lands; ``resume=True`` additionally reports what a
      prior journal already covered (journaled successes are served from
      the cache, so only failed/missing cells re-simulate).
    * ``faults`` — a :class:`~repro.resilience.faults.FaultPlan` for
      deterministic fault injection (tests and CI soak runs).

    Telemetry knobs (all observer-only; counters are bit-identical with
    them on or off):

    * ``telemetry`` — a :class:`~repro.obs.telemetry.SpanRecorder` that
      collects the sweep's span tree, including worker-side spans shipped
      back over the result pipe.  ``None`` (the default) records nothing.
    * ``heartbeat_seconds`` — seconds between heartbeat log lines and
      status snapshots; defaults to ``REPRO_HEARTBEAT_SECONDS`` or
      :data:`HEARTBEAT_SECONDS`, and ``0`` disables the cadence.
    * ``status_path`` — where to publish the atomic status snapshot; when
      omitted it is derived from the journal path
      (``<sweep-key>.status.json``), and with neither no snapshot is
      written.  Snapshot write failures are logged and disable further
      snapshots; they never fail the sweep.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("at least one RunSpec is required")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
    if max_failures is not None and max_failures < 0:
        raise ValueError(f"max_failures must be >= 0, got {max_failures}")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal")
    policy = retry if isinstance(retry, RetryPolicy) else RetryPolicy(int(retry))
    registry = registry if registry is not None else MetricsRegistry()
    beat_every = _resolve_heartbeat(heartbeat_seconds)
    probed = probe_factory is not None
    if probed and jobs > 1:
        logger.warning(
            "probed sweeps run inline; ignoring --jobs",
            extra=fields(jobs=jobs),
        )
    if probed and cell_timeout is not None:
        logger.warning(
            "probed sweeps run inline; cell timeouts are not enforced",
            extra=fields(cell_timeout=cell_timeout),
        )
    needs_processes = not probed and (
        cell_timeout is not None
        or (faults is not None and faults.has_worker_kills)
    )
    use_executor = not probed and (jobs > 1 or needs_processes)

    keys = [spec.cache_key() for spec in specs]
    base_keys = [spec.base_cache_key() for spec in specs]
    cell_ids = [spec.cell_id() for spec in specs]
    register = getattr(cache, "register_cell", None)
    if register is not None:
        for key, cell in zip(keys, cell_ids):
            register(key, cell)

    journaled_ok: set = set()
    if resume:
        prior = journal.load()
        journaled_ok = {
            key for key, record in prior.items() if record.get("status") == "ok"
        }
        logger.info(
            "resuming sweep from journal",
            extra=fields(
                journal=str(journal.path),
                journaled_ok=len(journaled_ok & set(keys)),
                journaled_failed=sum(
                    1 for r in prior.values() if r.get("status") == "failed"
                ),
                cells=len(specs),
            ),
        )
    if journal is not None:
        journal.record_start(len(specs), jobs)

    sweep_id = SweepJournal.sweep_key(keys)
    status_file: Optional[Path] = (
        Path(status_path) if status_path is not None else None
    )
    if status_file is None and journal is not None:
        stem = journal.path.name
        if stem.endswith(JOURNAL_SUFFIX):
            stem = stem[: -len(JOURNAL_SUFFIX)]
        status_file = journal.path.with_name(f"{stem}{STATUS_SUFFIX}")

    wall = registry.timer("sweep.wall_seconds")
    wall_before = wall.total_seconds
    registry.gauge("sweep.jobs").set(jobs)
    registry.counter("sweep.cells").inc(len(specs))
    logger.info(
        "sweep started",
        extra=fields(
            cells=len(specs), jobs=jobs, cache=cache is not None,
            probed=probed, retries=policy.retries,
            cell_timeout=cell_timeout, keep_going=keep_going,
            resume=resume, faults=faults is not None,
        ),
    )

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[int] = []
    #: leader index -> pending cells sharing its base_cache_key, which will
    #: be served by re-pricing the leader's counters (Section 4.1: event
    #: frequencies are independent of hardware costs)
    followers: Dict[int, List[int]] = {}
    done = 0
    failed_cells = 0
    sweep_started = time.perf_counter()
    last_beat = sweep_started
    executor: Optional[CellExecutor] = None
    status_healthy = True
    cell_spans: Dict[int, object] = {}
    sweep_span = (
        telemetry.begin(
            f"sweep {sweep_id[:12]}", kind="sweep",
            sweep_id=sweep_id, cells=len(specs), jobs=jobs,
        )
        if telemetry is not None
        else None
    )

    def _publish_status(state: str) -> None:
        """Atomically refresh the status snapshot; degrade on any OSError."""
        nonlocal status_healthy
        if status_file is None or not status_healthy:
            return
        finished = [o for o in outcomes if o is not None]
        ok = sum(1 for o in finished if o.ok)
        simulated_refs = sum(
            o.result.references
            for o in finished
            if o.ok and not o.cached and not o.repriced
        )
        running = executor.in_flight if executor is not None else 0
        elapsed = time.perf_counter() - sweep_started
        cell_hist = registry.histogram("sweep.cell_seconds")
        remaining = max(0, len(specs) - done)
        eta = (
            remaining * cell_hist.mean / max(1, jobs)
            if state == "running" and cell_hist.count and remaining
            else None
        )
        try:
            write_status(
                status_file,
                {
                    "state": state,
                    "ts": time.time(),
                    "pid": os.getpid(),
                    "sweep_id": sweep_id,
                    "cells": len(specs),
                    "done": done,
                    "ok": ok,
                    "failed": len(finished) - ok,
                    "running": running,
                    "pending": max(0, len(specs) - done - running),
                    "simulated": registry.counter("sweep.simulated").value,
                    "cache_hits": registry.counter("sweep.cache_hits").value,
                    "repriced": registry.counter("sweep.repriced").value,
                    "retries": registry.counter("sweep.retries").value,
                    "timeouts": registry.counter("sweep.timeouts").value,
                    "references": sum(
                        o.result.references for o in finished if o.ok
                    ),
                    "refs_per_sec": (
                        simulated_refs / elapsed if elapsed > 0 else 0.0
                    ),
                    "eta_s": eta,
                    "wall_s": elapsed,
                    "jobs": jobs,
                    "journal": str(journal.path) if journal is not None else None,
                },
            )
        except OSError as exc:
            status_healthy = False
            logger.warning(
                "status snapshot write failed; disabling snapshots",
                extra=fields(path=str(status_file), error=str(exc)),
            )

    def _begin_cell_span(index: int):
        """The cell's open span, created on first use (telemetry only)."""
        span = cell_spans.get(index)
        if span is None and telemetry is not None:
            span = telemetry.begin(
                cell_ids[index], kind="cell", parent=sweep_span, tid=index + 1,
            )
            cell_spans[index] = span
        return span

    def _end_cell_span(index: int, **attributes: object) -> None:
        span = cell_spans.pop(index, None)
        if span is not None:
            span.end(**attributes)

    def _span_context(index: int):
        """What a worker needs to hang its spans under this cell's span."""
        if telemetry is None:
            return None
        return (telemetry.trace_id, _begin_cell_span(index).span_id)

    def _close_telemetry(state: str) -> None:
        """End every open span (interrupt/failure leaves cells open)."""
        if telemetry is None:
            return
        for index in list(cell_spans):
            _end_cell_span(index, status=state)
        if sweep_span is not None:
            sweep_span.end(status=state)

    def _heartbeat() -> None:
        nonlocal last_beat
        if beat_every <= 0:
            return
        now = time.perf_counter()
        if now - last_beat >= beat_every:
            last_beat = now
            finished = [o for o in outcomes if o is not None]
            logger.info(
                "sweep progress",
                extra=fields(
                    done=done,
                    total=len(specs),
                    simulated=sum(
                        1 for o in finished if o.ok and not o.cached
                    ),
                    failed=sum(1 for o in finished if not o.ok),
                    references=sum(
                        o.result.references for o in finished if o.ok
                    ),
                ),
            )
            _publish_status("running")

    def _journal_cell(
        index: int,
        status: str,
        cached: bool = False,
        attempts: int = 1,
        elapsed: float = 0.0,
        error: Optional[RunError] = None,
    ) -> None:
        if journal is not None:
            journal.record_cell(
                keys[index], cell_ids[index], status,
                cached=cached, attempts=attempts, elapsed=elapsed, error=error,
            )

    def _reprice(index: int, result: SimulationResult, worker: int) -> None:
        """Serve a pending cell from a sibling's freshly simulated counters."""
        nonlocal done
        manifest = collect_manifest(
            specs[index].as_dict(), keys[index], 0.0, worker_pid=worker
        )
        outcome = RunOutcome(
            spec=specs[index],
            result=result,
            cached=False,
            elapsed=0.0,
            worker=worker,
            manifest=manifest,
            repriced=True,
        )
        outcomes[index] = outcome
        done += 1
        registry.counter("sweep.repriced").inc()
        if telemetry is not None:
            telemetry.event(
                cell_ids[index], kind="reprice", parent=sweep_span,
                tid=index + 1, worker=worker,
            )
        if cache is not None:
            cache.put(keys[index], result, manifest=manifest)
        _journal_cell(index, "ok")
        if progress is not None:
            progress(outcome)

    def _complete(
        index: int,
        payload: Tuple[SimulationResult, float, int, RunManifest],
        attempt: int = 1,
    ) -> None:
        nonlocal done
        result, elapsed, worker, manifest = payload
        outcome = RunOutcome(
            spec=specs[index],
            result=result,
            cached=False,
            elapsed=elapsed,
            worker=worker,
            manifest=manifest,
        )
        outcomes[index] = outcome
        done += 1
        registry.counter("sweep.simulated").inc()
        registry.histogram("sweep.cell_seconds").observe(elapsed)
        _end_cell_span(
            index, status="ok", attempts=attempt, elapsed_s=elapsed,
            worker=worker,
        )
        if cache is not None:
            cache.put(keys[index], result, manifest=manifest)
            if base_keys[index] != keys[index]:
                # Also store under the characterization-free identity, so a
                # future sweep with a brand-new characterization file can
                # re-price this simulation instead of re-running it.
                cache.put(base_keys[index], result, manifest=manifest)
        _journal_cell(index, "ok", attempts=attempt, elapsed=elapsed)
        logger.debug(
            "cell simulated",
            extra=fields(
                protocol=specs[index].protocol,
                trace=specs[index].trace,
                elapsed_s=round(elapsed, 4),
                worker=worker,
                attempt=attempt,
            ),
        )
        if progress is not None:
            progress(outcome)
        for follower in followers.get(index, ()):
            _reprice(follower, result, worker)
        _heartbeat()
        if faults is not None and faults.should_interrupt(
            cell_ids[index], attempt
        ):
            raise KeyboardInterrupt  # injected SIGINT (fault harness)

    def _fail_one(index: int, error: RunError, elapsed: float) -> None:
        nonlocal done, failed_cells
        spec = specs[index]
        manifest = collect_manifest(
            spec.as_dict(), keys[index], elapsed,
            worker_pid=error.worker, error=error.to_dict(),
        )
        outcome = RunOutcome(
            spec=spec,
            result=None,
            cached=False,
            elapsed=elapsed,
            worker=error.worker,
            manifest=manifest,
            error=error,
        )
        outcomes[index] = outcome
        done += 1
        failed_cells += 1
        registry.counter("sweep.failures").inc()
        _end_cell_span(
            index, status="failed", kind=error.kind, attempts=error.attempts,
        )
        _journal_cell(
            index, "failed",
            attempts=error.attempts, elapsed=elapsed, error=error,
        )
        logger.error(
            "cell failed",
            extra=fields(
                cell=cell_ids[index], kind=error.kind,
                error=f"{error.exc_type}: {error.message}",
                attempts=error.attempts, worker=error.worker,
            ),
        )
        if progress is not None:
            progress(outcome)

    def _fail(index: int, error: RunError) -> None:
        _fail_one(index, error, error.elapsed)
        # Cells waiting to be re-priced from this simulation fail with it.
        for follower in followers.get(index, ()):
            _fail_one(follower, error, 0.0)
        _heartbeat()
        if not keep_going:
            raise CellFailure(cell_ids[index], error)
        if max_failures is not None and failed_cells > max_failures:
            raise CellFailure(
                cell_ids[index], error,
                reason=f"more than max_failures={max_failures} cells failed",
            )

    def _retry_or_fail(
        index: int,
        attempt: int,
        kind: str,
        exc_type: str,
        message: str,
        trace_back: Optional[str],
        worker: int,
        elapsed: float,
    ) -> Optional[float]:
        """Backoff seconds when a retry is granted; None after recording failure."""
        if kind == "timeout":
            registry.counter("sweep.timeouts").inc()
        if telemetry is not None:
            marker_parent = cell_spans.get(index) or sweep_span
            if kind == "timeout":
                telemetry.event(
                    cell_ids[index], kind="timeout", parent=marker_parent,
                    tid=index + 1, attempt=attempt, elapsed_s=elapsed,
                )
            if exc_type == "InjectedFault":
                telemetry.event(
                    cell_ids[index], kind="fault", parent=marker_parent,
                    tid=index + 1, attempt=attempt,
                )
        if attempt < policy.max_attempts:
            registry.counter("sweep.retries").inc()
            delay = policy.delay(keys[index], attempt)
            if telemetry is not None:
                telemetry.event(
                    cell_ids[index], kind="retry",
                    parent=cell_spans.get(index) or sweep_span,
                    tid=index + 1, attempt=attempt, backoff_s=delay,
                    failure=kind,
                )
            logger.warning(
                "cell attempt failed; retrying",
                extra=fields(
                    cell=cell_ids[index], kind=kind, attempt=attempt,
                    max_attempts=policy.max_attempts,
                    backoff_s=round(delay, 3),
                    error=f"{exc_type}: {message}",
                ),
            )
            return delay
        _fail(
            index,
            RunError(
                kind=kind, exc_type=exc_type, message=message,
                attempts=attempt, worker=worker, elapsed=elapsed,
                traceback=trace_back,
            ),
        )
        return None

    def _scan_cache() -> None:
        nonlocal done
        for index, spec in enumerate(specs):
            cached_result = cache.get(keys[index]) if cache is not None else None
            via_base = False
            if (
                cached_result is None
                and cache is not None
                and base_keys[index] != keys[index]
            ):
                # Re-pricing across sweeps: the exact pricing is cold, but
                # the characterization-free simulation is warm — serve it
                # (the counters are identical by construction) and write it
                # back under the full key so next time is a direct hit.
                cached_result = cache.get(base_keys[index])
                via_base = cached_result is not None
            if cached_result is not None:
                if via_base:
                    manifest = collect_manifest(
                        spec.as_dict(), keys[index], 0.0
                    )
                    cache.put(keys[index], cached_result, manifest=manifest)
                    registry.counter("sweep.repriced").inc()
                else:
                    manifest = cache.get_manifest(keys[index])
                outcome = RunOutcome(
                    spec=spec,
                    result=cached_result,
                    cached=True,
                    elapsed=0.0,
                    worker=os.getpid(),
                    manifest=manifest,
                    repriced=via_base,
                )
                outcomes[index] = outcome
                done += 1
                registry.counter("sweep.cache_hits").inc()
                if telemetry is not None:
                    telemetry.event(
                        cell_ids[index], kind="cache_hit", parent=sweep_span,
                        tid=index + 1, via_base=via_base,
                    )
                _journal_cell(index, "ok", cached=True)
                if progress is not None:
                    progress(outcome)
                _heartbeat()
            else:
                if resume and keys[index] in journaled_ok:
                    logger.warning(
                        "journaled success missing from cache; re-simulating",
                        extra=fields(cell=cell_ids[index]),
                    )
                pending.append(index)

    def _group_repricing() -> None:
        """Collapse pending cells sharing a simulation onto one leader.

        Cells whose specs differ only in ``characterization`` share a
        :meth:`~repro.runner.spec.RunSpec.base_cache_key` and, by the
        paper's Section 4.1 argument, identical counters — so only the
        first (the leader) simulates and the rest are re-priced from its
        result.  Probed sweeps skip this: a probe streams the cell's own
        per-reference events, so every cell must actually run.
        """
        if probed:
            return
        leaders: Dict[str, int] = {}
        kept: List[int] = []
        for index in pending:
            leader = leaders.get(base_keys[index])
            if leader is None:
                leaders[base_keys[index]] = index
                kept.append(index)
            else:
                followers.setdefault(leader, []).append(index)
        if followers:
            pending[:] = kept
            logger.info(
                "re-pricing collapsed sweep cells",
                extra=fields(
                    simulate=len(kept),
                    repriced=sum(len(cells) for cells in followers.values()),
                ),
            )

    def _run_inline() -> None:
        for index in pending:
            attempt = 1
            cell_span = _begin_cell_span(index)
            while True:
                probe = probe_factory(specs[index]) if probed else None
                attempt_span = (
                    telemetry.begin(
                        f"attempt {attempt}", kind="attempt", parent=cell_span,
                        tid=index + 1, attempt=attempt, cell=cell_ids[index],
                    )
                    if telemetry is not None
                    else None
                )
                start = time.perf_counter()
                try:
                    if faults is not None:
                        faults.fire_worker_faults(
                            cell_ids[index], attempt, allow_kill=False
                        )
                    result = specs[index].run(probe=probe)
                except KeyboardInterrupt:
                    if attempt_span is not None:
                        attempt_span.end(status="interrupted")
                    raise
                except Exception as exc:
                    elapsed = time.perf_counter() - start
                    if attempt_span is not None:
                        attempt_span.end(
                            status="error", error=type(exc).__name__
                        )
                    delay = _retry_or_fail(
                        index, attempt, "exception", type(exc).__name__,
                        str(exc), traceback_module.format_exc(),
                        os.getpid(), elapsed,
                    )
                    if delay is None:
                        break
                    time.sleep(delay)
                    attempt += 1
                    continue
                elapsed = time.perf_counter() - start
                if attempt_span is not None:
                    attempt_span.end(status="ok")
                manifest = collect_manifest(
                    specs[index].as_dict(), keys[index], elapsed
                )
                _complete(
                    index, (result, elapsed, os.getpid(), manifest), attempt
                )
                break

    def _run_executor() -> None:
        nonlocal executor
        pool_size = max(1, min(jobs, len(pending)))
        executor = CellExecutor(
            jobs=pool_size, timeout=cell_timeout, faults=faults
        )
        for index in pending:
            executor.submit(
                index, specs[index], attempt=1,
                span_context=_span_context(index),
            )
        while executor.active:
            for event in executor.poll():
                # Worker-side telemetry rides on every event, success or
                # failure — a retried attempt's metrics/spans still count.
                if event.metrics:
                    registry.merge_snapshot(event.metrics)
                if telemetry is not None and event.spans:
                    telemetry.ingest(event.spans)
                if event.ok:
                    _complete(event.index, event.payload, event.attempt)
                else:
                    delay = _retry_or_fail(
                        event.index, event.attempt, event.kind,
                        event.exc_type, event.message, event.traceback,
                        event.worker, event.elapsed,
                    )
                    if delay is not None:
                        executor.submit(
                            event.index, specs[event.index],
                            event.attempt + 1, delay,
                            span_context=_span_context(event.index),
                        )
            _heartbeat()

    def _finished_counts() -> Tuple[int, int]:
        finished = [o for o in outcomes if o is not None]
        ok = sum(1 for o in finished if o.ok)
        return ok, len(finished) - ok

    try:
        _publish_status("running")
        with wall.time():
            _scan_cache()
            _group_repricing()
            if pending:
                if use_executor:
                    _run_executor()
                else:
                    _run_inline()
    except KeyboardInterrupt:
        if executor is not None:
            executor.abort()
        _close_telemetry("interrupted")
        ok, failed = _finished_counts()
        if journal is not None:
            journal.record_end("interrupted", ok, failed)
        _publish_status("interrupted")
        partial = SweepReport(
            outcomes=tuple(o for o in outcomes if o is not None),
            wall_time=wall.total_seconds - wall_before,
            jobs=jobs,
            registry=registry,
        )
        logger.warning(
            "sweep interrupted; completed cells are flushed",
            extra=fields(completed=ok + failed, total=len(specs)),
        )
        raise SweepInterrupted(partial, len(specs)) from None
    except CellFailure:
        if executor is not None:
            executor.abort()
        _close_telemetry("failed")
        ok, failed = _finished_counts()
        if journal is not None:
            journal.record_end("failed", ok, failed)
        _publish_status("failed")
        raise

    wall_time = wall.total_seconds - wall_before
    _close_telemetry("finished")
    report = SweepReport(
        outcomes=tuple(outcomes),
        wall_time=wall_time,
        jobs=jobs,
        registry=registry,
    )
    if journal is not None:
        journal.record_end(
            "finished", len(report.successes), len(report.failures)
        )
    registry.gauge("sweep.refs_per_sec").set(report.refs_per_sec)
    _publish_status("finished")
    logger.info(
        "sweep finished",
        extra=fields(
            cells=report.cells,
            simulated=report.simulations,
            cache_hits=report.cache_hits,
            failures=len(report.failures),
            wall_s=round(wall_time, 3),
            refs_per_sec=round(report.refs_per_sec),
        ),
    )
    return report
