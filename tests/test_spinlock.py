"""Unit tests for the Section 5.2 spin-lock experiment."""

import pytest

from conftest import record
from repro.analysis.spinlock import spin_lock_impact


def _trace_with_spins():
    """Two caches ping-ponging a lock word via spin reads, plus some
    unshared background work.

    Each spinner first touches the lock word with a regular read (the
    initial test of the acquire path), so under Dir0B every subsequent spin
    read is a cache hit and their exclusion changes nothing.
    """
    records = [
        record(cpu=0, kind="r", address=0),
        record(cpu=1, kind="r", address=0),
    ]
    for i in range(60):
        records.append(record(cpu=i % 2, kind="r", address=0, spin=True))
    for i in range(20):
        records.append(record(cpu=2, kind="r", address=16 * (1 + i % 5)))
        records.append(record(cpu=2, kind="w", address=16 * (1 + i % 5)))
    return records


@pytest.fixture(scope="module")
def impacts():
    trace = _trace_with_spins()
    factories = {"T": lambda: iter(list(trace))}
    return spin_lock_impact(factories, schemes=("dir1nb", "dir0b"))


class TestSpinLockImpact:
    def test_dir1nb_improves_dramatically(self, impacts):
        impact = impacts["dir1nb"]
        assert impact.without_spins < impact.with_spins
        assert impact.improvement_factor > 2.0

    def test_dir0b_essentially_unchanged(self, impacts):
        """Spin reads hit in the spinner's own cache under Dir0B, so
        excluding them changes (almost) nothing once normalised to the
        original reference count."""
        impact = impacts["dir0b"]
        assert impact.without_spins == pytest.approx(
            impact.with_spins, rel=0.25
        )

    def test_labels_are_presentation_names(self, impacts):
        assert impacts["dir1nb"].scheme == "Dir1NB"

    def test_render(self, impacts):
        text = impacts["dir1nb"].render()
        assert "cycles/ref" in text and "Dir1NB" in text
