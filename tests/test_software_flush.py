"""Unit tests for the software flush-based consistency scheme."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.protocols.directory.dir1nb import Dir1NB
from repro.protocols.software_flush import SoftwareFlush
from repro.protocols.events import Event
from repro.trace.record import AccessType


@pytest.fixture
def proto():
    return SoftwareFlush(4)


class TestSingleCopySemantics:
    def test_at_most_one_holder(self, proto):
        rng = random.Random(3)
        for _ in range(2000):
            block = rng.randrange(20)
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                block,
            )
            assert proto.sharing.holder_count(block) <= 1

    def test_no_hardware_invalidations_ever(self, proto):
        rng = random.Random(5)
        for _ in range(2000):
            outcome = proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(20),
            )
            assert outcome.op_count(BusOp.INVALIDATE) == 0
            assert outcome.op_count(BusOp.BROADCAST_INVALIDATE) == 0

    def test_no_snarfing_dirty_handoff_costs_two_transactions(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        # Write-back through memory, then a fresh memory fetch: 4 + 5 = 9
        # pipelined cycles (Dir1NB's hardware handoff takes 6).
        assert dict(miss.ops) == {BusOp.WRITE_BACK: 1, BusOp.MEM_ACCESS: 1}

    def test_events_match_dir1nb(self):
        """The paper's claim: software flushing behaves like Dir1NB."""
        rng = random.Random(9)
        a, b = SoftwareFlush(4), Dir1NB(4)
        for _ in range(3000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(25)
            assert a.access(cache, access, block).event is b.access(
                cache, access, block
            ).event

    def test_costs_at_least_dir1nb_under_spin_ping_pong(self):
        """Software flushing is Dir1NB without snarfing: lock ping-pong is
        at least as expensive."""
        bus = pipelined_bus()
        # Alternating read/write pattern on one hot block.
        ops = []
        rng = random.Random(13)
        for _ in range(400):
            ops.append((rng.randrange(2), rng.choice("rw"), 7))
        soft_cost = sum(
            sum(bus.cost_of(k) * n for k, n in outcome.ops)
            for outcome in run_ops(SoftwareFlush(4), ops)
        )
        hw_cost = sum(
            sum(bus.cost_of(k) * n for k, n in outcome.ops)
            for outcome in run_ops(Dir1NB(4), ops)
        )
        assert soft_cost >= hw_cost

    def test_no_directory_storage(self):
        assert SoftwareFlush.directory_bits_per_block(1024) == 0
