#!/usr/bin/env python3
"""Validate a Chrome-trace-format JSON file (as ``--emit-trace`` writes).

Checks the structural contract Perfetto / chrome://tracing rely on —
JSON object with a ``traceEvents`` list; every complete (``ph: "X"``)
event carries ``name``/``ts``/``dur``/``pid``/``tid`` with sane types;
metadata (``ph: "M"``) events name each pid exactly once — plus the
conventions this package's :class:`~repro.obs.probe.ChromeTraceSink`
guarantees: non-negative integer timestamps (reference indices, or
microseconds for span traces), non-negative durations (priced bus
cycles, or span microseconds), every slice's pid declared by a
``process_name`` metadata event, and ``cat`` — when present (span traces
set it to the span kind) — a non-empty string.

Span traces (``--emit-spans``) and per-reference traces (``--emit-trace``)
share this format, so the same validator covers both; the summary counts
slices that carry span ids.

Usage::

    python tools/validate_trace.py trace.json [trace2.json ...]

Exits 0 and prints a per-file summary when every file validates, exits 1
with a diagnostic on the first violation.  Standalone on purpose (no
repro import): CI runs it against CLI output as an end-to-end check.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Keys every complete ("X") event must carry.
REQUIRED_SLICE_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class TraceError(Exception):
    """A violation of the Chrome-trace contract, with event context."""


def validate_trace(path: Path) -> str:
    """Validate one trace file; returns a one-line summary or raises."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise TraceError(f"not valid JSON: {error}") from None

    if not isinstance(document, dict) or "traceEvents" not in document:
        raise TraceError('top level must be an object with "traceEvents"')
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise TraceError('"traceEvents" must be a list')

    named_pids = set()
    slices = 0
    span_slices = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "process_name":
                continue
            pid = event.get("pid")
            if not isinstance(pid, int):
                raise TraceError(f"metadata event {index} has non-int pid")
            if pid in named_pids:
                raise TraceError(f"pid {pid} named twice (event {index})")
            label = event.get("args", {}).get("name")
            if not isinstance(label, str) or not label:
                raise TraceError(f"metadata event {index} lacks args.name")
            named_pids.add(pid)
        elif phase == "X":
            slices += 1
            missing = [key for key in REQUIRED_SLICE_KEYS if key not in event]
            if missing:
                raise TraceError(f"slice {index} missing keys {missing}")
            if not isinstance(event["name"], str) or not event["name"]:
                raise TraceError(f"slice {index} has empty name")
            ts, dur = event["ts"], event["dur"]
            if not isinstance(ts, int) or ts < 0:
                raise TraceError(f"slice {index} ts must be a non-negative int")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceError(f"slice {index} dur must be non-negative")
            if not isinstance(event["pid"], int) or not isinstance(
                event["tid"], int
            ):
                raise TraceError(f"slice {index} pid/tid must be ints")
            if event["pid"] not in named_pids:
                raise TraceError(
                    f"slice {index} pid {event['pid']} has no process_name "
                    "metadata (cell tracks must be declared before slices)"
                )
            if "cat" in event and (
                not isinstance(event["cat"], str) or not event["cat"]
            ):
                raise TraceError(
                    f"slice {index} cat must be a non-empty string"
                )
            if isinstance(event.get("args"), dict) and "span_id" in event["args"]:
                span_slices += 1
        else:
            raise TraceError(f"event {index} has unexpected ph {phase!r}")

    if slices == 0:
        raise TraceError("trace contains no slices")
    detail = f"{slices} slices across {len(named_pids)} cell tracks"
    if span_slices:
        detail += f", {span_slices} of them spans"
    return f"{path}: OK ({detail})"


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    for name in argv:
        path = Path(name)
        try:
            print(validate_trace(path))
        except OSError as error:
            print(f"{path}: cannot read: {error}", file=sys.stderr)
            return 1
        except TraceError as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
