"""Tests for the timing-accurate shared-bus simulator."""

import pytest

from conftest import trace_of
from repro.core.timing import simulate_timed
from repro.core.simulator import simulate
from repro.interconnect import pipelined_bus
from repro.protocols import create_protocol
from repro.trace import standard_trace, take


BUS = pipelined_bus()


class TestBasicTiming:
    def test_pure_hits_take_one_cycle_each(self):
        # One processor, one block: a first-ref miss (free) then hits.
        trace = trace_of([(0, "r", 0)] * 10)
        result = simulate_timed(create_protocol("dir0b", 1), trace, BUS, q_overhead=0)
        assert result.references == 10
        assert result.total_cycles == 10
        assert result.bus_busy_cycles == 0
        assert result.processor_utilization == 1.0

    def test_single_miss_holds_the_bus(self):
        # Seed the block from another cache so the second access misses.
        trace = trace_of([(1, "r", 0), (0, "r", 0)])
        result = simulate_timed(create_protocol("dir0b", 4), trace, BUS, q_overhead=0)
        # Cache 1's first-ref is free (1 cycle); cache 0's miss costs 5 bus
        # cycles on top of its issue cycle.
        assert result.bus_busy_cycles == 5
        assert result.total_cycles >= 6

    def test_q_overhead_added_per_transaction(self):
        trace = trace_of([(1, "r", 0), (0, "r", 0)])
        with_q = simulate_timed(
            create_protocol("dir0b", 4), trace, BUS, q_overhead=3
        )
        without_q = simulate_timed(
            create_protocol("dir0b", 4), trace, BUS, q_overhead=0
        )
        assert with_q.bus_busy_cycles == without_q.bus_busy_cycles + 3

    def test_contention_stalls_processors(self):
        # Processor 3 seeds four blocks (first refs, free), then processors
        # 0-2 all miss on them at once: the bus serialises the misses, so
        # at least one processor stalls waiting for it.
        seed = trace_of([(3, "r", 16 * (10 + i)) for i in range(4)])
        work = trace_of([(c, "r", 16 * (10 + c)) for c in range(3)])
        result = simulate_timed(
            create_protocol("dir0b", 4), list(seed) + list(work), BUS,
            q_overhead=0,
        )
        total_stall = sum(result.per_processor_stall.values())
        assert total_stall > 0

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            simulate_timed(create_protocol("dir0b", 4), [], BUS, q_overhead=-1)

    def test_rejects_too_many_units(self):
        trace = trace_of([(c, "r", 0) for c in range(5)])
        with pytest.raises(ValueError, match="sharing units"):
            simulate_timed(create_protocol("dir0b", 4), trace, BUS)

    def test_empty_trace(self):
        result = simulate_timed(create_protocol("dir0b", 4), [], BUS)
        assert result.total_cycles == 0
        assert result.references == 0
        assert result.bus_utilization == 0.0


class TestAgreementWithFrequencyMethod:
    """The timed run's bus traffic should track the paper's untimed metric."""

    def test_bus_utilization_matches_cycles_per_reference(self):
        # PERO has almost no lock activity, so its reference pattern is
        # nearly timing-independent and the two methods agree closely.
        # (On POPS the timed interleaving reshuffles the spin reads and the
        # traffic diverges — exactly the caveat the paper raises about
        # trace-driven simulation.)
        trace = list(take(standard_trace("PERO", scale=1 / 128), 20000))
        untimed = simulate(create_protocol("dir0b", 4), iter(trace))
        cycles_per_ref = untimed.cycles_per_reference(BUS)
        timed = simulate_timed(
            create_protocol("dir0b", 4), iter(trace), BUS, q_overhead=0
        )
        timed_rate = timed.bus_busy_cycles / timed.references
        assert timed_rate == pytest.approx(cycles_per_ref, rel=0.35)

    def test_timing_reshuffles_lock_heavy_traces(self):
        """The paper: "in reality the reference pattern would be different
        for each of the schemes due to their timing differences."  On the
        lock-heavy POPS trace the timed schedule produces measurably
        different bus traffic than the program-order replay."""
        trace = list(take(standard_trace("POPS", scale=1 / 128), 20000))
        untimed = simulate(create_protocol("dir0b", 4), iter(trace))
        timed = simulate_timed(
            create_protocol("dir0b", 4), iter(trace), BUS, q_overhead=0
        )
        timed_rate = timed.bus_busy_cycles / timed.references
        untimed_rate = untimed.cycles_per_reference(BUS)
        # Same order of magnitude, but not equal: the schedules differ.
        assert 0.3 * untimed_rate < timed_rate < 3.0 * untimed_rate

    def test_cheaper_protocols_finish_sooner(self):
        trace = list(take(standard_trace("POPS", scale=1 / 128), 20000))
        dragon = simulate_timed(
            create_protocol("dragon", 4), iter(trace), BUS
        )
        wti = simulate_timed(create_protocol("wti", 4), iter(trace), BUS)
        assert dragon.total_cycles < wti.total_cycles

    def test_throughput_between_one_and_processor_count(self):
        trace = list(take(standard_trace("POPS", scale=1 / 128), 20000))
        result = simulate_timed(create_protocol("dir0b", 4), iter(trace), BUS)
        assert 1.0 <= result.references_per_cycle <= 4.0

    def test_stall_fraction_bounded(self):
        trace = list(take(standard_trace("POPS", scale=1 / 128), 20000))
        result = simulate_timed(create_protocol("dir1nb", 4), iter(trace), BUS)
        for processor in range(4):
            assert 0.0 <= result.stall_fraction(processor) < 1.0
