"""Unit tests for the bus timing models (paper Tables 1 and 2)."""

import pytest

from repro.interconnect.bus import (
    TABLE5_CATEGORY,
    BusOp,
    BusTiming,
    Table5Category,
    nonpipelined_bus,
    pipelined_bus,
    standard_buses,
)


class TestTable1Timing:
    def test_paper_defaults(self):
        rows = BusTiming().rows()
        assert rows == {
            "Transfer 1 data word": 1,
            "Invalidate": 1,
            "Wait for Directory": 2,
            "Wait for Memory": 2,
            "Wait for Cache": 1,
        }


class TestPipelinedBus:
    """Section 4.3's pipelined-bus costs."""

    @pytest.fixture(scope="class")
    def bus(self):
        return pipelined_bus()

    def test_memory_access_is_five_cycles(self, bus):
        assert bus.cost_of(BusOp.MEM_ACCESS) == 5

    def test_cache_supply_is_five_cycles(self, bus):
        assert bus.cost_of(BusOp.CACHE_SUPPLY) == 5

    def test_write_back_is_four_cycles(self, bus):
        assert bus.cost_of(BusOp.WRITE_BACK) == 4

    def test_dirty_remote_miss_totals_five(self, bus):
        # Request (1) + snarfed write-back (4): same total as a memory access.
        assert (
            bus.cost_of(BusOp.FLUSH_REQUEST) + bus.cost_of(BusOp.WRITE_BACK) == 5
        )

    def test_single_cycle_operations(self, bus):
        for op in (
            BusOp.WRITE_THROUGH,
            BusOp.WRITE_UPDATE,
            BusOp.DIR_CHECK,
            BusOp.INVALIDATE,
            BusOp.BROADCAST_INVALIDATE,
        ):
            assert bus.cost_of(op) == 1

    def test_overlapped_directory_check_is_free(self, bus):
        assert bus.cost_of(BusOp.DIR_CHECK_OVERLAPPED) == 0


class TestNonPipelinedBus:
    """Section 4.3's non-pipelined-bus costs."""

    @pytest.fixture(scope="class")
    def bus(self):
        return nonpipelined_bus()

    def test_memory_access_is_seven_cycles(self, bus):
        assert bus.cost_of(BusOp.MEM_ACCESS) == 7

    def test_cache_access_is_six_cycles(self, bus):
        assert bus.cost_of(BusOp.CACHE_SUPPLY) == 6
        assert (
            bus.cost_of(BusOp.FLUSH_REQUEST) + bus.cost_of(BusOp.WRITE_BACK) == 6
        )

    def test_write_through_is_two_cycles(self, bus):
        assert bus.cost_of(BusOp.WRITE_THROUGH) == 2
        assert bus.cost_of(BusOp.WRITE_UPDATE) == 2

    def test_directory_check_is_three_cycles(self, bus):
        assert bus.cost_of(BusOp.DIR_CHECK) == 3

    def test_invalidate_is_one_cycle(self, bus):
        assert bus.cost_of(BusOp.INVALIDATE) == 1

    def test_overlapped_directory_check_is_free(self, bus):
        assert bus.cost_of(BusOp.DIR_CHECK_OVERLAPPED) == 0


class TestCostModelBehaviour:
    def test_total_cycles_weights_counts(self):
        bus = pipelined_bus()
        total = bus.total_cycles({BusOp.MEM_ACCESS: 2, BusOp.INVALIDATE: 3})
        assert total == 2 * 5 + 3 * 1

    def test_with_broadcast_cost(self):
        bus = pipelined_bus().with_broadcast_cost(8)
        assert bus.cost_of(BusOp.BROADCAST_INVALIDATE) == 8
        assert bus.cost_of(BusOp.INVALIDATE) == 1  # unchanged

    def test_with_broadcast_cost_does_not_mutate_original(self):
        original = pipelined_bus()
        original.with_broadcast_cost(99)
        assert original.cost_of(BusOp.BROADCAST_INVALIDATE) == 1

    def test_every_op_has_a_cost_in_both_models(self):
        for bus in standard_buses().values():
            for op in BusOp:
                assert bus.cost_of(op) >= 0

    def test_every_op_has_a_table5_category(self):
        assert set(TABLE5_CATEGORY) == set(BusOp)
        assert set(TABLE5_CATEGORY.values()) <= set(Table5Category)

    def test_table2_rows_match_paper(self):
        pipe = pipelined_bus().table2_rows()
        nonpipe = nonpipelined_bus().table2_rows()
        assert pipe["Memory access"] == 5 and nonpipe["Memory access"] == 7
        assert pipe["Cache access"] == 5 and nonpipe["Cache access"] == 6
        assert pipe["Write-back"] == 4 and nonpipe["Write-back"] == 4
        assert pipe["Directory check"] == 1 and nonpipe["Directory check"] == 3

    def test_wider_blocks_cost_more(self):
        wide = pipelined_bus(words_per_block=8)
        assert wide.cost_of(BusOp.MEM_ACCESS) == 9
        assert wide.cost_of(BusOp.WRITE_BACK) == 8
