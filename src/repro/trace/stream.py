"""Trace streams and the transforms the paper's methodology applies to them.

A *trace* is any iterable of :class:`~repro.trace.record.TraceRecord`.  The
helpers here implement the trace-level decisions described in Section 4.4 of
the paper:

* **Sharing classification** — the paper considers *process* sharing rather
  than *processor* sharing: a block counts as shared only if more than one
  process touches it.  Concretely the simulator maintains one cache per
  sharing unit; :func:`sharing_unit_mapper` rewrites each record's ``cpu``
  field to its sharing-unit index so that downstream code can always key
  caches by ``record.cpu``.
* **Lock-test exclusion** — the Section 5.2 experiment re-runs the
  simulations "excluding all the tests on locks"; :func:`exclude_lock_spins`
  drops exactly those records.
* Miscellaneous utilities: truncation, materialisation, round-robin
  interleaving of per-processor streams.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from .record import TraceRecord

__all__ = [
    "SharingModel",
    "Trace",
    "sharing_unit_mapper",
    "map_to_sharing_units",
    "exclude_lock_spins",
    "exclude_os",
    "take",
    "materialize",
    "interleave",
    "count_sharing_units",
]


class SharingModel(enum.Enum):
    """How references are grouped into caches for sharing classification.

    The paper (Section 4.4) uses ``PROCESS`` sharing: "a block is considered
    shared only if it is accessed by more than one process", excluding the
    sharing induced purely by process migration.  ``PROCESSOR`` sharing keys
    caches by physical CPU instead; the paper reports that the two give
    similar numbers on its traces because migration is rare.
    """

    PROCESS = "process"
    PROCESSOR = "processor"


#: A trace is any iterable of records.
Trace = Iterable[TraceRecord]


def sharing_unit_mapper(
    model: SharingModel,
) -> Callable[[TraceRecord, Dict[int, int]], int]:
    """Return a function assigning a dense sharing-unit index to a record.

    The returned callable takes a record and a mutable ``{key: index}``
    registry and returns the dense index for the record's sharing unit,
    allocating a fresh index the first time a key is seen.
    """

    if model is SharingModel.PROCESS:
        key_of = lambda record: record.pid  # noqa: E731 - tiny accessor
    elif model is SharingModel.PROCESSOR:
        key_of = lambda record: record.cpu  # noqa: E731 - tiny accessor
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown sharing model: {model!r}")

    def mapper(record: TraceRecord, registry: Dict[int, int]) -> int:
        key = key_of(record)
        index = registry.get(key)
        if index is None:
            index = len(registry)
            registry[key] = index
        return index

    return mapper


def map_to_sharing_units(
    trace: Trace, model: SharingModel = SharingModel.PROCESS
) -> Iterator[TraceRecord]:
    """Rewrite ``cpu`` on each record to a dense sharing-unit index.

    After this transform, ``record.cpu`` identifies the cache the reference
    belongs to under the chosen sharing model, which is what the simulator
    keys on.
    """
    mapper = sharing_unit_mapper(model)
    registry: Dict[int, int] = {}
    for record in trace:
        unit = mapper(record, registry)
        if unit == record.cpu:
            yield record
        else:
            yield TraceRecord(
                cpu=unit,
                pid=record.pid,
                access=record.access,
                address=record.address,
                is_lock_spin=record.is_lock_spin,
                is_os=record.is_os,
            )


def count_sharing_units(
    trace: Trace, model: SharingModel = SharingModel.PROCESS
) -> int:
    """Number of distinct sharing units (processes or processors) in a trace."""
    if model is SharingModel.PROCESS:
        return len({record.pid for record in trace})
    return len({record.cpu for record in trace})


def exclude_lock_spins(trace: Trace) -> Iterator[TraceRecord]:
    """Drop spin reads on locks (the Section 5.2 experiment).

    Only the *test* reads of test-and-test-and-set loops are removed; the
    test-and-set write and all other references survive.
    """
    return (record for record in trace if not record.is_lock_spin)


def exclude_os(trace: Trace) -> Iterator[TraceRecord]:
    """Drop operating-system references, leaving the pure user-mode trace."""
    return (record for record in trace if not record.is_os)


def take(trace: Trace, n: int) -> Iterator[TraceRecord]:
    """First ``n`` records of a trace."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return itertools.islice(iter(trace), n)


def materialize(trace: Trace) -> List[TraceRecord]:
    """Force a lazy trace into a list (useful for multi-protocol reuse)."""
    return list(trace)


def interleave(
    streams: Sequence[Iterable[TraceRecord]],
    run_lengths: Iterable[int],
) -> Iterator[TraceRecord]:
    """Interleave per-processor streams into one global trace.

    ``run_lengths`` supplies, for each scheduling turn, how many consecutive
    references the currently selected stream contributes before the scheduler
    rotates to the next stream.  Exhausted streams are skipped; iteration ends
    when every stream is exhausted.  Program order within each stream is
    preserved, which is all that trace-driven simulation requires.
    """
    iterators: List[Iterator[TraceRecord]] = [iter(s) for s in streams]
    alive = list(range(len(iterators)))
    lengths = iter(run_lengths)
    position = 0
    while alive:
        if position >= len(alive):
            position = 0
        index = alive[position]
        try:
            run = next(lengths)
        except StopIteration:
            run = 1
        emitted = 0
        exhausted = False
        while emitted < max(1, run):
            try:
                yield next(iterators[index])
            except StopIteration:
                exhausted = True
                break
            emitted += 1
        if exhausted:
            alive.pop(position)
        else:
            position += 1
