"""Integration tests: the paper's headline results must hold in shape.

These run the full pipeline — calibrated synthetic traces through every
protocol — at a reduced scale and assert the *orderings and ratios* the
paper reports, not absolute cycle counts (our traces are synthetic).
"""

import pytest

from repro.analysis import (
    broadcast_cost_line,
    figure1,
    overhead_lines,
    relative_gap,
    spin_lock_impact,
    table4,
)
from repro.core import decompose_miss_rate, effective_processors, run_standard_comparison
from repro.core.simulator import simulate
from repro.interconnect import nonpipelined_bus, pipelined_bus
from repro.protocols import Dir1B
from repro.trace import standard_trace, standard_trace_names

SCALE = 1.0 / 16.0  # the calibrated scale; Dragon's sticky sharing needs full-length traces

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon", "dirnnb", "berkeley")


@pytest.fixture(scope="module")
def comparison():
    return run_standard_comparison(SCHEMES, scale=SCALE)


@pytest.fixture(scope="module")
def bus():
    return pipelined_bus()


class TestFigure2Ordering:
    """Dragon < Dir0B < WTI << Dir1NB (paper Figure 2)."""

    def test_scheme_ordering(self, comparison, bus):
        dragon = comparison.average_cycles("dragon", bus)
        dir0b = comparison.average_cycles("dir0b", bus)
        wti = comparison.average_cycles("wti", bus)
        dir1nb = comparison.average_cycles("dir1nb", bus)
        assert dragon < dir0b < wti < dir1nb

    def test_dir0b_is_competitive_with_dragon(self, comparison, bus):
        # "DiroB is shown to use close to 50% more bus cycles than Dragon".
        ratio = comparison.average_cycles("dir0b", bus) / comparison.average_cycles(
            "dragon", bus
        )
        assert 1.1 < ratio < 2.3

    def test_wti_about_three_times_dir0b(self, comparison, bus):
        ratio = comparison.average_cycles("wti", bus) / comparison.average_cycles(
            "dir0b", bus
        )
        assert 2.0 < ratio < 4.5

    def test_dir1nb_is_several_times_dir0b(self, comparison, bus):
        # The paper measures "over a factor of six"; spin ping-pong drives it.
        ratio = comparison.average_cycles("dir1nb", bus) / comparison.average_cycles(
            "dir0b", bus
        )
        assert ratio > 4.0

    def test_ordering_robust_to_bus_model(self, comparison):
        # "the relative performance of the four schemes does not depend
        # strongly on the sophistication of the bus" (Figure 2/3).
        nonpipe = nonpipelined_bus()
        dragon = comparison.average_cycles("dragon", nonpipe)
        dir0b = comparison.average_cycles("dir0b", nonpipe)
        wti = comparison.average_cycles("wti", nonpipe)
        dir1nb = comparison.average_cycles("dir1nb", nonpipe)
        assert dragon < dir0b < wti < dir1nb


class TestFigure3PerTrace:
    def test_pero_is_the_cheapest_trace(self, comparison, bus):
        # "the numbers for PERO are much smaller ... the fraction of
        # references to shared blocks in PERO is much smaller".
        for scheme in ("dir0b", "dragon", "dir1nb"):
            per_trace = comparison.per_trace_cycles(scheme, bus)
            assert per_trace["PERO"] < per_trace["POPS"]
            assert per_trace["PERO"] < per_trace["THOR"]


class TestTable4Shapes:
    def test_dir1nb_read_misses_dwarf_dir0b(self, comparison):
        t4 = table4(comparison, schemes=("dir1nb", "dir0b"))
        assert t4.value("rd-miss(rm)", "dir1nb") > 4 * t4.value(
            "rd-miss(rm)", "dir0b"
        )

    def test_dragon_misses_are_the_native_rate(self, comparison):
        t4 = table4(comparison, schemes=("dir0b", "dragon"))
        assert t4.value("rd-miss(rm)", "dragon") < t4.value("rd-miss(rm)", "dir0b")

    def test_event_identity_wti_dir0b(self, comparison):
        # Same state-change specification -> identical miss frequencies.
        t4 = table4(comparison, schemes=("wti", "dir0b"))
        assert t4.value("rd-miss(rm)", "wti") == pytest.approx(
            t4.value("rd-miss(rm)", "dir0b"), rel=1e-9
        )

    def test_event_identity_dirnnb_dir0b(self, comparison):
        t4 = table4(comparison, schemes=("dirnnb", "dir0b"))
        for row in ("rd-miss(rm)", "wrt-miss(wm)", "wh-blk-cln"):
            assert t4.value(row, "dirnnb") == pytest.approx(
                t4.value(row, "dir0b"), rel=1e-9
            )

    def test_write_hits_dominate_writes(self, comparison):
        t4 = table4(comparison, schemes=("dir0b",))
        assert t4.value("wrt-hit(wh)", "dir0b") > 0.9 * t4.value("write", "dir0b")

    def test_coherence_misses_are_a_large_miss_share(self, comparison):
        # Paper: consistency-related misses are 36% of the Dir0B miss rate.
        t4 = table4(comparison, schemes=("dir0b", "dragon"))
        decomposition = decompose_miss_rate(
            t4.value("rd-miss(rm)", "dir0b") + t4.value("wrt-miss(wm)", "dir0b"),
            t4.value("rd-miss(rm)", "dragon") + t4.value("wrt-miss(wm)", "dragon"),
        )
        assert 0.2 < decomposition.coherence_share < 0.9


class TestFigure1Shape:
    def test_most_invalidations_hit_at_most_one_cache(self, comparison):
        figure = figure1(comparison)
        assert figure.share_at_most_one > 0.75  # paper: over 85%


class TestSection51Overheads:
    def test_dragon_has_more_transactions_than_dir0b(self, comparison):
        lines = overhead_lines(comparison)
        assert (
            lines["dragon"].transactions_per_ref
            > lines["dir0b"].transactions_per_ref
        )

    def test_gap_shrinks_with_q(self, comparison):
        lines = overhead_lines(comparison)
        assert relative_gap(lines, q=1) < relative_gap(lines, q=0)


class TestSection6Scalability:
    def test_sequential_invalidation_costs_almost_nothing_extra(
        self, comparison, bus
    ):
        # Paper: 0.0499 (DirnNB) vs 0.0491 (Dir0B) — under 4% apart.
        dir0b = comparison.average_cycles("dir0b", bus)
        dirnnb = comparison.average_cycles("dirnnb", bus)
        assert dirnnb >= dir0b * 0.999
        assert dirnnb < dir0b * 1.06

    def test_berkeley_lands_between_dir0b_and_dragon(self, comparison, bus):
        berkeley = comparison.average_cycles("berkeley", bus)
        assert comparison.average_cycles("dragon", bus) < berkeley
        assert berkeley <= comparison.average_cycles("dir0b", bus) * 1.02

    def test_dir1b_broadcast_model_has_small_slope(self, bus):
        # Paper: 0.0485 + 0.0006*b — the broadcast-rate slope is tiny
        # compared to the base cost.
        result = simulate(
            Dir1B(4), standard_trace("POPS", scale=SCALE), trace_name="POPS"
        )
        line = broadcast_cost_line(result)
        assert line.slope < line.intercept / 10


class TestSection52SpinLocks:
    def test_spin_exclusion_rescues_dir1nb_but_not_dir0b(self):
        factories = {
            name: (lambda name=name: standard_trace(name, scale=SCALE))
            for name in standard_trace_names()
        }
        impacts = spin_lock_impact(factories)
        assert impacts["dir1nb"].improvement_factor > 1.3
        assert impacts["dir0b"].improvement_factor == pytest.approx(1.0, abs=0.1)


class TestProcessorBound:
    def test_best_scheme_supports_around_fifteen_processors(
        self, comparison, bus
    ):
        cycles = comparison.average_cycles("dragon", bus)
        bound = effective_processors(cycles)
        assert 8 < bound < 40  # paper's estimate: ~15
