"""Tests for the sweep service: schema, job manager, HTTP API, client.

The heavy contracts from the issue live here:

- an HTTP-submitted sweep is bit-identical (counter signatures) to the
  same grid run directly through ``run_sweep``;
- a second identical submission performs **zero** simulations — proven
  through the ``cache.hit`` metric on ``GET /metrics``;
- backpressure is status codes: 422 invalid schema, 429 rate limit,
  503 queue-full / draining;
- cancellation works both for queued jobs and for sweeps already
  running in their child process;
- drain stops admission and waits work out.
"""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.runner.sweep import run_sweep
from repro.service import (
    JobManager,
    RequestError,
    ServiceClient,
    ServiceError,
    parse_request,
    start_background,
)
from repro.service.jobs import JobState, QueueFull, RateLimited, TokenBucket
from repro.service.schema import REQUEST_SCHEMA_VERSION

#: 1/512 of the paper's trace lengths — a few thousand references per cell.
FAST_SCALE = 512


def doc(*protocols, scale=FAST_SCALE, traces=("POPS",), **extra):
    """A minimal valid request document."""
    sweep = {
        "protocols": list(protocols),
        "traces": list(traces),
        "scale": scale,
    }
    sweep.update(extra)
    return {"schema": REQUEST_SCHEMA_VERSION, "sweep": sweep}


@contextmanager
def service(tmp_path, **kwargs):
    """A JobManager + live HTTP server + client, torn down afterwards."""
    manager = JobManager(tmp_path / "svc", **kwargs)
    handle = start_background(manager)
    try:
        yield manager, ServiceClient(handle.base_url, client="tester")
    finally:
        handle.stop(drain=False)


# -- schema --------------------------------------------------------------------


class TestSchema:
    def test_minimal_request_resolves_a_grid(self):
        request = parse_request(doc("dir0b", "dragon"))
        assert len(request.specs) == 2
        assert {spec.protocol for spec in request.specs} == {"dir0b", "dragon"}
        assert request.specs[0].scale == pytest.approx(1 / FAST_SCALE)

    def test_identical_grids_share_a_sweep_key(self):
        first = parse_request(doc("dragon", "dir0b"))  # order differs
        second = parse_request(doc("dir0b", "dragon"))
        assert first.sweep_key() == second.sweep_key()

    def test_all_errors_collected_in_one_response(self):
        with pytest.raises(RequestError) as excinfo:
            parse_request(
                {
                    "schema": 99,
                    "sweep": {
                        "protocols": ["nonesuch"],
                        "traces": ["NOPE"],
                        "scale": -4,
                    },
                    "bogus": True,
                }
            )
        fields = {detail["field"] for detail in excinfo.value.details}
        assert {
            "schema",
            "sweep.protocols[0]",
            "sweep.traces[0]",
            "sweep.scale",
            "bogus",
        } <= fields

    def test_unknown_protocol_gets_did_you_mean(self):
        with pytest.raises(RequestError, match="dir0b"):
            parse_request(doc("dir0"))

    def test_unknown_sweep_field_rejected(self):
        with pytest.raises(RequestError, match="sweep.protocol"):
            parse_request({"sweep": {"protocol": ["dir0b"]}})

    def test_grid_bounded_by_max_cells(self):
        with pytest.raises(RequestError, match="at most 1"):
            parse_request(doc("dir0b", "dragon"), max_cells=1)

    def test_jobs_bounded_by_max_jobs(self):
        payload = doc("dir0b")
        payload["options"] = {"jobs": 64}
        with pytest.raises(RequestError, match="at most 2 jobs"):
            parse_request(payload, max_jobs=2)

    def test_options_parsed(self):
        payload = doc("dir0b")
        payload["options"] = {
            "jobs": 2,
            "retries": 1,
            "cell_timeout": 30.0,
            "keep_going": False,
        }
        request = parse_request(payload, max_jobs=4)
        assert request.options.jobs == 2
        assert request.options.retries == 1
        assert request.options.cell_timeout == 30.0
        assert request.options.keep_going is False

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2, 3])


# -- token bucket --------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_limited(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: clock[0])
        bucket.take()
        bucket.take()
        with pytest.raises(RateLimited) as excinfo:
            bucket.take()
        assert excinfo.value.retry_after > 0

    def test_refills_with_time(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1, clock=lambda: clock[0])
        bucket.take()
        with pytest.raises(RateLimited):
            bucket.take()
        clock[0] += 1.5
        bucket.take()  # refilled

    def test_zero_rate_never_refills(self):
        clock = [0.0]
        bucket = TokenBucket(rate=0.0, burst=1, clock=lambda: clock[0])
        bucket.take()
        clock[0] += 1e9
        with pytest.raises(RateLimited):
            bucket.take()

    def test_none_rate_is_unlimited(self):
        bucket = TokenBucket(rate=None, burst=1)
        for _ in range(100):
            bucket.take()


# -- the flagship contracts over HTTP ------------------------------------------


class TestServiceEndToEnd:
    def test_http_sweep_bit_identical_to_direct_run_sweep(self, tmp_path):
        """Acceptance criterion: same grid, HTTP vs in-process, equal
        counter signatures after the JSON round trip."""
        payload = doc("dir0b", "dragon")
        with service(tmp_path) as (_manager, client):
            job = client.submit(payload)
            done = client.wait(job["id"], timeout=180)
            assert done["state"] == "finished"
            result = client.result(job["id"])

        direct = run_sweep(list(parse_request(payload).specs))
        assert result["cells"] == direct.cells == 2
        assert result["simulated"] == 2
        expected = [
            outcome.result.counters.signature()
            for outcome in direct.outcomes
        ]
        served = [entry["signature"] for entry in result["outcomes"]]
        assert served == expected

    def test_second_submission_dedupes_with_zero_simulations(self, tmp_path):
        """Acceptance criterion: the repeat POST is served entirely from
        the result cache — ``cache.hit`` moves, ``sweep.simulated``
        doesn't, and the job is terminal in the submit response."""
        payload = doc("dir0b", "dragon")
        with service(tmp_path) as (manager, client):
            first = client.submit(payload)
            client.wait(first["id"], timeout=180)

            def metric(name):
                for line in client.metrics().splitlines():
                    if line.startswith(name + " "):
                        return float(line.split()[1])
                return 0.0

            simulated_before = metric("repro_sweep_simulated_total")
            hits_before = metric("repro_cache_hit_total")
            assert simulated_before == 2

            second = client.submit(payload)
            assert second["id"] != first["id"]
            assert second["deduped"] is True
            assert second["state"] == "finished"  # terminal at submit time

            assert metric("repro_sweep_simulated_total") == simulated_before
            assert metric("repro_cache_hit_total") == hits_before + 2
            assert manager.registry.counter("service.jobs_deduped").value == 1

            result = client.result(second["id"])
            assert result["simulated"] == 0
            assert result["cache_hits"] == 2

    def test_inflight_identical_grid_coalesces(self, tmp_path):
        gate = threading.Event()
        with service(tmp_path, start_gate=gate) as (manager, client):
            first = client.submit(doc("dir0b"))
            second = client.submit(doc("dir0b"))
            assert second["id"] == first["id"]
            assert manager.registry.counter("service.jobs_coalesced").value == 1
            gate.set()
            assert client.wait(first["id"], timeout=180)["state"] == "finished"

    def test_events_stream_journal_then_end(self, tmp_path):
        with service(tmp_path) as (_manager, client):
            job = client.submit(doc("dir0b"))
            client.wait(job["id"], timeout=180)
            events = list(client.events(job["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "end"
        assert "journal" in kinds
        journal = [e["record"] for e in events if e["event"] == "journal"]
        assert any(record.get("status") == "ok" for record in journal)

    def test_partial_cache_hit_produces_marker_events(self, tmp_path):
        """A half-warm grid runs in a child process and its cache_hit
        marker spans come back over the events stream."""
        with service(tmp_path) as (_manager, client):
            warm = client.submit(doc("dir0b"))
            client.wait(warm["id"], timeout=180)
            mixed = client.submit(doc("dir0b", "dragon"))
            snapshot = client.wait(mixed["id"], timeout=180)
            assert snapshot["state"] == "finished"
            assert snapshot["deduped"] is False
            events = list(client.events(mixed["id"]))
        markers = [e["span"] for e in events if e["event"] == "marker"]
        assert any(marker["kind"] == "cache_hit" for marker in markers)


# -- backpressure and lifecycle ------------------------------------------------


class TestBackpressure:
    def test_invalid_schema_is_422_with_details(self, tmp_path):
        with service(tmp_path) as (_manager, client):
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"sweep": {"protocols": ["nonesuch"]}})
        assert excinfo.value.status == 422
        details = excinfo.value.payload["details"]
        assert any("nonesuch" in d["error"] for d in details)

    def test_rate_limit_returns_429_with_retry_after(self, tmp_path):
        with service(tmp_path, rate_per_sec=0.0, burst=1) as (
            manager,
            client,
        ):
            client.submit(doc("dir0b"))
            with pytest.raises(ServiceError) as excinfo:
                client.submit(doc("dragon"))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
            assert manager.registry.counter("service.rate_limited").value == 1
            # A different client has its own bucket.
            other = ServiceClient(
                f"http://{client.host}:{client.port}", client="other"
            )
            job = other.submit(doc("dragon"))
            other.wait(job["id"], timeout=180)

    def test_full_queue_returns_503(self, tmp_path):
        gate = threading.Event()
        try:
            with service(
                tmp_path, workers=1, queue_limit=1, start_gate=gate
            ) as (_manager, client):
                first = client.submit(doc("dir0b"))
                deadline = time.monotonic() + 10
                while client.status(first["id"])["state"] != "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                client.submit(doc("dragon"))  # fills the queue slot
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(doc("firefly"))
                assert excinfo.value.status == 503
        finally:
            gate.set()

    def test_cancel_queued_job(self, tmp_path):
        gate = threading.Event()
        try:
            with service(
                tmp_path, workers=1, queue_limit=4, start_gate=gate
            ) as (_manager, client):
                first = client.submit(doc("dir0b"))
                deadline = time.monotonic() + 10
                while client.status(first["id"])["state"] != "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                queued = client.submit(doc("dragon"))
                assert client.status(queued["id"])["state"] == "queued"
                cancelled = client.cancel(queued["id"])
                assert cancelled["state"] == "cancelled"
                with pytest.raises(ServiceError) as excinfo:
                    client.result(queued["id"])
                assert excinfo.value.status == 409
        finally:
            gate.set()

    def test_cancel_terminates_a_running_sweep(self, tmp_path):
        # A grid big enough that it cannot finish before the cancel lands
        # (a scale-8 trace is ~400k references per cell).
        with service(tmp_path) as (manager, client):
            job = client.submit(doc("dir0b", "dragon", "firefly", scale=8))
            deadline = time.monotonic() + 30
            managed = manager.get(job["id"])
            while managed.process is None or not managed.process.is_alive():
                assert time.monotonic() < deadline, "sweep process never rose"
                time.sleep(0.01)
            client.cancel(job["id"])
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "cancelled"
            assert manager.registry.counter("service.jobs_cancelled").value == 1

    def test_unknown_job_is_404(self, tmp_path):
        with service(tmp_path) as (_manager, client):
            with pytest.raises(ServiceError) as excinfo:
                client.status("deadbeef")
        assert excinfo.value.status == 404

    def test_result_before_finish_is_409(self, tmp_path):
        gate = threading.Event()
        try:
            with service(tmp_path, start_gate=gate) as (_manager, client):
                job = client.submit(doc("dir0b"))
                with pytest.raises(ServiceError) as excinfo:
                    client.result(job["id"])
                assert excinfo.value.status == 409
        finally:
            gate.set()


class TestDrainAndTtl:
    def test_drain_finishes_work_then_rejects(self, tmp_path):
        with service(tmp_path) as (manager, client):
            job = client.submit(doc("dir0b"))
            assert manager.drain(timeout=180) is True
            assert client.status(job["id"])["state"] == "finished"
            assert client.health()["draining"] is True
            with pytest.raises(ServiceError) as excinfo:
                client.submit(doc("dragon"))
            assert excinfo.value.status == 503

    def test_graceful_stop_drains_running_jobs(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        handle = start_background(manager)
        client = ServiceClient(handle.base_url)
        job = client.submit(doc("dir0b"))
        handle.stop(drain=True, timeout=180)  # blocks until the job lands
        managed = manager.get(job["id"])
        assert managed.state == JobState.FINISHED
        assert managed.result_path.exists()

    def test_expired_jobs_are_reaped(self, tmp_path):
        with service(tmp_path) as (manager, client):
            job = client.submit(doc("dir0b"))
            client.wait(job["id"], timeout=180)
            directory = manager.get(job["id"]).directory
            assert directory.exists()
            manager.job_ttl = 0.05  # shrink only once the job is terminal
            time.sleep(0.1)
            assert manager.get(job["id"]) is None  # get() reaps
            assert not directory.exists()
            assert manager.registry.counter("service.jobs_expired").value == 1


# -- manager unit seams --------------------------------------------------------


class TestManagerUnits:
    def test_submit_rejects_when_queue_full_without_http(self, tmp_path):
        gate = threading.Event()
        manager = JobManager(
            tmp_path / "svc", workers=1, queue_limit=1, start_gate=gate
        )
        try:
            first = manager.submit(doc("dir0b"))
            deadline = time.monotonic() + 10
            while first.state != JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            manager.submit(doc("dragon"))
            with pytest.raises(QueueFull):
                manager.submit(doc("firefly"))
            assert manager.registry.counter("service.queue_rejected").value == 1
        finally:
            gate.set()
            manager.shutdown(cancel_running=True)

    def test_request_and_status_files_written_at_submit(self, tmp_path):
        gate = threading.Event()
        manager = JobManager(tmp_path / "svc", start_gate=gate)
        try:
            job = manager.submit(doc("dir0b"))
            assert (job.directory / "request.json").exists()
            snapshot = job.snapshot()
            assert snapshot["cells"] == 1
            assert snapshot["state"] in (JobState.QUEUED, JobState.RUNNING)
        finally:
            gate.set()
            manager.shutdown(cancel_running=True)
