"""Tang's duplicate-directory consistency scheme.

Tang's method (the earliest directory scheme the paper reviews, Section 2)
keeps, at main memory, a **copy of every cache's tag store and dirty bits**.
Functionally it maintains exactly the same information as a Censier &
Feautrier full map — clean blocks in many caches, a dirty block in one — and
takes the same consistency actions, so its per-reference behaviour and bus
operations are those of :class:`~repro.protocols.directory.dirnnb.DirnNB`.
The paper classifies both as DirnNB.

What differs is the *organisation* of the directory: to find which caches
hold a block, Tang's scheme must associatively search each duplicate cache
directory instead of indexing one entry by address, and its storage grows
with total cache capacity (tags) rather than with main-memory size.  The
storage model below quantifies that difference for the Section 6 scalability
discussion.
"""

from __future__ import annotations

import math

from .dirnnb import DirnNB

__all__ = ["Tang"]


class Tang(DirnNB):
    """Duplicate-cache-directory organisation of the full-map scheme."""

    name = "tang"
    label = "Tang"
    kind = "directory"

    @classmethod
    def duplicate_directory_bits(
        cls,
        n_caches: int,
        cache_lines: int,
        address_bits: int = 32,
        block_size: int = 16,
        n_sets: int = None,
    ) -> int:
        """Total bits of the central duplicate-tag directory.

        One tag plus a dirty bit is duplicated for each line of each cache.
        ``n_sets`` defaults to ``cache_lines`` (a direct-mapped cache).
        """
        if n_sets is None:
            n_sets = cache_lines
        offset_bits = int(math.log2(block_size))
        index_bits = int(math.log2(n_sets))
        tag_bits = max(0, address_bits - offset_bits - index_bits)
        return n_caches * cache_lines * (tag_bits + 1)
