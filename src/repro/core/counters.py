"""Event and bus-operation accounting for one simulation run."""

from __future__ import annotations

from typing import Dict, Mapping

from ..interconnect.costs import BusOpCounts
from ..protocols.base import AccessOutcome
from ..protocols.events import (
    FIRST_REF_EVENTS,
    READ_MISS_EVENTS,
    WRITE_HIT_EVENTS,
    WRITE_MISS_EVENTS,
    Event,
)
from .invalidation import InvalidationHistogram

__all__ = ["SimulationCounters", "EventFrequencies"]


class SimulationCounters:
    """Everything counted while a protocol processes a trace.

    ``evictions`` / ``dirty_evictions`` tally the finite-geometry stage's
    capacity and conflict displacements (always 0 under the paper's
    infinite caches); the write-backs dirty evictions cost are folded into
    ``ops`` by the stage itself.
    """

    __slots__ = ("events", "ops", "fanout", "evictions", "dirty_evictions")

    def __init__(self) -> None:
        self.events: Dict[Event, int] = {}
        self.ops = BusOpCounts()
        self.fanout = InvalidationHistogram()
        self.evictions = 0
        self.dirty_evictions = 0

    def record(self, outcome: AccessOutcome) -> None:
        """Tally one reference's outcome.

        A reference counts as a bus *transaction* exactly when
        ``outcome.used_bus`` holds — i.e. it carried at least one
        non-overlapped bus operation with a positive count.  Outcomes whose
        op list is empty, all-zero-count, or overlapped-only are free and
        must not inflate the Section 5.1 transaction rate.
        """
        events = self.events
        events[outcome.event] = events.get(outcome.event, 0) + 1
        ops = self.ops
        ops.references += 1
        for op, count in outcome.ops:
            ops.add(op, count)
        if outcome.used_bus:
            ops.transactions += 1
        if outcome.invalidation_fanout is not None:
            self.fanout.record(outcome.invalidation_fanout)

    def merge(self, other: "SimulationCounters") -> "SimulationCounters":
        """Fold another run's tallies into this one, exactly.

        Every field is a pure sum, so merging per-chunk counters from a
        sharded trace reproduces the single-run totals bit-for-bit (the
        property the runner's sharding relies on).  Returns ``self`` so
        merges chain.
        """
        events = self.events
        for event, count in other.events.items():
            events[event] = events.get(event, 0) + count
        self.ops.merge(other.ops)
        self.fanout.merge(other.fanout)
        self.evictions += other.evictions
        self.dirty_evictions += other.dirty_evictions
        return self

    def __iadd__(self, other: "SimulationCounters") -> "SimulationCounters":
        return self.merge(other)

    @property
    def references(self) -> int:
        return self.ops.references

    def event_count(self, event: Event) -> int:
        return self.events.get(event, 0)

    def frequencies(self) -> "EventFrequencies":
        return EventFrequencies(self.events, self.references)

    def signature(self) -> Dict[str, object]:
        """Canonical JSON-able identity of everything this run counted.

        Two runs are bit-identical exactly when their signatures compare
        equal — the contract the backend differential suite, the telemetry
        proofs and the sweep service's result format all rely on.  Keys are
        strings (enum values, decimal fan-out sizes) and insertion order is
        sorted, so the signature survives a JSON round trip unchanged.
        """
        return {
            "references": self.ops.references,
            "transactions": self.ops.transactions,
            "events": {
                event.value: count
                for event, count in sorted(
                    self.events.items(), key=lambda item: item[0].value
                )
            },
            "ops": {
                op.value: count
                for op, count in sorted(
                    self.ops.ops.items(), key=lambda item: item[0].value
                )
            },
            "fanout": {
                str(size): count
                for size, count in sorted(self.fanout.as_dict().items())
            },
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
        }


class EventFrequencies:
    """Event rates as percentages of all references (the Table 4 view)."""

    def __init__(self, events: Mapping[Event, int], references: int) -> None:
        if references <= 0:
            raise ValueError("cannot compute frequencies of an empty run")
        self._events = dict(events)
        self._references = references

    def percent(self, event: Event) -> float:
        """One event's rate, in percent of all references."""
        return 100.0 * self._events.get(event, 0) / self._references

    def percent_of(self, events) -> float:
        """Combined rate of a set of events, in percent."""
        return sum(self.percent(event) for event in events)

    # -- the aggregate rows of Table 4 -----------------------------------------

    @property
    def instr(self) -> float:
        return self.percent(Event.INSTR)

    @property
    def read_hits(self) -> float:
        return self.percent(Event.READ_HIT)

    @property
    def read_misses(self) -> float:
        """``rd-miss (rm)``: read misses excluding first references."""
        return self.percent_of(READ_MISS_EVENTS)

    @property
    def reads(self) -> float:
        return (
            self.read_hits + self.read_misses + self.percent(Event.RM_FIRST_REF)
        )

    @property
    def write_hits(self) -> float:
        return self.percent_of(WRITE_HIT_EVENTS)

    @property
    def write_misses(self) -> float:
        """``wrt-miss (wm)``: write misses excluding first references."""
        return self.percent_of(WRITE_MISS_EVENTS)

    @property
    def writes(self) -> float:
        return (
            self.write_hits + self.write_misses + self.percent(Event.WM_FIRST_REF)
        )

    @property
    def data_miss_rate(self) -> float:
        """All data misses (first references excluded), percent of references."""
        return self.read_misses + self.write_misses

    @property
    def data_miss_rate_with_first_refs(self) -> float:
        return self.data_miss_rate + self.percent_of(FIRST_REF_EVENTS)

    def as_dict(self) -> Dict[str, float]:
        """All Table 4 rows for this scheme, keyed by the paper's labels."""
        return {
            "instr": self.instr,
            "read": self.reads,
            "rd-hit": self.read_hits,
            "rd-miss(rm)": self.read_misses,
            "rm-blk-cln": self.percent(Event.RM_BLK_CLEAN)
            + self.percent(Event.RM_UNCACHED),
            "rm-blk-drty": self.percent(Event.RM_BLK_DIRTY),
            "rm-first-ref": self.percent(Event.RM_FIRST_REF),
            "write": self.writes,
            "wrt-hit(wh)": self.write_hits,
            "wh-blk-cln": self.percent(Event.WH_BLK_CLEAN),
            "wh-blk-drty": self.percent(Event.WH_BLK_DIRTY),
            "wh-distrib": self.percent(Event.WH_DISTRIB),
            "wh-local": self.percent(Event.WH_LOCAL),
            "wrt-miss(wm)": self.write_misses,
            "wm-blk-cln": self.percent(Event.WM_BLK_CLEAN)
            + self.percent(Event.WM_UNCACHED),
            "wm-blk-drty": self.percent(Event.WM_BLK_DIRTY),
            "wm-first-ref": self.percent(Event.WM_FIRST_REF),
        }
