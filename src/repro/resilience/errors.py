"""Structured failure records for sweep cells.

A cell that cannot produce a result — it raised, its worker was killed,
or it blew through its wall-clock budget — becomes a :class:`RunError`
attached to the cell's :class:`~repro.runner.sweep.RunOutcome` instead of
an exception unwinding the whole sweep.  The record carries everything a
post-mortem needs (error kind, exception type, message, attempt count,
worker pid, traceback) and serialises to plain JSON for the sweep journal
and run manifests.

:class:`CellFailure` is the fail-fast path: raised by ``run_sweep`` when a
cell exhausts its retry budget and ``keep_going`` is off (the default), or
when ``max_failures`` is exceeded.  :class:`SweepInterrupted` is raised
after a SIGINT: the pool has been torn down, every completed outcome has
already been flushed to the cache/journal, and the exception carries the
partial report so callers can summarise what survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

__all__ = [
    "ERROR_KINDS",
    "CellFailure",
    "RunError",
    "SweepInterrupted",
]

#: The failure taxonomy: an exception inside the cell, a wall-clock
#: timeout enforced by the parent, or a worker process that died without
#: reporting (SIGKILL, OOM, hard crash).
ERROR_KINDS = ("exception", "timeout", "worker-crash")


@dataclass(frozen=True)
class RunError:
    """Why one sweep cell failed, across all of its attempts."""

    #: one of :data:`ERROR_KINDS`
    kind: str
    #: exception class name ("InjectedFault", "CellTimeout", "Signal(9)", ...)
    exc_type: str
    #: one-line human-readable description
    message: str
    #: total attempts made before giving up (1 = no retries granted/left)
    attempts: int
    #: pid of the worker that produced the final failure (0 if unknown)
    worker: int = 0
    #: seconds the final attempt ran before failing
    elapsed: float = 0.0
    #: formatted traceback of the final attempt, when one exists
    traceback: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ERROR_KINDS:
            known = ", ".join(ERROR_KINDS)
            raise ValueError(f"unknown error kind {self.kind!r}; known: {known}")

    def summary(self) -> str:
        """One deterministic line for tables and logs (no pid, no traceback)."""
        return (
            f"{self.kind}: {self.exc_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )

    def to_dict(self) -> dict:
        """JSON-able form for journals, manifests and ``--metrics-json``."""
        return {
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "attempts": self.attempts,
            "worker": self.worker,
            "elapsed_s": self.elapsed,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunError":
        return cls(
            kind=str(payload["kind"]),
            exc_type=str(payload["exc_type"]),
            message=str(payload["message"]),
            attempts=int(payload["attempts"]),
            worker=int(payload.get("worker", 0)),
            elapsed=float(payload.get("elapsed_s", 0.0)),
            traceback=payload.get("traceback"),
        )


class CellFailure(RuntimeError):
    """A sweep aborted because a cell failed and policy said stop.

    Raised with ``keep_going=False`` (the default, preserving the historic
    fail-fast behaviour) as soon as any cell exhausts its retries, or with
    ``keep_going=True`` once more than ``max_failures`` cells have failed.
    """

    def __init__(self, cell: str, error: RunError, reason: str = "") -> None:
        self.cell = cell
        self.error = error
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"sweep cell {cell} failed{detail}: {error.summary()}"
        )


class SweepInterrupted(RuntimeError):
    """A SIGINT stopped the sweep; carries what completed before it landed.

    ``report`` holds only the finished outcomes (cache hits and completed
    simulations, all already flushed to the cache and journal); ``total``
    is the size of the requested grid.
    """

    def __init__(self, report, total: int) -> None:
        self.report = report
        self.total = total
        super().__init__(
            f"sweep interrupted: {len(report.outcomes)}/{total} cells completed"
        )
