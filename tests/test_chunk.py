"""Unit tests for trace chunking helpers."""

import pytest

from repro.trace.chunk import iter_chunks, split_at

from conftest import trace_of


def _trace(n):
    return trace_of([(i % 4, "r", 16 * i) for i in range(n)])


class TestIterChunks:
    def test_exact_division(self):
        chunks = list(iter_chunks(_trace(6), 2))
        assert [len(c) for c in chunks] == [2, 2, 2]

    def test_ragged_tail(self):
        chunks = list(iter_chunks(_trace(7), 3))
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_preserves_order_and_records(self):
        records = _trace(10)
        flattened = [r for chunk in iter_chunks(records, 4) for r in chunk]
        assert flattened == records

    def test_empty_trace_yields_nothing(self):
        assert list(iter_chunks([], 5)) == []

    def test_chunk_size_larger_than_trace(self):
        chunks = list(iter_chunks(_trace(3), 100))
        assert [len(c) for c in chunks] == [3]

    def test_works_on_lazy_iterators(self):
        chunks = list(iter_chunks(iter(_trace(5)), 2))
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            list(iter_chunks(_trace(3), 0))


class TestSplitAt:
    def test_splits_cleanly(self):
        records = _trace(8)
        head, tail = split_at(records, 3)
        assert head == records[:3] and tail == records[3:]

    def test_boundary_splits(self):
        records = _trace(4)
        assert split_at(records, 0) == ([], records)
        assert split_at(records, 4) == (records, [])
        assert split_at(records, 99) == (records, [])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            split_at(_trace(2), -1)
