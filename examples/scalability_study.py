#!/usr/bin/env python3
"""The Section 6 scalability study: how directory schemes grow.

Walks the paper's whole design space:

1. sequential invalidation (DirnNB) vs broadcast (Dir0B);
2. the Dir1B broadcast-cost line cycles(b) = intercept + slope*b;
3. limited-pointer sweeps — DiriB (broadcast fallback) and DiriNB
   (displacement) across pointer counts, including the DirCoarse digit-code
   limited broadcast and the Yen & Fu / Tang variants;
4. directory storage growth from 4 to 1024 caches.

Run:  python examples/scalability_study.py [scale_denominator]
"""

import sys

from repro import (
    broadcast_cost_line,
    directory_storage_bits,
    pipelined_bus,
    simulate,
    standard_trace,
    standard_trace_names,
    sweep_dirib,
    sweep_dirinb,
)
from repro.protocols import Dir1B, DirCoarse, Tang, YenFu, create_protocol


def main() -> None:
    denominator = float(sys.argv[1]) if len(sys.argv) > 1 else 64.0
    scale = 1.0 / denominator
    bus = pipelined_bus()
    factories = {
        name: (lambda name=name: standard_trace(name, scale=scale))
        for name in standard_trace_names()
    }

    print("1. Sequential invalidation vs broadcast (pipelined):")
    for scheme in ("dir0b", "dirnnb"):
        costs = [
            simulate(create_protocol(scheme, 4), factory(), trace_name=name)
            .cycles_per_reference(bus)
            for name, factory in factories.items()
        ]
        print(f"   {scheme:<7} {sum(costs) / len(costs):.4f} cycles/ref")
    print("   (paper: Dir0B 0.0491, DirnNB 0.0499 - nearly identical)")

    print()
    print("2. Dir1B broadcast-cost model:")
    lines = [
        broadcast_cost_line(
            simulate(Dir1B(4), factory(), trace_name=name), bus
        )
        for name, factory in factories.items()
    ]
    intercept = sum(line.intercept for line in lines) / len(lines)
    slope = sum(line.slope for line in lines) / len(lines)
    print(f"   cycles(b) = {intercept:.4f} + {slope:.4f}*b")
    print("   (paper: 0.0485 + 0.0006*b)")
    for b in (1, 4, 16):
        print(f"   at b={b:<3} -> {intercept + slope * b:.4f} cycles/ref")

    print()
    print("3. Limited-pointer sweeps:")
    for point in sweep_dirib(factories, pointer_counts=(1, 2, 4)):
        print("   " + point.render())
    for point in sweep_dirinb(factories, pointer_counts=(1, 2, 4)):
        print("   " + point.render())
    print("   Variants sharing the full map's behaviour:")
    for cls in (DirCoarse, YenFu, Tang):
        costs = [
            simulate(cls(4), factory(), trace_name=name).cycles_per_reference(
                bus
            )
            for name, factory in factories.items()
        ]
        print(
            f"   {cls.label:<10} {sum(costs) / len(costs):.4f} cycles/ref "
            f"({cls.directory_bits_per_block(4)} dir bits/blk at n=4)"
        )

    print()
    print("4. Directory storage (bits per main-memory block):")
    cache_counts = (4, 16, 64, 256, 1024)
    bits = directory_storage_bits(cache_counts)
    header = f"   {'scheme':<20}" + "".join(f"{n:>8}" for n in cache_counts)
    print(header)
    for scheme, row in bits.items():
        print(
            f"   {scheme:<20}"
            + "".join(f"{row[n]:>8}" for n in cache_counts)
        )
    print(
        "\n   The digit code's 2*log2(n) bits make large machines feasible\n"
        "   where the full map's n bits per block do not - at the price of\n"
        "   occasional wasted (limited-broadcast) invalidation messages."
    )

    print()
    print("5. The thesis on a real interconnect (omega network):")
    from repro.analysis.network import network_scaling
    from repro.core import run_standard_comparison
    from repro.interconnect.network import Topology

    comparison = run_standard_comparison(
        ("dirnnb", "dir0b", "wti", "dragon"), scale=scale
    )
    print(
        network_scaling(
            comparison, ("dirnnb", "dir0b", "wti", "dragon"),
            topology=Topology.OMEGA,
        ).render()
    )


if __name__ == "__main__":
    main()
