"""Unit tests for trace records and block addressing."""

import pytest

from repro.trace.record import (
    DEFAULT_BLOCK_SIZE,
    AccessType,
    TraceRecord,
    block_of,
)


class TestAccessType:
    def test_instr_is_not_data(self):
        assert not AccessType.INSTR.is_data

    def test_read_and_write_are_data(self):
        assert AccessType.READ.is_data
        assert AccessType.WRITE.is_data

    def test_values_are_stable_for_binary_format(self):
        # The binary trace format encodes these values; they must not change.
        assert AccessType.INSTR == 0
        assert AccessType.READ == 1
        assert AccessType.WRITE == 2


class TestTraceRecord:
    def test_block_uses_default_block_size(self):
        record = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=35)
        assert record.block() == 35 // DEFAULT_BLOCK_SIZE

    def test_block_with_custom_size(self):
        record = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=128)
        assert record.block(block_size=64) == 2

    def test_kind_predicates(self):
        read = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=0)
        write = TraceRecord(cpu=0, pid=0, access=AccessType.WRITE, address=0)
        instr = TraceRecord(cpu=0, pid=0, access=AccessType.INSTR, address=0)
        assert read.is_read and not read.is_write and not read.is_instruction
        assert write.is_write and not write.is_read
        assert instr.is_instruction and not instr.is_read

    def test_records_are_immutable(self):
        record = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=0)
        with pytest.raises(AttributeError):
            record.address = 5

    def test_default_flags_are_false(self):
        record = TraceRecord(cpu=1, pid=2, access=AccessType.READ, address=16)
        assert not record.is_lock_spin
        assert not record.is_os

    def test_equality_is_structural(self):
        a = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=16)
        b = TraceRecord(cpu=0, pid=0, access=AccessType.READ, address=16)
        assert a == b


class TestBlockOf:
    def test_block_boundaries(self):
        assert block_of(0) == 0
        assert block_of(15) == 0
        assert block_of(16) == 1

    def test_rejects_nonpositive_block_size(self):
        with pytest.raises(ValueError):
            block_of(0, block_size=0)

    @pytest.mark.parametrize("size", [4, 16, 32, 64])
    def test_consecutive_addresses_in_same_block(self, size):
        base = 7 * size
        blocks = {block_of(base + offset, size) for offset in range(size)}
        assert blocks == {7}
