"""Unit tests for the Section 5.1 overhead model."""

import pytest

from conftest import trace_of
from repro.analysis.sensitivity import OverheadLine, overhead_lines, relative_gap
from repro.core.comparison import run_comparison


@pytest.fixture(scope="module")
def comparison():
    trace = trace_of(
        [(0, "r", 0), (1, "r", 0), (0, "w", 0), (1, "r", 0), (1, "w", 0)]
        + [(2, "r", 16), (2, "w", 16), (3, "r", 16)]
    )
    factories = {"T": lambda: iter(list(trace))}
    return run_comparison(("dir0b", "dragon"), factories, n_caches=4)


class TestOverheadLine:
    def test_at_zero_is_base(self):
        line = OverheadLine(scheme="X", base=0.05, transactions_per_ref=0.01)
        assert line.at(0) == 0.05

    def test_linear_in_q(self):
        line = OverheadLine(scheme="X", base=0.05, transactions_per_ref=0.01)
        assert line.at(3) == pytest.approx(0.08)

    def test_negative_q_rejected(self):
        line = OverheadLine(scheme="X", base=0.05, transactions_per_ref=0.01)
        with pytest.raises(ValueError):
            line.at(-1)

    def test_render(self):
        line = OverheadLine(scheme="Dragon", base=0.0336, transactions_per_ref=0.0206)
        assert "0.0336" in line.render()


class TestOverheadLines:
    def test_base_matches_average_cycles(self, comparison):
        from repro.interconnect.bus import pipelined_bus

        lines = overhead_lines(comparison)
        assert lines["dir0b"].base == pytest.approx(
            comparison.average_cycles("dir0b", pipelined_bus())
        )

    def test_slope_is_transaction_rate(self, comparison):
        lines = overhead_lines(comparison)
        assert lines["dragon"].transactions_per_ref == pytest.approx(
            comparison.average_transactions_per_reference("dragon")
        )


class TestRelativeGap:
    def test_paper_shape_gap_shrinks_with_q(self):
        # Using the paper's own coefficients: 46% at q=0, ~12% at q=1.
        lines = {
            "dir0b": OverheadLine("Dir0B", 0.0491, 0.0114),
            "dragon": OverheadLine("Dragon", 0.0336, 0.0206),
        }
        assert relative_gap(lines, q=0) == pytest.approx(46.1, abs=0.5)
        assert relative_gap(lines, q=1) == pytest.approx(11.6, abs=0.5)

    def test_gap_monotonically_shrinks_when_fast_scheme_has_more_transactions(
        self,
    ):
        lines = {
            "dir0b": OverheadLine("Dir0B", 0.05, 0.01),
            "dragon": OverheadLine("Dragon", 0.03, 0.02),
        }
        gaps = [relative_gap(lines, q=q) for q in (0, 1, 2, 4)]
        assert gaps == sorted(gaps, reverse=True)

    def test_zero_fast_cycles_rejected(self):
        lines = {
            "dir0b": OverheadLine("Dir0B", 0.05, 0.01),
            "dragon": OverheadLine("Dragon", 0.0, 0.0),
        }
        with pytest.raises(ValueError):
            relative_gap(lines, q=0)


class TestFiniteSensitivity:
    @pytest.fixture(scope="class")
    def cells(self):
        from repro.core.simulator import simulate
        from repro.memory.cache import CacheGeometry
        from repro.protocols.registry import create_protocol
        from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile

        profile = WorkloadProfile(name="SENS", length=250, seed=3, processes=4)
        trace = list(SyntheticWorkload(profile).records())
        out = []
        for scheme in ("dir0b", "wti"):
            for geometry in (None, CacheGeometry(4, 2)):
                result = simulate(
                    create_protocol(scheme, 4), trace, geometry=geometry
                )
                spec = geometry.spec if geometry else None
                out.append((scheme, spec, result))
        return out

    def test_rows_ordered_smallest_cache_first_infinite_last(self, cells):
        from repro.analysis.sensitivity import finite_sensitivity

        table = finite_sensitivity(cells)
        assert table.geometries == ("4x2", "inf")
        assert table.schemes == ("dir0b", "wti")

    def test_render_is_deterministic_and_complete(self, cells):
        from repro.analysis.sensitivity import finite_sensitivity

        first = finite_sensitivity(cells).render()
        second = finite_sensitivity(list(cells)).render()
        assert first == second
        assert "4x2" in first and "inf" in first
        assert "dir0b" in first and "wti" in first

    def test_finite_row_costs_more(self, cells):
        from repro.analysis.sensitivity import finite_sensitivity

        table = finite_sensitivity(cells)
        for scheme in table.schemes:
            assert table.cycles["4x2"][scheme] > table.cycles["inf"][scheme]

    def test_rejects_empty_and_ragged_input(self, cells):
        from repro.analysis.sensitivity import finite_sensitivity

        with pytest.raises(ValueError, match="at least one"):
            finite_sensitivity([])
        with pytest.raises(ValueError, match="cross"):
            finite_sensitivity(cells[:-1])
