"""Unit tests for the protocol registry, base class and event taxonomy."""

import pytest

from repro.protocols.base import AccessOutcome, CoherenceProtocol
from repro.protocols.directory.tang import Tang
from repro.protocols.directory.dirnnb import DirnNB
from repro.protocols.events import (
    FIRST_REF_EVENTS,
    READ_MISS_EVENTS,
    WRITE_HIT_EVENTS,
    WRITE_MISS_EVENTS,
    Event,
)
from repro.protocols.registry import (
    PAPER_CORE_SCHEMES,
    PROTOCOLS,
    create_protocol,
    protocol_names,
    suggest_protocol,
    unknown_protocol_message,
)
from repro.interconnect.bus import BusOp
from repro.trace.record import AccessType


class TestRegistry:
    def test_paper_core_schemes_registered(self):
        for name in PAPER_CORE_SCHEMES:
            assert name in PROTOCOLS

    def test_create_by_name(self):
        proto = create_protocol("dir0b", 4)
        assert proto.name == "dir0b"
        assert proto.n_caches == 4

    def test_create_is_case_insensitive(self):
        assert create_protocol("DIR0B", 4).name == "dir0b"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="dragon"):
            create_protocol("nonesuch", 4)

    def test_every_factory_builds_a_protocol(self):
        for name in protocol_names():
            proto = create_protocol(name, 4)
            assert isinstance(proto, CoherenceProtocol)
            assert proto.kind in ("directory", "snoopy", "software")
            assert proto.label

    def test_parameterised_variants(self):
        assert create_protocol("dir2b", 8).pointers == 2
        assert create_protocol("dir4nb", 8).pointers == 4

    def test_names_are_sorted(self):
        names = protocol_names()
        assert names == sorted(names)

    @pytest.mark.parametrize(
        "typo,expected",
        [
            ("dir0bb", "dir0b"),
            ("dargon", "dragon"),
            ("WTII", "wti"),
            ("berkley", "berkeley"),
        ],
    )
    def test_suggestions_for_near_misses(self, typo, expected):
        assert suggest_protocol(typo) == expected

    def test_no_suggestion_for_garbage(self):
        assert suggest_protocol("zzzzqqqq") is None
        message = unknown_protocol_message("zzzzqqqq")
        assert "did you mean" not in message
        assert "known:" in message

    def test_unknown_message_is_one_line_with_hint(self):
        message = unknown_protocol_message("dargon")
        assert "\n" not in message
        assert "did you mean 'dragon'?" in message

    def test_create_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="did you mean 'dragon'"):
            create_protocol("dargon", 4)


class TestEventTaxonomy:
    def test_event_sets_are_disjoint(self):
        assert not (READ_MISS_EVENTS & WRITE_MISS_EVENTS)
        assert not (WRITE_HIT_EVENTS & WRITE_MISS_EVENTS)
        assert not (FIRST_REF_EVENTS & READ_MISS_EVENTS)

    def test_read_write_predicates(self):
        assert Event.RM_BLK_CLEAN.is_read
        assert Event.WH_DISTRIB.is_write
        assert not Event.INSTR.is_read and not Event.INSTR.is_write

    def test_miss_predicate(self):
        assert Event.RM_BLK_DIRTY.is_miss
        assert Event.WM_UNCACHED.is_miss
        assert not Event.READ_HIT.is_miss
        assert not Event.RM_FIRST_REF.is_miss  # first refs counted separately

    def test_first_ref_predicate(self):
        assert Event.RM_FIRST_REF.is_first_ref
        assert Event.WM_FIRST_REF.is_first_ref
        assert not Event.RM_BLK_CLEAN.is_first_ref


class TestBaseProtocol:
    def test_rejects_nonpositive_cache_count(self):
        with pytest.raises(ValueError):
            create_protocol("dir0b", 0)

    def test_outcome_op_count(self):
        outcome = AccessOutcome(
            event=Event.RM_BLK_CLEAN,
            ops=((BusOp.MEM_ACCESS, 1), (BusOp.INVALIDATE, 3)),
        )
        assert outcome.op_count(BusOp.INVALIDATE) == 3
        assert outcome.op_count(BusOp.WRITE_BACK) == 0

    def test_overlapped_dir_check_alone_is_not_a_transaction(self):
        outcome = AccessOutcome(
            event=Event.READ_HIT, ops=((BusOp.DIR_CHECK_OVERLAPPED, 1),)
        )
        assert not outcome.used_bus

    def test_any_real_op_is_a_transaction(self):
        outcome = AccessOutcome(
            event=Event.WRITE_HIT, ops=((BusOp.WRITE_THROUGH, 1),)
        )
        assert outcome.used_bus

    def test_evict_clean_block_is_silent(self):
        proto = create_protocol("dir0b", 4)
        proto.access(0, AccessType.READ, 5)
        assert proto.evict(0, 5) == ()
        assert not proto.sharing.is_held(5, 0)

    def test_evict_dirty_block_writes_back(self):
        proto = create_protocol("dir0b", 4)
        proto.access(0, AccessType.WRITE, 5)
        ops = proto.evict(0, 5)
        assert ops == ((BusOp.WRITE_BACK, 1),)

    def test_evict_non_resident_is_noop(self):
        proto = create_protocol("dir0b", 4)
        assert proto.evict(0, 99) == ()

    def test_seen_tracking(self):
        proto = create_protocol("dragon", 4)
        assert not proto.seen(5)
        proto.access(1, AccessType.READ, 5)
        assert proto.seen(5)


class TestTang:
    def test_behaves_like_full_map(self):
        import random

        rng = random.Random(121)
        a, b = Tang(4), DirnNB(4)
        for _ in range(3000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(20)
            out_a, out_b = a.access(cache, access, block), b.access(
                cache, access, block
            )
            assert out_a.event is out_b.event
            assert out_a.ops == out_b.ops

    def test_duplicate_directory_storage_model(self):
        # 4 caches of 1024 direct-mapped 16-byte lines, 32-bit addresses:
        # tag = 32 - 4 - 10 = 18 bits, +1 dirty bit per line.
        bits = Tang.duplicate_directory_bits(
            n_caches=4, cache_lines=1024, address_bits=32, block_size=16
        )
        assert bits == 4 * 1024 * 19

    def test_storage_grows_with_cache_capacity_not_memory(self):
        small = Tang.duplicate_directory_bits(4, cache_lines=256)
        large = Tang.duplicate_directory_bits(4, cache_lines=1024)
        assert large > small
