"""Core simulation engine: the reference pipeline and its wrappers."""

from .comparison import ComparisonResult, run_comparison, run_standard_comparison
from .counters import EventFrequencies, SimulationCounters
from .finite import FiniteCacheResult, simulate_finite
from .invalidation import InvalidationHistogram
from .modelcheck import ModelCheckReport, model_check
from .oracle import (
    CoherenceOracle,
    CoherenceViolation,
    OracleReport,
    validate_coherence,
)
from .pipeline import (
    GeometryStage,
    InfinitePassthrough,
    ReferencePipeline,
    SetAssociativeLRU,
)
from .fastsim import FastPipeline
from .timing import TimingResult, simulate_timed
from .metrics import (
    MissRateDecomposition,
    decompose_miss_rate,
    effective_processors,
)
from .simulator import (
    BACKENDS,
    SimulationResult,
    make_pipeline,
    simulate,
    simulate_chunks,
)

__all__ = [
    "BACKENDS",
    "FastPipeline",
    "make_pipeline",
    "ComparisonResult",
    "run_comparison",
    "run_standard_comparison",
    "EventFrequencies",
    "SimulationCounters",
    "FiniteCacheResult",
    "simulate_finite",
    "InvalidationHistogram",
    "ModelCheckReport",
    "model_check",
    "CoherenceOracle",
    "CoherenceViolation",
    "OracleReport",
    "validate_coherence",
    "GeometryStage",
    "InfinitePassthrough",
    "ReferencePipeline",
    "SetAssociativeLRU",
    "TimingResult",
    "simulate_timed",
    "MissRateDecomposition",
    "decompose_miss_rate",
    "effective_processors",
    "SimulationResult",
    "simulate",
    "simulate_chunks",
]
