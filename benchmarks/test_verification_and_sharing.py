"""Verification and sharing-composition benches (extensions).

1. **Sharing composition** — classify every block of each calibrated trace
   into the private / read-only / synchronisation / producer-consumer /
   migratory / read-write taxonomy; the composition explains the paper's
   Figure 1 and the workload differences of Figure 3.
2. **Coherence verification** — the value-tracking oracle validates every
   paper-core scheme over a real trace slice, and the model checker proves
   depth-bounded coherence exhaustively on a 2-cache configuration.
3. **Competitive update/invalidate hybrid** — the limit sweep positions
   EDWP between Dragon and the invalidation schemes.
"""

from conftest import SCALE
from repro.core import model_check, validate_coherence
from repro.core.simulator import simulate
from repro.protocols import CompetitiveUpdate, create_protocol
from repro.trace import (
    classify_blocks,
    sharing_profile,
    standard_trace,
    standard_trace_names,
    take,
)
from repro.trace.classify import BlockClass


def test_sharing_composition(benchmark, save_result):
    def run():
        return {
            name: sharing_profile(
                classify_blocks(standard_trace(name, scale=SCALE))
            )
            for name in standard_trace_names()
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, profile in profiles.items():
        lines.append(f"{name}:")
        lines.append(profile.render())
        lines.append("")
    save_result("sharing_composition", "\n".join(lines))

    pops, pero = profiles["POPS"], profiles["PERO"]
    # Private blocks dominate by count everywhere.
    for profile in profiles.values():
        assert profile.block_share(BlockClass.PRIVATE) > 0.4
    # The lock-heavy traces devote a visible access share to synchronisation.
    assert pops.access_share(BlockClass.SYNCHRONIZATION) > 0.03
    # PERO shares least — the root cause of its cheap Figure 3 bars.
    assert pero.access_share(BlockClass.SYNCHRONIZATION) < 0.01


def test_coherence_verification(benchmark, save_result):
    schemes = ("dir1nb", "wti", "dir0b", "dragon", "dirnnb", "berkeley")

    def run():
        oracle_reports = {}
        for scheme in schemes:
            trace = take(standard_trace("POPS", scale=SCALE), 30_000)
            oracle_reports[scheme] = validate_coherence(
                create_protocol(scheme, 4), trace
            )
        checks = {
            scheme: model_check(
                lambda n, scheme=scheme: create_protocol(scheme, n),
                n_caches=2,
                n_blocks=1,
                depth=6,
            )
            for scheme in schemes
        }
        return oracle_reports, checks

    oracle_reports, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Value-level coherence validation (30k POPS references):"]
    for scheme, report in oracle_reports.items():
        lines.append(
            f"  {scheme:<9} {report.copies_checked} copy checks, "
            f"{report.writes} writes: coherent"
        )
    lines.append("Exhaustive model check (2 caches, 1 block, depth 6):")
    for scheme, report in checks.items():
        lines.append(f"  {report.render()}")
    save_result("coherence_verification", "\n".join(lines))

    for report in checks.values():
        assert report.ok
        assert report.sequences_explored == sum(4**d for d in range(1, 7))


def test_competitive_limit_sweep(benchmark, pipe_bus, save_result):
    """Where does the update/invalidate hybrid land between Dragon and
    Dir0B as its self-invalidation limit varies?"""

    def run():
        trace = list(take(standard_trace("POPS", scale=SCALE), 60_000))
        costs = {}
        for limit in (1, 2, 4, 8, 10**9):
            result = simulate(CompetitiveUpdate(4, limit=limit), iter(trace))
            costs[limit] = result.cycles_per_reference(pipe_bus)
        dragon = simulate(create_protocol("dragon", 4), iter(trace))
        dir0b = simulate(create_protocol("dir0b", 4), iter(trace))
        return (
            costs,
            dragon.cycles_per_reference(pipe_bus),
            dir0b.cycles_per_reference(pipe_bus),
        )

    costs, dragon, dir0b = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Competitive update/invalidate (EDWP) limit sweep (POPS, pipelined):",
        f"  Dragon (pure update):      {dragon:.4f} cycles/ref",
    ]
    for limit, cost in costs.items():
        label = "inf" if limit > 100 else str(limit)
        lines.append(f"  EDWP limit={label:<4}          {cost:.4f} cycles/ref")
    lines.append(f"  Dir0B (pure invalidate):   {dir0b:.4f} cycles/ref")
    save_result("competitive_limit_sweep", "\n".join(lines))

    # Infinite limit is Dragon exactly.
    infinite = costs[10**9]
    assert infinite == dragon
    # All configurations land in the band spanned by the two pure policies
    # (with a little slack: self-invalidation can also overshoot both).
    band_low = min(dragon, dir0b) * 0.8
    band_high = max(dragon, dir0b) * 1.3
    for cost in costs.values():
        assert band_low < cost < band_high
