"""Unit tests for the system-wide sharing table."""

import pytest

from repro.memory.sharing import NO_OWNER, SharingTable, bit_count, iter_bits


class TestBitHelpers:
    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0b1011) == 3

    def test_iter_bits(self):
        assert list(iter_bits(0b10101)) == [0, 2, 4]
        assert list(iter_bits(0)) == []


class TestHolders:
    def test_initially_uncached(self):
        table = SharingTable()
        assert table.holders(5) == 0
        assert not table.is_held(5, 0)
        assert table.holder_count(5) == 0

    def test_add_and_remove_holder(self):
        table = SharingTable()
        table.add_holder(5, 2)
        assert table.is_held(5, 2)
        table.remove_holder(5, 2)
        assert not table.is_held(5, 2)
        assert table.holders(5) == 0

    def test_remote_holders_excludes_self(self):
        table = SharingTable()
        table.add_holder(5, 0)
        table.add_holder(5, 3)
        assert table.remote_holders(5, 0) == 0b1000
        assert table.remote_holders(5, 3) == 0b0001

    def test_add_holder_is_idempotent(self):
        table = SharingTable()
        table.add_holder(1, 1)
        table.add_holder(1, 1)
        assert table.holder_count(1) == 1

    def test_set_only_holder_removes_others(self):
        table = SharingTable()
        for cache in range(4):
            table.add_holder(9, cache)
        table.set_only_holder(9, 2)
        assert table.holders(9) == 0b0100

    def test_blocks_held_by(self):
        table = SharingTable()
        table.add_holder(1, 0)
        table.add_holder(2, 0)
        table.add_holder(3, 1)
        assert sorted(table.blocks_held_by(0)) == [1, 2]

    def test_cached_blocks_iterates_live_entries(self):
        table = SharingTable()
        table.add_holder(1, 0)
        table.add_holder(2, 1)
        table.remove_holder(1, 0)
        assert dict(table.cached_blocks()) == {2: 0b10}


class TestDirtyTracking:
    def test_set_dirty_requires_holding(self):
        table = SharingTable()
        with pytest.raises(ValueError, match="does not hold"):
            table.set_dirty(4, 0)

    def test_dirty_owner(self):
        table = SharingTable()
        table.add_holder(4, 1)
        table.set_dirty(4, 1)
        assert table.dirty_owner(4) == 1
        assert table.is_dirty(4)
        assert table.is_dirty_in(4, 1)
        assert not table.is_dirty_in(4, 0)

    def test_clear_dirty(self):
        table = SharingTable()
        table.add_holder(4, 1)
        table.set_dirty(4, 1)
        table.clear_dirty(4)
        assert table.dirty_owner(4) == NO_OWNER
        assert table.is_held(4, 1)  # still cached, just clean

    def test_removing_dirty_owner_clears_dirty(self):
        table = SharingTable()
        table.add_holder(4, 1)
        table.set_dirty(4, 1)
        table.remove_holder(4, 1)
        assert table.dirty_owner(4) == NO_OWNER

    def test_set_only_holder_clears_foreign_dirty(self):
        table = SharingTable()
        table.add_holder(4, 0)
        table.add_holder(4, 1)
        table.set_dirty(4, 1)
        table.set_only_holder(4, 0)
        assert table.dirty_owner(4) == NO_OWNER

    def test_set_only_holder_keeps_own_dirty(self):
        table = SharingTable()
        table.add_holder(4, 0)
        table.set_dirty(4, 0)
        table.set_only_holder(4, 0)
        assert table.dirty_owner(4) == 0

    def test_purge(self):
        table = SharingTable()
        table.add_holder(4, 0)
        table.set_dirty(4, 0)
        table.purge(4)
        assert table.holders(4) == 0
        assert table.dirty_owner(4) == NO_OWNER

    def test_invariants_pass_on_consistent_state(self):
        table = SharingTable()
        table.add_holder(1, 0)
        table.set_dirty(1, 0)
        table.check_invariants()
