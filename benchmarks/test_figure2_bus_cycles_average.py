"""Figure 2: range of bus cycle requirements (trace average).

Paper (pipelined endpoints): Dir1NB 0.3210, WTI 0.1466, Dir0B 0.0491,
Dragon 0.0336.
"""

import pytest

from conftest import PAPER_CYCLES_PIPELINED
from repro.analysis.figures import figure2

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_figure2_bus_cycles_average(
    benchmark, comparison, pipe_bus, nonpipe_bus, save_result
):
    figure = benchmark(figure2, comparison, SCHEMES)
    lines = [figure.render(), "", "Pipelined endpoint vs paper:"]
    measured = {}
    for scheme in SCHEMES:
        low = comparison.average_cycles(scheme, pipe_bus)
        high = comparison.average_cycles(scheme, nonpipe_bus)
        measured[scheme] = low
        lines.append(
            f"  {scheme:<8} {low:.4f} (paper {PAPER_CYCLES_PIPELINED[scheme]:.4f})"
            f"   non-pipelined {high:.4f}"
        )
        assert low <= high
    save_result("figure2_bus_cycles_average", "\n".join(lines))

    # Paper ordering: Dragon < Dir0B < WTI << Dir1NB.
    assert (
        measured["dragon"]
        < measured["dir0b"]
        < measured["wti"]
        < measured["dir1nb"]
    )
    # Magnitudes within a 50% band of the paper's values.
    for scheme in SCHEMES:
        assert measured[scheme] == pytest.approx(
            PAPER_CYCLES_PIPELINED[scheme], rel=0.5
        )
