"""Synthetic multiprocessor workload engine.

The paper evaluates coherence schemes on ATUM address traces of three
parallel MACH applications (POPS, THOR, PERO).  Those traces are not
available, so this module implements the closest synthetic equivalent: a
small cooperative execution model of a parallel program whose processes run
real activities against genuinely shared state —

* **compute** bursts over a private working set,
* **shared reads** of read-mostly data (code tables, netlists),
* **migratory** read-modify-write of protected records,
* **producer/consumer** exchanges through mailboxes,
* **test-and-test-and-set locks** whose spin reads arise from *actual*
  contention (a process scheduled while another holds the lock emits spin
  reads, exactly the behaviour Section 4.4 describes), and
* **barriers** implemented as a shared counter with spin-wait.

A round-robin scheduler with randomised run lengths interleaves the process
streams into one global trace, optionally migrating processes between CPUs.
Roughly 10% of activity is operating-system service touching per-CPU kernel
regions plus a small shared-kernel region, matching the paper's traces.

The engine is fully deterministic given a profile's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .record import AccessType, TraceRecord

__all__ = ["Region", "WorkloadProfile", "SyntheticWorkload", "generate_trace"]


@dataclass(frozen=True)
class Region:
    """A contiguous, block-aligned range of the address space."""

    name: str
    base_block: int
    n_blocks: int
    block_size: int

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ValueError(f"region {self.name!r} must have at least 1 block")

    def block_address(self, index: int) -> int:
        """Byte address of the first word of block ``index`` in this region."""
        if not 0 <= index < self.n_blocks:
            raise IndexError(
                f"block {index} out of range for region {self.name!r} "
                f"({self.n_blocks} blocks)"
            )
        return (self.base_block + index) * self.block_size

    def random_block_address(self, rng: random.Random) -> int:
        """Byte address of a uniformly chosen block in this region."""
        return (self.base_block + rng.randrange(self.n_blocks)) * self.block_size

    def hot_block_address(
        self,
        rng: random.Random,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.75,
    ) -> int:
        """A hot/cold skewed block choice (a cheap stand-in for Zipf).

        Most accesses land in a small "hot" prefix of the region, which is
        how shared structures behave in real programs: a few records are
        touched by everyone while the tail is visited occasionally.
        """
        hot_blocks = max(1, int(self.n_blocks * hot_fraction))
        if rng.random() < hot_probability:
            index = rng.randrange(hot_blocks)
        else:
            index = rng.randrange(self.n_blocks)
        return (self.base_block + index) * self.block_size


class _AddressSpaceAllocator:
    """Hands out non-overlapping block-aligned regions."""

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size
        self._next_block = 1  # leave block 0 unused so address 0 never appears

    def allocate(self, name: str, n_blocks: int) -> Region:
        region = Region(name, self._next_block, n_blocks, self.block_size)
        self._next_block += n_blocks
        return region


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable description of one synthetic parallel application.

    The default values are neutral; the calibrated application profiles the
    benchmarks use live in :mod:`repro.trace.workloads`.

    Activity weights are relative probabilities of each activity being chosen
    at the top of a process's main loop.
    """

    name: str
    length: int = 100_000  #: total references to emit
    seed: int = 1988
    processes: int = 4
    processors: int = 4
    block_size: int = 16

    # --- reference mix ---------------------------------------------------
    #: extra instruction fetches emitted per data reference (on average);
    #: one instruction is always emitted per data reference, so 0.0 gives a
    #: 50% instruction share before spins are counted.
    extra_instr_per_data: float = 0.0
    #: probability that a private compute access is a write (vs a read)
    private_write_fraction: float = 0.22
    #: private accesses per compute burst (inclusive range)
    compute_burst: Tuple[int, int] = (4, 12)

    # --- working sets (blocks) -------------------------------------------
    private_blocks_per_process: int = 220
    instr_blocks_per_process: int = 400
    shared_readonly_blocks: int = 96
    migratory_blocks: int = 48
    mailbox_blocks_per_process: int = 16
    kernel_private_blocks_per_cpu: int = 48
    kernel_shared_blocks: int = 16

    # --- activity weights -------------------------------------------------
    w_compute: float = 10.0
    w_shared_read: float = 2.0
    w_migratory: float = 1.0
    w_produce: float = 1.0
    w_consume: float = 1.0
    w_lock: float = 1.5
    w_barrier: float = 0.02

    # --- activity shapes ---------------------------------------------------
    #: shared-readonly blocks read per shared-read activity (inclusive range)
    shared_read_burst: Tuple[int, int] = (2, 6)
    #: consecutive writes to the same shared block per logical update
    #: (multi-word records mean several writes land in one block; only the
    #: first write of a run costs anything in an invalidation protocol)
    shared_write_run: Tuple[int, int] = (2, 4)
    #: read-modify-write operations per migratory activity
    migratory_burst: Tuple[int, int] = (1, 3)
    #: blocks written per produce / read per consume activity
    mailbox_burst: Tuple[int, int] = (1, 4)
    #: number of contended locks in the application
    n_locks: int = 4
    #: blocks of data guarded by each lock (touched in critical sections)
    guarded_blocks_per_lock: int = 24
    #: data accesses performed inside a critical section (inclusive range)
    critical_section: Tuple[int, int] = (2, 6)
    #: extra scheduling turns a lock holder keeps the lock after its critical
    #: section (larger values mean longer spins for contenders)
    lock_hold_turns: Tuple[int, int] = (0, 2)

    # --- system behaviour ---------------------------------------------------
    os_activity_fraction: float = 0.10
    #: probability per scheduling turn that the scheduled process migrates
    migration_rate: float = 0.00002
    #: scheduler run length (references granted per turn, inclusive range)
    run_length: Tuple[int, int] = (8, 24)

    def scaled(self, scale: float) -> "WorkloadProfile":
        """A copy of this profile with length *and* working sets scaled.

        Region sizes scale with the trace length so that first-reference
        rates (a per-block, not per-reference, quantity) stay constant
        across scales; steady-state rates (spins, invalidations) are
        per-reference and unaffected.  Lock/guarded/barrier regions are
        deliberately not scaled — contention structure must not dilute.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")

        def blocks(n: int) -> int:
            return max(8, int(n * scale))

        return dataclass_replace(
            self,
            length=max(1, int(self.length * scale)),
            private_blocks_per_process=blocks(self.private_blocks_per_process),
            instr_blocks_per_process=blocks(self.instr_blocks_per_process),
            shared_readonly_blocks=blocks(self.shared_readonly_blocks),
            migratory_blocks=blocks(self.migratory_blocks),
            mailbox_blocks_per_process=blocks(self.mailbox_blocks_per_process),
            kernel_private_blocks_per_cpu=blocks(
                self.kernel_private_blocks_per_cpu
            ),
            kernel_shared_blocks=blocks(self.kernel_shared_blocks),
        )


def dataclass_replace(profile: WorkloadProfile, **changes) -> WorkloadProfile:
    """``dataclasses.replace`` under a name that reads well at call sites."""
    from dataclasses import replace

    return replace(profile, **changes)


@dataclass
class _Lock:
    """A test-and-test-and-set lock with the blocks it protects."""

    lock_region: Region
    guarded: Region
    holder: Optional[int] = None  #: pid currently holding the lock
    hold_turns_left: int = 0

    @property
    def address(self) -> int:
        return self.lock_region.block_address(0)


@dataclass
class _Barrier:
    """A sense-reversing barrier: one counter block all processes touch."""

    region: Region
    waiting: int = 0
    generation: int = 0

    @property
    def address(self) -> int:
        return self.region.block_address(0)


class _SharedWorld:
    """All the state the synthetic processes genuinely share."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random) -> None:
        alloc = _AddressSpaceAllocator(profile.block_size)
        self.shared_readonly = alloc.allocate(
            "shared_ro", profile.shared_readonly_blocks
        )
        self.migratory = alloc.allocate("migratory", profile.migratory_blocks)
        self.kernel_shared = alloc.allocate(
            "kernel_shared", profile.kernel_shared_blocks
        )
        self.mailboxes: List[Region] = [
            alloc.allocate(f"mailbox{p}", profile.mailbox_blocks_per_process)
            for p in range(profile.processes)
        ]
        self.locks: List[_Lock] = []
        for index in range(profile.n_locks):
            lock_region = alloc.allocate(f"lock{index}", 1)
            guarded = alloc.allocate(
                f"guarded{index}", profile.guarded_blocks_per_lock
            )
            self.locks.append(_Lock(lock_region=lock_region, guarded=guarded))
        self.barrier = _Barrier(alloc.allocate("barrier", 1))
        self.kernel_private: List[Region] = [
            alloc.allocate(f"kernel_cpu{c}", profile.kernel_private_blocks_per_cpu)
            for c in range(profile.processors)
        ]
        self.instr: List[Region] = [
            alloc.allocate(f"instr{p}", profile.instr_blocks_per_process)
            for p in range(profile.processes)
        ]
        self.private: List[Region] = [
            alloc.allocate(f"private{p}", profile.private_blocks_per_process)
            for p in range(profile.processes)
        ]
        self.rng = rng


class _Process:
    """One synthetic process: an endless generator of trace records."""

    def __init__(
        self,
        pid: int,
        profile: WorkloadProfile,
        world: _SharedWorld,
        rng: random.Random,
    ) -> None:
        self.pid = pid
        self.cpu = pid % profile.processors
        self.profile = profile
        self.world = world
        self.rng = rng
        self._instr_cursor = 0
        self._activities = self._build_activity_table()

    # -- record constructors -------------------------------------------------

    def _rec(
        self,
        access: AccessType,
        address: int,
        *,
        spin: bool = False,
        os: bool = False,
    ) -> TraceRecord:
        return TraceRecord(
            cpu=self.cpu,
            pid=self.pid,
            access=access,
            address=address,
            is_lock_spin=spin,
            is_os=os,
        )

    def _instr_fetch(self, os: bool = False) -> TraceRecord:
        region = self.world.instr[self.pid]
        address = region.block_address(self._instr_cursor % region.n_blocks)
        self._instr_cursor += 1
        return self._rec(AccessType.INSTR, address, os=os)

    def _data(
        self,
        access: AccessType,
        address: int,
        *,
        spin: bool = False,
        os: bool = False,
    ) -> Iterator[TraceRecord]:
        """A data access preceded by its instruction fetch(es)."""
        yield self._instr_fetch(os=os)
        extra = self.profile.extra_instr_per_data
        while extra > 0 and self.rng.random() < min(extra, 1.0):
            yield self._instr_fetch(os=os)
            extra -= 1.0
        yield self._rec(access, address, spin=spin, os=os)

    # -- activities -----------------------------------------------------------

    def _compute(self) -> Iterator[TraceRecord]:
        """Private work: uniform reads and writes over the private set.

        Blocks are usually read before they are first written, so each
        private block contributes one write-to-clean transition (a
        fan-out-0 ``wh-blk-cln``) before settling into dirty write hits —
        the population that dominates the paper's Figure 1 bucket 0.
        """
        lo, hi = self.profile.compute_burst
        region = self.world.private[self.pid]
        rng = self.rng
        for _ in range(rng.randint(lo, hi)):
            address = region.random_block_address(rng)
            if rng.random() < self.profile.private_write_fraction:
                yield from self._data(AccessType.WRITE, address)
            else:
                yield from self._data(AccessType.READ, address)

    def _shared_read(self) -> Iterator[TraceRecord]:
        lo, hi = self.profile.shared_read_burst
        region = self.world.shared_readonly
        for _ in range(self.rng.randint(lo, hi)):
            yield from self._data(
                AccessType.READ, region.random_block_address(self.rng)
            )

    def _write_run(self, address: int) -> Iterator[TraceRecord]:
        """One logical update: several consecutive writes into one block."""
        lo, hi = self.profile.shared_write_run
        for _ in range(self.rng.randint(lo, hi)):
            yield from self._data(AccessType.WRITE, address)

    def _migratory(self) -> Iterator[TraceRecord]:
        """Read-modify-write of a shared record (migratory sharing).

        A minority of updates are *blind* (no read first — e.g. overwriting
        a status word), which is what produces genuine write misses to
        blocks living in other caches (``wm-blk-cln``/``wm-blk-drty``).
        """
        lo, hi = self.profile.migratory_burst
        region = self.world.migratory
        for _ in range(self.rng.randint(lo, hi)):
            address = region.hot_block_address(self.rng)
            if self.rng.random() < 0.7:
                yield from self._data(AccessType.READ, address)
            yield from self._write_run(address)

    def _produce(self) -> Iterator[TraceRecord]:
        """Write fresh values into this process's outgoing mailbox."""
        lo, hi = self.profile.mailbox_burst
        region = self.world.mailboxes[self.pid]
        for _ in range(self.rng.randint(lo, hi)):
            yield from self._write_run(region.hot_block_address(self.rng))

    def _consume(self) -> Iterator[TraceRecord]:
        """Read the neighbouring process's mailbox.

        Consumption is pairwise (each process drains its ring neighbour),
        matching the paper's observation that shared blocks usually live in
        very few caches at a time.
        """
        if self.profile.processes < 2:
            return
        partner = (self.pid + 1) % self.profile.processes
        region = self.world.mailboxes[partner]
        lo, hi = self.profile.mailbox_burst
        for _ in range(self.rng.randint(lo, hi)):
            yield from self._data(
                AccessType.READ, region.hot_block_address(self.rng)
            )

    def _lock_activity(self) -> Iterator[TraceRecord]:
        """Acquire a contended lock (spinning if held), work, release.

        Test-and-test-and-set: while the lock is held elsewhere the process
        repeatedly *tests* (spin reads, which hit in its own cache under
        coherent caching); on observing it free it issues the test-and-set
        write.
        """
        lock = self.rng.choice(self.world.locks)
        # Spin until free.  Each yielded read is a lock test; the scheduler
        # interleaves other processes between our turns, so the holder
        # eventually releases (holders release within a bounded number of
        # their own turns).  The free-check and the claim happen with no
        # yield in between, so acquisition is atomic with respect to the
        # cooperative scheduler — exactly one waiter wins each release.
        while True:
            if lock.holder is None or lock.holder == self.pid:
                lock.holder = self.pid
                break
            yield from self._data(AccessType.READ, lock.address, spin=True)
        # The winning test observes the lock free, then test-and-sets it.
        yield from self._data(AccessType.READ, lock.address, spin=True)
        yield from self._data(AccessType.WRITE, lock.address)
        lo, hi = self.profile.lock_hold_turns
        lock.hold_turns_left = self.rng.randint(lo, hi)
        # Critical section: read-modify-write the guarded data.
        cs_lo, cs_hi = self.profile.critical_section
        for _ in range(self.rng.randint(cs_lo, cs_hi)):
            address = lock.guarded.random_block_address(self.rng)
            yield from self._data(AccessType.READ, address)
            if self.rng.random() < 0.4:
                yield from self._write_run(address)
        # Hold across extra scheduler turns to lengthen contender spins.
        # Kernel service keeps occurring while the lock is held.
        for _ in range(lock.hold_turns_left):
            if self.rng.random() < self.profile.os_activity_fraction:
                yield from self._os_service()
            else:
                yield from self._compute()
        # Release: write the lock word.
        yield from self._data(AccessType.WRITE, lock.address)
        lock.holder = None

    def _barrier_activity(self) -> Iterator[TraceRecord]:
        """Arrive at the global barrier and spin until everyone has."""
        barrier = self.world.barrier
        generation = barrier.generation
        # Arrival: read-increment-write the counter.
        yield from self._data(AccessType.READ, barrier.address)
        yield from self._data(AccessType.WRITE, barrier.address)
        barrier.waiting += 1
        if barrier.waiting >= self.profile.processes:
            barrier.waiting = 0
            barrier.generation += 1
            return
        spin_guard = 0
        while barrier.generation == generation:
            yield from self._data(AccessType.READ, barrier.address, spin=True)
            spin_guard += 1
            if spin_guard > 64:
                # Other processes may never arrive (they draw activities
                # independently); give up rather than spin forever.  Real
                # programs reach barriers collectively; the trace-level
                # effect (shared counter ping-pong) has already occurred.
                break

    def _os_service(self) -> Iterator[TraceRecord]:
        """Kernel activity: mostly per-CPU structures plus shared kernel data."""
        region = self.world.kernel_private[self.cpu]
        for _ in range(self.rng.randint(2, 6)):
            address = region.random_block_address(self.rng)
            if self.rng.random() < 0.25:
                yield from self._data(AccessType.WRITE, address, os=True)
            else:
                yield from self._data(AccessType.READ, address, os=True)
        if self.rng.random() < 0.3:
            shared = self.world.kernel_shared
            address = shared.random_block_address(self.rng)
            yield from self._data(AccessType.READ, address, os=True)
            if self.rng.random() < 0.15:
                yield from self._data(AccessType.WRITE, address, os=True)

    # -- main loop ----------------------------------------------------------

    def _build_activity_table(self) -> Sequence[Tuple[float, str]]:
        profile = self.profile
        table = [
            (profile.w_compute, "_compute"),
            (profile.w_shared_read, "_shared_read"),
            (profile.w_migratory, "_migratory"),
            (profile.w_produce, "_produce"),
            (profile.w_consume, "_consume"),
            (profile.w_lock, "_lock_activity"),
            (profile.w_barrier, "_barrier_activity"),
        ]
        return [(weight, name) for weight, name in table if weight > 0]

    def run(self) -> Iterator[TraceRecord]:
        """Endless stream of this process's references."""
        weights = [weight for weight, _ in self._activities]
        names = [name for _, name in self._activities]
        os_fraction = self.profile.os_activity_fraction
        while True:
            if os_fraction > 0 and self.rng.random() < os_fraction:
                yield from self._os_service()
                continue
            name = self.rng.choices(names, weights=weights)[0]
            yield from getattr(self, name)()


class SyntheticWorkload:
    """Generates the interleaved multiprocessor trace for a profile."""

    def __init__(self, profile: WorkloadProfile) -> None:
        if profile.processes <= 0 or profile.processors <= 0:
            raise ValueError("profile needs at least one process and processor")
        self.profile = profile

    def records(self) -> Iterator[TraceRecord]:
        """Lazily generate exactly ``profile.length`` records."""
        profile = self.profile
        rng = random.Random(profile.seed)
        world = _SharedWorld(profile, rng)
        processes = [
            _Process(pid, profile, world, random.Random(rng.randrange(2**62)))
            for pid in range(profile.processes)
        ]
        streams = [process.run() for process in processes]
        emitted = 0
        turn = 0
        lo, hi = profile.run_length
        while emitted < profile.length:
            index = turn % len(processes)
            turn += 1
            process = processes[index]
            if profile.migration_rate > 0 and rng.random() < profile.migration_rate:
                # Migration rebalances: the scheduler swaps this process
                # with whichever process owns the destination CPU, keeping
                # the one-process-per-processor steady state of the paper's
                # 4-process / 4-CPU traces.
                destination = rng.randrange(profile.processors)
                for other in processes:
                    if other is not process and other.cpu == destination:
                        other.cpu = process.cpu
                        break
                process.cpu = destination
            run = rng.randint(lo, hi)
            stream = streams[index]
            for _ in range(run):
                if emitted >= profile.length:
                    return
                yield next(stream)
                emitted += 1


def generate_trace(profile: WorkloadProfile) -> Iterator[TraceRecord]:
    """Convenience wrapper: the trace stream for ``profile``."""
    return SyntheticWorkload(profile).records()
