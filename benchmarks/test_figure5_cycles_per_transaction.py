"""Figure 5: average bus cycles per bus transaction.

Dragon's average transaction is the cheapest (single-word write updates
dominate), so fixed per-transaction overheads hurt it most — the setup for
the Section 5.1 sensitivity analysis.
"""

from repro.analysis.figures import figure5

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_figure5_cycles_per_transaction(benchmark, comparison, pipe_bus, save_result):
    values = benchmark(figure5, comparison, pipe_bus, SCHEMES)
    lines = ["Figure 5: average bus cycles per bus transaction"]
    for label, value in values.items():
        lines.append(f"  {label:<8} {value:.2f}")
    save_result("figure5_cycles_per_transaction", "\n".join(lines))

    # Dragon's transactions are cheaper than Dir0B's on average.
    assert values["Dragon"] < values["Dir0B"]
    # WTI's write-throughs make its transactions cheap too.
    assert values["WTI"] < values["Dir1NB"]
    # Every scheme's transactions cost between 1 and 6 pipelined cycles.
    for value in values.values():
        assert 1.0 <= value <= 6.0
