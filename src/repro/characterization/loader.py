"""Load characterization files: bundled names, TOML paths, sectioned CSV.

Three spellings resolve to a :class:`~repro.characterization.schema.Characterization`:

* a **bundled name** — ``"pipelined"`` or ``"non-pipelined"`` (also
  accepted: ``nonpipelined`` / ``non_pipelined``), the paper's two Table 2
  bus organisations shipped under ``repro/characterization/data/``;
* a **TOML path** — any ``*.toml`` file with ``[model]`` / ``[table1]`` /
  ``[cycles]`` / ``[energy_nj]`` sections (read with :mod:`tomllib` on
  Python ≥ 3.11 and a strict built-in subset parser on 3.10, so the
  package stays dependency-free);
* a **CSV path** — the ESL-CGRA ``characterization.py`` convention:
  ``# section`` marker rows followed by ``key,value`` rows.

Loads are memoized per ``(path, mtime, size)`` so hot paths (every
``pipelined_bus()`` call) cost a dict lookup, while an edited file is
re-read and re-validated on the next load.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .schema import Characterization, CharacterizationError

__all__ = [
    "BUILTIN_CHARACTERIZATIONS",
    "builtin_bus_model",
    "builtin_characterization",
    "builtin_names",
    "load_characterization",
]

_DATA_DIR = Path(__file__).parent / "data"

#: Bundled characterization files, keyed by canonical name.
BUILTIN_CHARACTERIZATIONS = {
    "pipelined": _DATA_DIR / "pipelined.toml",
    "non-pipelined": _DATA_DIR / "non_pipelined.toml",
}

#: Accepted spellings of the bundled names.
_BUILTIN_ALIASES = {
    "pipelined": "pipelined",
    "non-pipelined": "non-pipelined",
    "nonpipelined": "non-pipelined",
    "non_pipelined": "non-pipelined",
}

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - Python 3.10
    _toml = None


def builtin_names() -> Tuple[str, ...]:
    """Canonical names of the bundled characterizations."""
    return tuple(BUILTIN_CHARACTERIZATIONS)


def _parse_toml_subset(text: str, label: str) -> Dict[str, Any]:
    """Strict parser for the TOML subset characterization files use.

    Supports ``[section]`` headers, ``key = value`` lines with double-quoted
    strings, integers, floats and booleans, plus ``#`` comments.  Only used
    when :mod:`tomllib` is unavailable (Python 3.10); bundled files and
    :meth:`Characterization.save` output stay inside the subset.
    """
    payload: Dict[str, Any] = {}
    section: Optional[Dict[str, Any]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name:
                raise CharacterizationError(
                    f"{label}:{lineno}: empty section header"
                )
            section = payload.setdefault(name, {})
            continue
        if "=" not in line:
            raise CharacterizationError(
                f"{label}:{lineno}: expected 'key = value', got {line!r}"
            )
        if section is None:
            raise CharacterizationError(
                f"{label}:{lineno}: key outside any [section]"
            )
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if value.startswith('"'):
            if not value.endswith('"') or len(value) < 2:
                raise CharacterizationError(
                    f"{label}:{lineno}: unterminated string"
                )
            section[key] = (
                value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            )
        elif value in ("true", "false"):
            section[key] = value == "true"
        else:
            try:
                section[key] = (
                    float(value)
                    if any(c in value for c in ".eE")
                    else int(value)
                )
            except ValueError:
                raise CharacterizationError(
                    f"{label}:{lineno}: unparsable value {value!r}"
                ) from None
    return payload


def _parse_toml(text: str, label: str) -> Dict[str, Any]:
    if _toml is not None:
        try:
            return _toml.loads(text)
        except _toml.TOMLDecodeError as error:
            raise CharacterizationError(f"{label}: invalid TOML: {error}") from None
    return _parse_toml_subset(text, label)


def _parse_csv(text: str, label: str) -> Dict[str, Any]:
    """Parse the ESL-style sectioned CSV: ``# section`` rows then key,value."""
    payload: Dict[str, Any] = {}
    section: Optional[Dict[str, Any]] = None
    for lineno, row in enumerate(csv.reader(io.StringIO(text)), start=1):
        if not row or not any(cell.strip() for cell in row):
            continue
        first = row[0].strip()
        if first.startswith("#"):
            name = first.lstrip("#").strip()
            if name:
                section = payload.setdefault(name, {})
            continue
        if section is None:
            raise CharacterizationError(
                f"{label}:{lineno}: row before any '# section' marker"
            )
        if len(row) < 2:
            raise CharacterizationError(
                f"{label}:{lineno}: expected 'key,value', got {row!r}"
            )
        key, value = row[0].strip(), row[1].strip()
        try:
            section[key] = (
                float(value) if any(c in value for c in ".eE") else int(value)
            )
        except ValueError:
            section[key] = value
    return payload


#: (resolved path) -> ((mtime_ns, size), Characterization)
_CACHE: Dict[str, Tuple[Tuple[int, int], Characterization]] = {}


def _load_path(path: Path, source: str) -> Characterization:
    try:
        stat = path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError as error:
        raise CharacterizationError(
            f"cannot read characterization {source!r}: {error}"
        ) from None
    cache_key = str(path.resolve())
    cached = _CACHE.get(cache_key)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise CharacterizationError(
            f"cannot read characterization {source!r}: {error}"
        ) from None
    if path.suffix.lower() == ".csv":
        payload = _parse_csv(text, source)
    else:
        payload = _parse_toml(text, source)
    try:
        characterization = Characterization.from_payload(payload, source=source)
    except CharacterizationError as error:
        raise CharacterizationError(f"{source}: {error}") from None
    _CACHE[cache_key] = (stamp, characterization)
    return characterization


def load_characterization(
    source: Union[str, Path],
) -> Characterization:
    """Resolve a bundled name or a TOML/CSV path to a characterization.

    Raises :class:`CharacterizationError` (a ``ValueError``) naming the
    source for anything missing, unreadable, or schema-invalid.
    """
    if isinstance(source, str):
        canonical = _BUILTIN_ALIASES.get(source.strip().lower())
        if canonical is not None:
            return _load_path(BUILTIN_CHARACTERIZATIONS[canonical], canonical)
    path = Path(source)
    if not path.exists():
        names = ", ".join(builtin_names())
        raise CharacterizationError(
            f"unknown characterization {str(source)!r}: not a bundled name "
            f"({names}) and no such file"
        )
    return _load_path(path, str(source))


def builtin_characterization(name: str) -> Characterization:
    """One of the bundled characterizations by (canonical or alias) name."""
    canonical = _BUILTIN_ALIASES.get(name.strip().lower())
    if canonical is None:
        names = ", ".join(builtin_names())
        raise CharacterizationError(
            f"unknown builtin characterization {name!r}; bundled: {names}"
        )
    return _load_path(BUILTIN_CHARACTERIZATIONS[canonical], canonical)


def builtin_bus_model(name: str):
    """The bundled characterization's cost model (pipelined_bus's backend)."""
    return builtin_characterization(name).bus_model()
