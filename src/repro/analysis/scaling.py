"""Processor-count scaling: the paper's explicit future work.

"An accurate evaluation of the tradeoffs will require traces from a much
larger number of processors" (Section 6) — the ATUM apparatus was limited
to four CPUs.  The synthetic workload engine has no such limit, so this
module re-runs the key Section 6 questions at 4, 8, 16, ... processors:

* does the Figure 1 property (most invalidations touch at most one cache)
  survive as the machine grows?
* how fast does DiriB's broadcast rate grow with processors for fixed i?
* how much miss rate does DiriNB's copy cap cost at scale?

The workload model holds per-process behaviour constant and adds processes
(each brings its own private/instruction regions, mailbox, and a share of
lock contention), which is the natural weak-scaling reading of the paper's
applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.invalidation import InvalidationHistogram
from ..core.simulator import simulate
from ..interconnect.bus import BusCostModel, BusOp
from ..protocols.base import CoherenceProtocol
from ..protocols.directory.dir0b import Dir0B
from ..protocols.directory.dirib import DiriB
from ..protocols.directory.dirinb import DiriNB
from ..trace.synthetic import SyntheticWorkload, WorkloadProfile, dataclass_replace
from ._defaults import _default_bus

__all__ = [
    "ScalingPoint",
    "scale_profile_to_processors",
    "fanout_scaling",
    "dirib_broadcast_scaling",
    "dirinb_miss_scaling",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One machine size in a processor-count sweep."""

    n_processors: int
    cycles_per_reference: float
    data_miss_rate: float
    share_at_most_one_invalidation: float
    mean_invalidation_fanout: float
    broadcasts_per_thousand_refs: float

    def render(self) -> str:
        return (
            f"n={self.n_processors:<3} {self.cycles_per_reference:.4f} cyc/ref, "
            f"miss {self.data_miss_rate:.2f}%, "
            f"P(inval<=1) {100 * self.share_at_most_one_invalidation:.1f}%, "
            f"mean fanout {self.mean_invalidation_fanout:.2f}, "
            f"bcast {self.broadcasts_per_thousand_refs:.2f}/kref"
        )


def scale_profile_to_processors(
    profile: WorkloadProfile, n_processors: int
) -> WorkloadProfile:
    """Weak-scale a workload profile to ``n_processors`` processes.

    Per-process behaviour (activity mix, working-set size per process) is
    held constant; the trace grows proportionally so every process
    contributes the same number of references as in the base profile.
    """
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    factor = n_processors / profile.processes
    return dataclass_replace(
        profile,
        processes=n_processors,
        processors=n_processors,
        length=max(1, int(profile.length * factor)),
    )


def _sweep(
    base_profile: WorkloadProfile,
    processor_counts: Sequence[int],
    make_protocol: Callable[[int], CoherenceProtocol],
    bus: BusCostModel,
) -> List[ScalingPoint]:
    points = []
    for n in processor_counts:
        profile = scale_profile_to_processors(base_profile, n)
        protocol = make_protocol(n)
        result = simulate(
            protocol,
            SyntheticWorkload(profile).records(),
            trace_name=f"{profile.name}@{n}",
        )
        histogram: InvalidationHistogram = result.invalidation_histogram
        points.append(
            ScalingPoint(
                n_processors=n,
                cycles_per_reference=result.cycles_per_reference(bus),
                data_miss_rate=result.frequencies().data_miss_rate,
                share_at_most_one_invalidation=histogram.share_at_most(1),
                mean_invalidation_fanout=histogram.mean_fanout,
                broadcasts_per_thousand_refs=1000.0
                * result.counters.ops.rate(BusOp.BROADCAST_INVALIDATE),
            )
        )
    return points


def fanout_scaling(
    base_profile: WorkloadProfile,
    processor_counts: Sequence[int] = (4, 8, 16),
    bus: Optional[BusCostModel] = None,
) -> List[ScalingPoint]:
    """Does Figure 1's small-fan-out property survive larger machines?

    Runs Dir0B (whose invalidation events define the Figure 1 population)
    at each machine size.
    """
    return _sweep(
        base_profile, processor_counts, Dir0B, _default_bus(bus)
    )


def dirib_broadcast_scaling(
    base_profile: WorkloadProfile,
    pointers: int,
    processor_counts: Sequence[int] = (4, 8, 16),
    bus: Optional[BusCostModel] = None,
) -> List[ScalingPoint]:
    """Broadcast frequency of DiriB(i) as the machine grows."""
    return _sweep(
        base_profile,
        processor_counts,
        lambda n: DiriB(n, pointers=pointers),
        _default_bus(bus),
    )


def dirinb_miss_scaling(
    base_profile: WorkloadProfile,
    pointers: int,
    processor_counts: Sequence[int] = (4, 8, 16),
    bus: Optional[BusCostModel] = None,
) -> List[ScalingPoint]:
    """Extra misses from DiriNB(i)'s copy cap as the machine grows."""
    return _sweep(
        base_profile,
        processor_counts,
        lambda n: DiriNB(n, pointers=pointers),
        _default_bus(bus),
    )
