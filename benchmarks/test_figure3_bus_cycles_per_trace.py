"""Figure 3: bus cycle ranges for the individual traces.

The paper's observation: POPS and THOR are similar, PERO is much cheaper
because its fraction of shared references is much smaller.
"""

from repro.analysis.figures import figure3

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_figure3_bus_cycles_per_trace(
    benchmark, comparison, pipe_bus, save_result
):
    figure = benchmark(figure3, comparison, SCHEMES)
    save_result("figure3_bus_cycles_per_trace", figure.render())

    for scheme in ("dir1nb", "dir0b", "dragon"):
        per_trace = comparison.per_trace_cycles(scheme, pipe_bus)
        # PERO is the cheapest trace for every scheme.
        assert per_trace["PERO"] < per_trace["POPS"]
        assert per_trace["PERO"] < per_trace["THOR"]
    # POPS and THOR are within 2x of each other for the directory schemes.
    dir0b = comparison.per_trace_cycles("dir0b", pipe_bus)
    assert 0.5 < dir0b["POPS"] / dir0b["THOR"] < 2.0
