"""The Section 6 digit-coded "limited broadcast" directory.

To shrink a full map, the paper proposes storing "a word with d digits where
each digit takes on one of three values: 0, 1, and *both*".  A word with no
*both* digits indexes exactly one cache; each *both* digit doubles the set of
caches the word denotes.  The word is maintained as a **superset** of the
caches holding the block, using 2 bits per digit — ``2·log2(n)`` bits total
versus ``n`` presence bits for the full map.

On an invalidation the directory sends a directed message to every cache the
code denotes (a *limited broadcast*): correctness needs only that the
denoted set is a superset of the holders, so some messages are wasted — the
price of the compressed encoding, which the scalability bench quantifies.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ...interconnect.bus import BusOp
from ..base import NO_OPS, OpList
from .dirnnb import DirnNB

__all__ = ["DigitCode", "DirCoarse"]

_ZERO, _ONE, _BOTH = 0, 1, 2


class DigitCode:
    """A d-digit base-{0,1,both} code denoting a set of cache indices."""

    __slots__ = ("digits",)

    def __init__(self, digits: Tuple[int, ...]) -> None:
        if any(digit not in (_ZERO, _ONE, _BOTH) for digit in digits):
            raise ValueError(f"digits must be 0, 1 or both(2): {digits}")
        self.digits = digits

    @classmethod
    def exact(cls, cache: int, width: int) -> "DigitCode":
        """The code denoting exactly ``cache`` (its binary index)."""
        if cache < 0 or (width and cache >= (1 << width)):
            raise ValueError(f"cache {cache} does not fit in {width} digits")
        return cls(tuple((cache >> i) & 1 for i in range(width)))

    def merged_with(self, cache: int) -> "DigitCode":
        """The smallest code denoting this set plus ``cache``."""
        digits = []
        for position, digit in enumerate(self.digits):
            bit = (cache >> position) & 1
            if digit == _BOTH or digit == bit:
                digits.append(digit)
            else:
                digits.append(_BOTH)
        return DigitCode(tuple(digits))

    def contains(self, cache: int) -> bool:
        return all(
            digit == _BOTH or digit == ((cache >> position) & 1)
            for position, digit in enumerate(self.digits)
        )

    @property
    def denoted_count(self) -> int:
        """How many caches this code denotes (2^#both)."""
        return 1 << sum(1 for digit in self.digits if digit == _BOTH)

    def denoted_caches(self) -> Tuple[int, ...]:
        """All cache indices the code denotes, ascending."""
        members = [0]
        for position, digit in enumerate(self.digits):
            if digit == _ONE:
                members = [m | (1 << position) for m in members]
            elif digit == _BOTH:
                members = members + [m | (1 << position) for m in members]
        return tuple(sorted(members))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DigitCode) and self.digits == other.digits

    def __hash__(self) -> int:
        return hash(self.digits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        text = "".join("01*"[digit] for digit in reversed(self.digits))
        return f"DigitCode({text!r})"


class DirCoarse(DirnNB):
    """Full-map behaviour with a 2·log2(n)-bit digit-coded sharer set."""

    name = "coarse"
    label = "DirCoarse"
    kind = "directory"

    def compile_table(self):
        """Not table-compilable: invalidation costs depend on the digit-coded
        sharer superset, which the table state cannot carry."""
        return None

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches)
        self.width = max(1, math.ceil(math.log2(n_caches)))
        #: directory entry per block: the digit-coded sharer superset
        self._codes: Dict[int, DigitCode] = {}
        #: invalidation messages sent to caches that held no copy
        self.wasted_invalidations = 0

    def _admit_holder(self, cache: int, block: int, flushed: bool = False) -> OpList:
        code = self._codes.get(block)
        if code is None:
            self._codes[block] = DigitCode.exact(cache, self.width)
        else:
            self._codes[block] = code.merged_with(cache)
        self.sharing.add_holder(block, cache)
        return NO_OPS

    def _note_exclusive(self, cache: int, block: int) -> None:
        self._codes[block] = DigitCode.exact(cache, self.width)

    def _invalidation_ops(self, fanout: int) -> OpList:
        """Unused: coarse invalidation needs the requester's identity, so the
        write paths are specialised below."""
        return ((BusOp.INVALIDATE, fanout),)

    def _write_hit_clean(self, cache, block):  # type: ignore[override]
        code = self._codes.get(block)
        outcome = super()._write_hit_clean(cache, block)
        if outcome.invalidation_fanout and code is not None:
            outcome = self._recost_invalidations(outcome, code, cache)
        return outcome

    def _write_miss(self, cache, block):  # type: ignore[override]
        code = self._codes.get(block)
        # The base class resets the entry to exact(writer) via _note_exclusive.
        outcome = super()._write_miss(cache, block)
        if outcome.invalidation_fanout and code is not None:
            outcome = self._recost_invalidations(outcome, code, cache)
        return outcome

    def _recost_invalidations(self, outcome, code: DigitCode, requester: int):
        """Charge one message per *denoted* cache instead of per holder."""
        from ..base import AccessOutcome

        targets = [
            target
            for target in code.denoted_caches()
            if target != requester and target < self.n_caches
        ]
        self.wasted_invalidations += max(
            0, len(targets) - outcome.invalidation_fanout
        )
        ops = tuple(
            (op, count) for op, count in outcome.ops if op is not BusOp.INVALIDATE
        )
        if targets:
            ops += ((BusOp.INVALIDATE, len(targets)),)
        return AccessOutcome(
            event=outcome.event,
            ops=ops,
            invalidation_fanout=outcome.invalidation_fanout,
        )

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """Two bits per digit (2·log2 n) plus a dirty bit."""
        return 2 * max(1, math.ceil(math.log2(n_caches))) + 1
