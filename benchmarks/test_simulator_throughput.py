"""Engine performance: references simulated per second.

Not a paper experiment — a genuine performance benchmark of the simulator
core so regressions in the hot path are visible.
"""

from repro.core.simulator import simulate
from repro.protocols import create_protocol
from repro.trace import materialize, standard_trace

_TRACE_LENGTH_SCALE = 1.0 / 256.0  # ~12k references


def _materialized_pops():
    return materialize(standard_trace("POPS", scale=_TRACE_LENGTH_SCALE))


def test_simulator_throughput_dir0b(benchmark):
    trace = _materialized_pops()
    result = benchmark(
        lambda: simulate(create_protocol("dir0b", 4), trace)
    )
    assert result.references == len(trace)


def test_simulator_throughput_dragon(benchmark):
    trace = _materialized_pops()
    result = benchmark(
        lambda: simulate(create_protocol("dragon", 4), trace)
    )
    assert result.references == len(trace)


def test_trace_generation_throughput(benchmark):
    records = benchmark(
        lambda: sum(1 for _ in standard_trace("PERO", scale=_TRACE_LENGTH_SCALE))
    )
    assert records > 10_000
