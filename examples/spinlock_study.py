#!/usr/bin/env python3
"""The Section 5.2 spin-lock study, plus a contention sweep the paper
suggests ("how the number of spins on a lock affect the performance").

Part 1 reproduces the paper's experiment: re-run Dir1NB and Dir0B with all
lock-test reads excluded.  Dir1NB improves dramatically — spinning caches
stop ping-ponging the lock block — while Dir0B is unchanged, because a
spinning cache's test reads hit in its own cache.

Part 2 goes beyond the paper: it sweeps the lock-hold time of a synthetic
workload (longer holds mean more spinning per acquisition) and shows how
Dir1NB's cost grows with contention while Dir0B's barely moves — the
quantitative version of the paper's warning that "software cache
consistency schemes that flush a critical section from the cache after each
use will behave like the Dir1NB scheme".

Run:  python examples/spinlock_study.py [scale_denominator]
"""

import sys

from repro import (
    pipelined_bus,
    simulate,
    spin_lock_impact,
    standard_trace,
    standard_trace_names,
)
from repro.protocols import create_protocol
from repro.trace.synthetic import SyntheticWorkload, WorkloadProfile


def paper_experiment(scale: float) -> None:
    print("Part 1 - the paper's experiment (Section 5.2):")
    factories = {
        name: (lambda name=name: standard_trace(name, scale=scale))
        for name in standard_trace_names()
    }
    impacts = spin_lock_impact(factories)
    for impact in impacts.values():
        print(f"  {impact.render()}")
    print("  (paper: Dir1NB 0.32 -> 0.12; Dir0B unchanged)")


def contention_sweep() -> None:
    print()
    print("Part 2 - lock-contention sweep (hold time vs bus cycles/ref):")
    bus = pipelined_bus()
    print(f"  {'hold turns':<12} {'spin reads':>10} {'Dir1NB':>8} {'Dir0B':>8}")
    for hold in (2, 10, 40, 120):
        profile = WorkloadProfile(
            name=f"hold{hold}",
            length=60_000,
            seed=99,
            w_lock=0.3,
            n_locks=1,
            lock_hold_turns=(hold, hold + 10),
            run_length=(3, 8),
        )
        trace = list(SyntheticWorkload(profile).records())
        spins = sum(record.is_lock_spin for record in trace)
        costs = {}
        for scheme in ("dir1nb", "dir0b"):
            result = simulate(create_protocol(scheme, 4), iter(trace))
            costs[scheme] = result.cycles_per_reference(bus)
        print(
            f"  {hold:<12} {spins:>10} {costs['dir1nb']:>8.4f} "
            f"{costs['dir0b']:>8.4f}"
        )
    print(
        "  Dir1NB degrades with contention (every alternating test read\n"
        "  moves the sole copy); Dir0B's spins hit in the local cache."
    )


def main() -> None:
    denominator = float(sys.argv[1]) if len(sys.argv) > 1 else 64.0
    paper_experiment(1.0 / denominator)
    contention_sweep()


if __name__ == "__main__":
    main()
