"""Unit tests for event counting and Table 4 frequency views."""

import pytest

from repro.core.counters import EventFrequencies, SimulationCounters
from repro.interconnect.bus import BusOp
from repro.protocols.base import AccessOutcome
from repro.protocols.events import Event


def _outcome(event, ops=(), fanout=None):
    return AccessOutcome(event=event, ops=tuple(ops), invalidation_fanout=fanout)


class TestSimulationCounters:
    def test_records_events(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.READ_HIT))
        counters.record(_outcome(Event.READ_HIT))
        counters.record(_outcome(Event.INSTR))
        assert counters.event_count(Event.READ_HIT) == 2
        assert counters.references == 3

    def test_records_bus_ops_and_transactions(self):
        counters = SimulationCounters()
        counters.record(
            _outcome(Event.RM_BLK_CLEAN, ops=[(BusOp.MEM_ACCESS, 1)])
        )
        counters.record(_outcome(Event.READ_HIT))
        assert counters.ops.ops[BusOp.MEM_ACCESS] == 1
        assert counters.ops.transactions == 1
        assert counters.ops.references == 2

    def test_overlapped_dir_check_is_not_a_transaction(self):
        counters = SimulationCounters()
        counters.record(
            _outcome(Event.READ_HIT, ops=[(BusOp.DIR_CHECK_OVERLAPPED, 1)])
        )
        assert counters.ops.transactions == 0

    def test_records_fanout(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.WH_BLK_CLEAN, fanout=2))
        counters.record(_outcome(Event.WH_BLK_CLEAN, fanout=0))
        assert counters.fanout.total == 2
        assert counters.fanout.count(2) == 1


class TestEventFrequencies:
    def _frequencies(self):
        counters = SimulationCounters()
        for _ in range(50):
            counters.record(_outcome(Event.INSTR))
        for _ in range(30):
            counters.record(_outcome(Event.READ_HIT))
        for _ in range(5):
            counters.record(_outcome(Event.RM_BLK_CLEAN))
        for _ in range(2):
            counters.record(_outcome(Event.RM_FIRST_REF))
        for _ in range(10):
            counters.record(_outcome(Event.WH_BLK_DIRTY))
        for _ in range(3):
            counters.record(_outcome(Event.WM_BLK_DIRTY))
        return counters.frequencies()

    def test_percent(self):
        freq = self._frequencies()
        assert freq.percent(Event.INSTR) == 50.0
        assert freq.percent(Event.RM_BLK_CLEAN) == 5.0

    def test_aggregates(self):
        freq = self._frequencies()
        assert freq.read_misses == 5.0
        assert freq.reads == 30.0 + 5.0 + 2.0
        assert freq.write_hits == 10.0
        assert freq.write_misses == 3.0
        assert freq.writes == 13.0

    def test_miss_rates(self):
        freq = self._frequencies()
        assert freq.data_miss_rate == 8.0
        assert freq.data_miss_rate_with_first_refs == 10.0

    def test_rows_sum_consistently(self):
        freq = self._frequencies()
        rows = freq.as_dict()
        assert rows["instr"] + rows["read"] + rows["write"] == pytest.approx(
            100.0
        )
        assert rows["rd-hit"] + rows["rd-miss(rm)"] + rows[
            "rm-first-ref"
        ] == pytest.approx(rows["read"])

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            SimulationCounters().frequencies()
