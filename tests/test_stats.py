"""Unit tests for trace characterisation (Table 3)."""

from conftest import record
from repro.trace.stats import collect_stats, format_table3


def _sample_trace():
    return [
        record(0, kind="i", address=1000),
        record(0, kind="r", address=0),
        record(1, kind="r", address=0),  # block 0 shared by pids 0 and 1
        record(0, kind="w", address=16),
        record(0, kind="r", address=32, spin=True),
        record(1, kind="r", address=48, os=True),
    ]


class TestCollectStats:
    def test_counts(self):
        stats = collect_stats(_sample_trace(), name="sample")
        assert stats.total == 6
        assert stats.instructions == 1
        assert stats.data_reads == 4
        assert stats.data_writes == 1
        assert stats.system == 1
        assert stats.user == 5

    def test_sharing_is_process_level(self):
        stats = collect_stats(_sample_trace())
        assert stats.distinct_blocks == 4
        assert stats.shared_blocks == 1  # only block 0 touched by two pids

    def test_lock_spin_fraction(self):
        stats = collect_stats(_sample_trace())
        assert stats.lock_spin_reads == 1
        assert stats.lock_spin_fraction_of_reads == 0.25

    def test_read_write_ratio(self):
        stats = collect_stats(_sample_trace())
        assert stats.read_write_ratio == 4.0

    def test_read_write_ratio_without_writes_is_infinite(self):
        stats = collect_stats([record(0, kind="r", address=0)])
        assert stats.read_write_ratio == float("inf")

    def test_os_fraction(self):
        stats = collect_stats(_sample_trace())
        assert abs(stats.os_fraction - 1 / 6) < 1e-12

    def test_empty_trace(self):
        stats = collect_stats([])
        assert stats.total == 0
        assert stats.os_fraction == 0.0
        assert stats.lock_spin_fraction_of_reads == 0.0
        assert stats.shared_block_fraction == 0.0

    def test_thousands_view(self):
        stats = collect_stats(_sample_trace(), name="T")
        row = stats.thousands()
        assert row["Trace"] == "T"
        assert row["Refs"] == 6 / 1000.0

    def test_processor_and_process_counts(self):
        stats = collect_stats(_sample_trace())
        assert stats.processes == 2
        assert stats.processors == 2


def test_format_table3_renders_all_rows():
    stats = collect_stats(_sample_trace(), name="SAMPLE")
    text = format_table3([stats])
    assert "SAMPLE" in text
    assert "Refs" in text
    assert len(text.splitlines()) == 2
