"""Shared fixtures for the reproduction benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints it
next to the paper's reference values, and writes the rendered artifact to
``benchmarks/results/``.  The expensive simulations run once per session in
the fixtures below; the ``benchmark`` fixture then times the analysis step
that turns raw counts into the paper's presentation.

Set ``REPRO_BENCH_SCALE`` (default 16) to trade trace length for runtime:
the simulated traces are ``1/scale`` of the paper's ~3.2M references each.
The session comparison goes through the sweep runner, so
``REPRO_BENCH_JOBS`` fans it across worker processes and
``REPRO_BENCH_CACHE`` (a directory path) serves repeated bench sessions
from the on-disk result cache — results are bit-identical either way.

Set ``REPRO_BENCH_HISTORY=1`` to append the session's ``BENCH_*.json``
throughput numbers to the append-only ledger
(``benchmarks/results/history.jsonl``) when the session ends — the same
thing ``python tools/bench_history.py`` does by hand; ``--check`` then
gates on regressions (see docs/observability.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.interconnect import nonpipelined_bus, pipelined_bus
from repro.runner import ResultCache, run_sweep, sweep_grid
from repro.trace import standard_trace, standard_trace_names

#: Denominator applied to the paper's trace lengths.
BENCH_SCALE_DENOMINATOR = float(os.environ.get("REPRO_BENCH_SCALE", "16"))
SCALE = 1.0 / BENCH_SCALE_DENOMINATOR

#: Worker processes for the session sweep (1 = in-process serial).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Optional result-cache directory reused across bench sessions.
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE")

#: All schemes any benchmark needs, simulated once.
BENCH_SCHEMES = (
    "dir1nb",
    "wti",
    "dir0b",
    "dragon",
    "dirnnb",
    "dir1b",
    "berkeley",
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper reference values (pipelined bus) used in printed comparisons.
PAPER_CYCLES_PIPELINED = {
    "dir1nb": 0.3210,
    "wti": 0.1466,
    "dir0b": 0.0491,
    "dragon": 0.0336,
    "dirnnb": 0.0499,
    "dir1b": 0.0491,  # 0.0485 + 0.0006*b at b=1
    "berkeley": 0.0499,  # as printed in the paper (likely a typo; see notes)
}


@pytest.fixture(scope="session")
def comparison():
    """The full cross product: every bench scheme over POPS/THOR/PERO."""
    specs = sweep_grid(BENCH_SCHEMES, scale=SCALE)
    cache = ResultCache(BENCH_CACHE_DIR) if BENCH_CACHE_DIR else None
    return run_sweep(specs, jobs=BENCH_JOBS, cache=cache).comparison()


@pytest.fixture(scope="session")
def core_comparison(comparison):
    """View restricted to the paper's four main-evaluation schemes."""
    return comparison


@pytest.fixture(scope="session")
def pipe_bus():
    return pipelined_bus()


@pytest.fixture(scope="session")
def nonpipe_bus():
    return nonpipelined_bus()


@pytest.fixture(scope="session")
def trace_factories():
    """Fresh-stream factories for experiments that re-simulate."""
    return {
        name: (lambda name=name: standard_trace(name, scale=SCALE))
        for name in standard_trace_names()
    }


def pytest_sessionfinish(session, exitstatus):
    """Opt-in ledger append (REPRO_BENCH_HISTORY=1) after a bench session."""
    if os.environ.get("REPRO_BENCH_HISTORY") != "1" or exitstatus != 0:
        return
    import platform
    import subprocess

    from repro.obs.benchgate import append_history

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        sha = os.environ.get("GITHUB_SHA", "unknown")
    append_history(
        RESULTS_DIR / "history.jsonl",
        RESULTS_DIR,
        sha=sha,
        host=platform.node(),
        scale=BENCH_SCALE_DENOMINATOR,
    )


@pytest.fixture(scope="session")
def save_result():
    """Write a rendered artifact to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _save
