"""Dir1NB: one pointer, no broadcast — a block lives in at most one cache.

The most restrictive scheme the paper evaluates (Section 3): the directory
entry is a single pointer to the cache holding the block, so there can be no
inconsistency across caches.  Every miss moves the (sole) copy: the current
holder is invalidated — after writing the block back if dirty — and the
requester becomes the new holder.

Write hits never use the bus: the holder is by construction the only copy,
and the dirty bit lives in the cache, so the directory need not be told
(Table 5's note: "directory accesses can always be overlapped with memory
accesses in Dir1NB").

Read sharing is this scheme's weakness: two processes spinning on the same
lock bounce the lock block back and forth on every test read (Section 5.2).
"""

from __future__ import annotations

import math
from typing import Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER
from ..base import AccessOutcome, CoherenceProtocol, OpList
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["Dir1NB", "single_copy_rules"]


def single_copy_rules(
    uncached_ops: OpList, dirty_ops: OpList, clean_ops: OpList
) -> tuple:
    """Table rules for the single-copy (take-over-on-miss) schemes.

    Dir1NB and SoftwareFlush share their state-change specification and
    differ only in the ops each take-over branch charges, so the rule
    skeleton is parameterised by those three op lists.  The branch order
    mirrors ``_take_over``: uncached first, then dirty, then clean.
    """
    return (
        Rule(write=False, event=Event.READ_HIT, held=True),
        Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
        Rule(
            write=False,
            event=Event.RM_UNCACHED,
            fclass=0,
            ops=uncached_ops,
            mask="only",
        ),
        Rule(
            write=False,
            event=Event.RM_BLK_DIRTY,
            dirty="remote",
            ops=dirty_ops,
            mask="only",
        ),
        Rule(write=False, event=Event.RM_BLK_CLEAN, ops=clean_ops, mask="only"),
        Rule(write=True, event=Event.WRITE_HIT, held=True, set_dirty=True),
        Rule(
            write=True,
            event=Event.WM_FIRST_REF,
            first=True,
            mask="add",
            set_dirty=True,
        ),
        Rule(
            write=True,
            event=Event.WM_UNCACHED,
            fclass=0,
            ops=uncached_ops,
            mask="only",
            set_dirty=True,
        ),
        Rule(
            write=True,
            event=Event.WM_BLK_DIRTY,
            dirty="remote",
            ops=dirty_ops,
            mask="only",
            set_dirty=True,
        ),
        Rule(
            write=True,
            event=Event.WM_BLK_CLEAN,
            ops=clean_ops,
            mask="only",
            set_dirty=True,
        ),
    )


class Dir1NB(CoherenceProtocol):
    """Single-pointer, no-broadcast directory protocol."""

    name = "dir1nb"
    label = "Dir1NB"
    kind = "directory"

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        return self._take_over(cache, block, dirty_after=False, write=False)

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            # Sole copy by construction; the dirty bit is set locally.
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WRITE_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        return self._take_over(cache, block, dirty_after=True, write=True)

    def _take_over(
        self, cache: int, block: int, dirty_after: bool, write: bool
    ) -> AccessOutcome:
        """Move the sole copy of ``block`` to ``cache``."""
        sharing = self.sharing
        owner = sharing.dirty_owner(block)
        remote = sharing.remote_holders(block, cache)
        if remote == 0:
            # Only possible if the block has never been cached; once cached,
            # a block always has exactly one holder under this scheme.
            event = Event.WM_UNCACHED if write else Event.RM_UNCACHED
            ops = ((BusOp.MEM_ACCESS, 1), (BusOp.DIR_CHECK_OVERLAPPED, 1))
        elif owner != NO_OWNER:
            event = Event.WM_BLK_DIRTY if write else Event.RM_BLK_DIRTY
            ops = (
                (BusOp.FLUSH_REQUEST, 1),
                (BusOp.WRITE_BACK, 1),
                (BusOp.INVALIDATE, 1),
                (BusOp.DIR_CHECK_OVERLAPPED, 1),
            )
        else:
            event = Event.WM_BLK_CLEAN if write else Event.RM_BLK_CLEAN
            ops = (
                (BusOp.MEM_ACCESS, 1),
                (BusOp.INVALIDATE, 1),
                (BusOp.DIR_CHECK_OVERLAPPED, 1),
            )
        sharing.purge(block)
        sharing.add_holder(block, cache)
        if dirty_after:
            sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops)

    def compile_table(self) -> Optional[TransitionTable]:
        # The reference hardcodes one INVALIDATE per take-over: under a
        # single-pointer directory the displaced copy is always exactly one.
        return compile_rules(
            self.name,
            single_copy_rules(
                ((BusOp.MEM_ACCESS, 1), (BusOp.DIR_CHECK_OVERLAPPED, 1)),
                (
                    (BusOp.FLUSH_REQUEST, 1),
                    (BusOp.WRITE_BACK, 1),
                    (BusOp.INVALIDATE, 1),
                    (BusOp.DIR_CHECK_OVERLAPPED, 1),
                ),
                (
                    (BusOp.MEM_ACCESS, 1),
                    (BusOp.INVALIDATE, 1),
                    (BusOp.DIR_CHECK_OVERLAPPED, 1),
                ),
            ),
        )

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """A cache pointer plus a cached/uncached valid bit."""
        return max(1, math.ceil(math.log2(n_caches))) + 1
