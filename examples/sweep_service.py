#!/usr/bin/env python3
"""Serving sweeps: run the coherence job API and talk to it over HTTP.

Starts an in-process sweep service (the same machinery behind
``repro-coherence serve``), submits a two-protocol sweep through the
HTTP client, streams its progress events, fetches the bit-exact result
payload, then submits the *same* grid a second time to show the cache
dedupe: the repeat costs zero simulations and is terminal in the submit
response.  Finishes with a graceful drain.

Run:  python examples/sweep_service.py [scale_denominator]

The optional argument divides the paper's ~3.2M-reference trace lengths
(default 128, a few seconds of runtime).
"""

import sys
import tempfile
from pathlib import Path

from repro.service import JobManager, ServiceClient, start_background


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    root = Path(tempfile.mkdtemp(prefix="sweep-service-"))
    manager = JobManager(root, workers=2)
    handle = start_background(manager)  # ephemeral port on localhost
    client = ServiceClient(handle.base_url, client="example")
    print(f"service listening on {handle.base_url}")

    request = {
        "schema": 1,
        "sweep": {
            "protocols": ["dir0b", "dragon"],
            "traces": ["POPS"],
            "scale": scale,
        },
    }

    job = client.submit(request)
    print(f"submitted sweep {job['id']} ({job['cells']} cells)")
    for event in client.events(job["id"]):
        if event["event"] == "journal":
            record = event["record"]
            print(f"  cell {record.get('cell', '?')}: {record.get('status')}")
        elif event["event"] == "end":
            print(f"  job ended: {event['state']}")

    result = client.result(job["id"])
    print(
        f"first run: {result['simulated']} simulated, "
        f"{result['cache_hits']} cache hits, "
        f"{result['total_references']:,} references"
    )
    for outcome in result["outcomes"]:
        signature = outcome["signature"]
        print(
            f"  {outcome['cell_id']}: {signature['references']} refs, "
            f"{signature['transactions']} bus transactions"
        )

    repeat = client.submit(request)
    print(
        f"repeat submission {repeat['id']}: state={repeat['state']} "
        f"deduped={repeat['deduped']}"
    )
    result2 = client.result(repeat["id"])
    print(
        f"second run: {result2['simulated']} simulated, "
        f"{result2['cache_hits']} cache hits (served from cache)"
    )
    assert result2["simulated"] == 0
    assert [o["signature"] for o in result2["outcomes"]] == [
        o["signature"] for o in result["outcomes"]
    ]
    print("signatures bit-identical across submissions")

    hit_line = next(
        line
        for line in client.metrics().splitlines()
        if line.startswith("repro_cache_hit_total")
    )
    print(f"metrics: {hit_line}")

    handle.stop(drain=True)
    print("drained cleanly")


if __name__ == "__main__":
    main()
