"""Yen & Fu's single-bit refinement of the full-map directory.

The central directory is unchanged from Censier & Feautrier, but every cache
additionally keeps a **single bit** per block that is set if and only if that
cache holds the only copy in the system (Section 2).  A write hit to a clean
block whose single bit is set can then proceed without completing a
directory access — saving the standalone directory check that Dir0B/DirnNB
pay on every such write.

The catch the paper points out: "extra bus bandwidth is consumed to keep the
single bits updated in all the caches.  Thus, the scheme saves central
directory accesses, but does not reduce the number of bus accesses."  This
implementation charges one :data:`BusOp.SINGLE_BIT_UPDATE` cycle whenever a
previously-sole holder must be told it is no longer alone (except when that
holder is already the target of the flush request, which carries the news
for free).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...interconnect.bus import BusOp
from ..base import NO_OPS, AccessOutcome, OpList
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules
from .dirnnb import DirnNB

__all__ = ["YenFu"]

_MEM_OV: OpList = ((BusOp.MEM_ACCESS, 1), (BusOp.DIR_CHECK_OVERLAPPED, 1))

#: YenFu's transition function with the single bit as the table's aux
#: annotation (aux "self" = this cache's single bit is set for the block).
_YENFU_RULES = (
    # reads
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(
        write=False, event=Event.RM_FIRST_REF, first=True, mask="add",
        aux_action="self",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=(
            (BusOp.FLUSH_REQUEST, 1),
            (BusOp.WRITE_BACK, 1),
            (BusOp.DIR_CHECK_OVERLAPPED, 1),
        ),
        clear_dirty=True,
        mask="add",
        aux_action="clear",  # flush carried the news: no SINGLE_BIT_UPDATE
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        aux="other",
        ops=_MEM_OV + ((BusOp.SINGLE_BIT_UPDATE, 1),),
        mask="add",
        aux_action="clear",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=_MEM_OV,
        mask="add",
        aux_action="clear",
    ),
    Rule(
        write=False, event=Event.RM_UNCACHED, ops=_MEM_OV, mask="add",
        aux_action="self",
    ),
    # writes
    Rule(write=True, event=Event.WH_BLK_DIRTY, held=True, dirty="local"),
    Rule(
        # The single bit is set: no directory check needed at all.
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        aux="self",
        fanout="F",
        set_dirty=True,
    ),
    Rule(
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        fclass=(1, 2),
        ops=((BusOp.DIR_CHECK, 1),),
        invalidates_remote=True,
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="self",
    ),
    Rule(
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        ops=((BusOp.DIR_CHECK, 1),),
        fanout="F",
        set_dirty=True,
        aux_action="self",
    ),
    Rule(
        write=True,
        event=Event.WM_FIRST_REF,
        first=True,
        mask="add",
        set_dirty=True,
        aux_action="self",
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=(
            (BusOp.FLUSH_REQUEST, 1),
            (BusOp.WRITE_BACK, 1),
            (BusOp.INVALIDATE, 1),
            (BusOp.DIR_CHECK_OVERLAPPED, 1),
        ),
        mask="only",
        set_dirty=True,
        aux_action="self",
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=_MEM_OV,
        invalidates_remote=True,
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="self",
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=_MEM_OV,
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="self",
    ),
)


class YenFu(DirnNB):
    """Full-map directory plus per-cache single ("only copy") bits."""

    name = "yenfu"
    label = "YenFu"
    kind = "directory"

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches)
        #: block -> cache whose single bit is set (at most one, by definition)
        self._single: Dict[int, int] = {}
        #: standalone directory checks avoided thanks to the single bit
        self.saved_directory_checks = 0

    def _admit_holder(self, cache: int, block: int, flushed: bool = False) -> OpList:
        sharing = self.sharing
        ops: OpList = NO_OPS
        sole = self._single.pop(block, None)
        if sole is not None and sole != cache:
            # The old sole holder's single bit must be cleared.  If the block
            # was dirty there, the flush request we just sent doubles as the
            # notification; otherwise it costs a bus cycle.
            if not flushed:
                ops = ((BusOp.SINGLE_BIT_UPDATE, 1),)
        sharing.add_holder(block, cache)
        if sharing.holder_count(block) == 1:
            self._single[block] = cache
        return ops

    def _note_exclusive(self, cache: int, block: int) -> None:
        # All other copies were just invalidated; the directory's reply to
        # the invalidation request tells the writer it is sole, for free.
        self._single[block] = cache

    def _write_hit_clean(self, cache: int, block: int) -> AccessOutcome:
        if self._single.get(block) == cache:
            self.saved_directory_checks += 1
            self.sharing.set_dirty(block, cache)
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN, ops=NO_OPS, invalidation_fanout=0
            )
        return super()._write_hit_clean(cache, block)

    def evict(self, cache: int, block: int) -> OpList:
        if self._single.get(block) == cache:
            del self._single[block]
        return super().evict(cache, block)

    def compile_table(self) -> Optional[TransitionTable]:
        # Note the fast backend does not maintain the per-instance
        # ``saved_directory_checks`` diagnostic.
        return compile_rules(
            self.name,
            _YENFU_RULES,
            invalidation=self._invalidation_spec(),
            has_aux=True,
        )

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """Central directory identical to the full map (the single bits live
        in the caches)."""
        return n_caches + 1
