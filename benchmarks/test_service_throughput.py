"""Service-path performance: references per second, submit to result.

Not a paper experiment — times the full coherence-as-a-service path
(HTTP submit -> queue -> child sweep process -> result fetch) and emits
``benchmarks/results/BENCH_service.json`` so the bench-history gate
(``tools/bench_history.py --check``) watches the serving overhead the
same way it watches the simulator core.  Correctness is asserted before
any timing claim: the served counter signatures must equal a direct
``run_sweep`` of the same grid.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from conftest import BENCH_SCALE_DENOMINATOR, RESULTS_DIR

from repro.obs import MetricsRegistry
from repro.runner.sweep import run_sweep
from repro.service import (
    JobManager,
    ServiceClient,
    parse_request,
    start_background,
)

#: The service benchmark's own grid — two protocols, one trace, at the
#: session's bench scale (REPRO_BENCH_SCALE, default 16).
_REQUEST = {
    "schema": 1,
    "sweep": {
        "protocols": ["dir0b", "dragon"],
        "traces": ["POPS"],
        "scale": BENCH_SCALE_DENOMINATOR,
    },
}


def test_emit_bench_service_json(save_result):
    """Publish service-path timings as BENCH_service.json via the registry."""
    registry = MetricsRegistry()
    root = Path(tempfile.mkdtemp(prefix="bench-service-"))
    manager = JobManager(root, workers=2)
    handle = start_background(manager)
    client = ServiceClient(handle.base_url, client="bench")
    try:
        submit_timer = registry.timer("service.submit_to_result.seconds")
        with submit_timer.time():
            job = client.submit(_REQUEST)
            done = client.wait(job["id"], timeout=600)
            result = client.result(job["id"])
        assert done["state"] == "finished"
        assert result["simulated"] == 2

        # Prove the served payload bit-identical to a direct run before
        # recording any throughput number.
        direct = run_sweep(list(parse_request(_REQUEST).specs))
        assert [entry["signature"] for entry in result["outcomes"]] == [
            outcome.result.counters.signature()
            for outcome in direct.outcomes
        ]

        references = result["total_references"]
        wall = submit_timer.total_seconds
        refs_per_sec = references / wall
        registry.gauge("service.submit_to_result.refs_per_sec").set(
            refs_per_sec
        )
        registry.gauge("service.references").set(references)

        # The dedupe path: an identical grid served from the cache, no
        # simulation — this is the latency a warm client sees.
        dedupe_start = time.perf_counter()
        repeat = client.submit(_REQUEST)
        repeat_result = client.result(repeat["id"])
        dedupe_seconds = time.perf_counter() - dedupe_start
        assert repeat["deduped"] is True
        assert repeat_result["simulated"] == 0
        registry.gauge("service.dedupe_round_trip.seconds").set(
            dedupe_seconds
        )
    finally:
        handle.stop(drain=False)

    # Recovery latency: restart a manager over the same root (journal has
    # the finished jobs) and time how long journal replay takes before the
    # service admits work again.  This is the startup cost a crash adds.
    recovery_start = time.perf_counter()
    reborn = JobManager(root, workers=2, registry=registry)
    assert reborn.wait_recovered(60)
    recovery_seconds = time.perf_counter() - recovery_start
    try:
        assert registry.counter_value("service.jobs_recovered") >= 1
        registry.gauge("service.recovery.seconds").set(recovery_seconds)
    finally:
        reborn.shutdown()

    RESULTS_DIR.mkdir(exist_ok=True)
    registry.write_json(RESULTS_DIR / "BENCH_service.json")
    save_result(
        "service_throughput",
        "\n".join(
            [
                "Service path (submit -> result over HTTP, "
                f"{references:,} refs)",
                f"cold     {wall * 1e3:10.2f}ms   "
                f"{refs_per_sec:12,.0f} refs/sec",
                f"warm     {dedupe_seconds * 1e3:10.2f}ms   "
                "(dedupe: 0 simulations)",
                f"recover  {recovery_seconds * 1e3:10.2f}ms   "
                "(journal replay on restart)",
            ]
        ),
    )
