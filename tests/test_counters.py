"""Unit tests for event counting and Table 4 frequency views."""

import pytest

from repro.core.counters import SimulationCounters
from repro.interconnect.bus import BusOp
from repro.protocols.base import AccessOutcome
from repro.protocols.events import Event


def _outcome(event, ops=(), fanout=None):
    return AccessOutcome(event=event, ops=tuple(ops), invalidation_fanout=fanout)


class TestSimulationCounters:
    def test_records_events(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.READ_HIT))
        counters.record(_outcome(Event.READ_HIT))
        counters.record(_outcome(Event.INSTR))
        assert counters.event_count(Event.READ_HIT) == 2
        assert counters.references == 3

    def test_records_bus_ops_and_transactions(self):
        counters = SimulationCounters()
        counters.record(
            _outcome(Event.RM_BLK_CLEAN, ops=[(BusOp.MEM_ACCESS, 1)])
        )
        counters.record(_outcome(Event.READ_HIT))
        assert counters.ops.ops[BusOp.MEM_ACCESS] == 1
        assert counters.ops.transactions == 1
        assert counters.ops.references == 2

    def test_overlapped_dir_check_is_not_a_transaction(self):
        counters = SimulationCounters()
        counters.record(
            _outcome(Event.READ_HIT, ops=[(BusOp.DIR_CHECK_OVERLAPPED, 1)])
        )
        assert counters.ops.transactions == 0

    def test_records_fanout(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.WH_BLK_CLEAN, fanout=2))
        counters.record(_outcome(Event.WH_BLK_CLEAN, fanout=0))
        assert counters.fanout.total == 2
        assert counters.fanout.count(2) == 1


class TestTransactionSemantics:
    """Pin the transaction-counting contract: transactions == used_bus.

    A reference is a bus transaction exactly when its outcome carries at
    least one non-overlapped op with a positive count.  Empty op lists,
    zero-count ops, and overlapped-only directory checks are all free.
    """

    def test_empty_op_list_is_not_a_transaction(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.READ_HIT))
        assert counters.ops.transactions == 0

    def test_zero_count_op_is_not_a_transaction(self):
        counters = SimulationCounters()
        counters.record(_outcome(Event.WH_BLK_CLEAN, ops=[(BusOp.INVALIDATE, 0)]))
        assert counters.ops.transactions == 0
        assert BusOp.INVALIDATE not in counters.ops.ops

    def test_mixed_ops_count_one_transaction(self):
        counters = SimulationCounters()
        counters.record(
            _outcome(
                Event.RM_BLK_DIRTY,
                ops=[
                    (BusOp.DIR_CHECK_OVERLAPPED, 1),
                    (BusOp.FLUSH_REQUEST, 1),
                    (BusOp.WRITE_BACK, 1),
                ],
            )
        )
        assert counters.ops.transactions == 1

    def test_transactions_equal_bus_using_outcomes(self):
        """The counter must agree with used_bus outcome by outcome."""
        outcomes = [
            _outcome(Event.READ_HIT),
            _outcome(Event.READ_HIT, ops=[(BusOp.DIR_CHECK_OVERLAPPED, 1)]),
            _outcome(Event.RM_BLK_CLEAN, ops=[(BusOp.MEM_ACCESS, 1)]),
            _outcome(Event.WH_BLK_CLEAN, ops=[(BusOp.INVALIDATE, 2)], fanout=2),
            _outcome(Event.WH_BLK_CLEAN, ops=[(BusOp.INVALIDATE, 0)], fanout=0),
        ]
        counters = SimulationCounters()
        for outcome in outcomes:
            counters.record(outcome)
        expected = sum(1 for outcome in outcomes if outcome.used_bus)
        assert counters.ops.transactions == expected == 2

    def test_every_protocol_keeps_transactions_consistent(self):
        """Audit: over a real trace, no protocol emits a bus-using outcome
        whose op list would have been skipped by the old empty-list guard,
        and the transaction tally always equals the used_bus count."""
        from repro.protocols.registry import PROTOCOLS, create_protocol
        from repro.trace import standard_trace

        trace = list(standard_trace("POPS", scale=1 / 1024))
        for name in sorted(PROTOCOLS):
            protocol = create_protocol(name, 4)
            counters = SimulationCounters()
            used_bus = 0
            units = {}
            for record in trace:
                unit = units.setdefault(record.pid, len(units))
                outcome = protocol.access(unit, record.access, record.address // 16)
                if outcome.used_bus:
                    assert outcome.ops, (
                        f"{name}: bus-using outcome with empty op list"
                    )
                    used_bus += 1
                counters.record(outcome)
            assert counters.ops.transactions == used_bus, name


class TestCounterMerge:
    def test_merge_sums_every_field(self):
        a = SimulationCounters()
        a.record(_outcome(Event.READ_HIT))
        a.record(_outcome(Event.RM_BLK_CLEAN, ops=[(BusOp.MEM_ACCESS, 1)]))
        a.record(_outcome(Event.WH_BLK_CLEAN, ops=[(BusOp.INVALIDATE, 1)], fanout=1))
        b = SimulationCounters()
        b.record(_outcome(Event.READ_HIT))
        b.record(_outcome(Event.WH_BLK_CLEAN, ops=[(BusOp.INVALIDATE, 2)], fanout=2))
        merged = a.merge(b)
        assert merged is a
        assert a.event_count(Event.READ_HIT) == 2
        assert a.ops.references == 5
        assert a.ops.transactions == 3
        assert a.ops.ops[BusOp.INVALIDATE] == 3
        assert a.fanout.as_dict() == {1: 1, 2: 1}

    def test_iadd_is_merge(self):
        a = SimulationCounters()
        a.record(_outcome(Event.READ_HIT))
        b = SimulationCounters()
        b.record(_outcome(Event.INSTR))
        a += b
        assert a.references == 2

    def test_merge_with_empty_is_identity(self):
        a = SimulationCounters()
        a.record(_outcome(Event.RM_BLK_DIRTY, ops=[(BusOp.WRITE_BACK, 1)]))
        before = (dict(a.events), dict(a.ops.ops), a.ops.transactions)
        a.merge(SimulationCounters())
        assert (dict(a.events), dict(a.ops.ops), a.ops.transactions) == before


class TestEventFrequencies:
    def _frequencies(self):
        counters = SimulationCounters()
        for _ in range(50):
            counters.record(_outcome(Event.INSTR))
        for _ in range(30):
            counters.record(_outcome(Event.READ_HIT))
        for _ in range(5):
            counters.record(_outcome(Event.RM_BLK_CLEAN))
        for _ in range(2):
            counters.record(_outcome(Event.RM_FIRST_REF))
        for _ in range(10):
            counters.record(_outcome(Event.WH_BLK_DIRTY))
        for _ in range(3):
            counters.record(_outcome(Event.WM_BLK_DIRTY))
        return counters.frequencies()

    def test_percent(self):
        freq = self._frequencies()
        assert freq.percent(Event.INSTR) == 50.0
        assert freq.percent(Event.RM_BLK_CLEAN) == 5.0

    def test_aggregates(self):
        freq = self._frequencies()
        assert freq.read_misses == 5.0
        assert freq.reads == 30.0 + 5.0 + 2.0
        assert freq.write_hits == 10.0
        assert freq.write_misses == 3.0
        assert freq.writes == 13.0

    def test_miss_rates(self):
        freq = self._frequencies()
        assert freq.data_miss_rate == 8.0
        assert freq.data_miss_rate_with_first_refs == 10.0

    def test_rows_sum_consistently(self):
        freq = self._frequencies()
        rows = freq.as_dict()
        assert rows["instr"] + rows["read"] + rows["write"] == pytest.approx(
            100.0
        )
        assert rows["rd-hit"] + rows["rd-miss(rm)"] + rows[
            "rm-first-ref"
        ] == pytest.approx(rows["read"])

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            SimulationCounters().frequencies()
