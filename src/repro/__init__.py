"""repro — trace-driven evaluation of directory schemes for cache coherence.

A from-scratch reproduction of Agarwal, Simoni, Hennessy & Horowitz,
*"An Evaluation of Directory Schemes for Cache Coherence"* (ISCA 1988):
a multiprocessor trace-driven simulator, the full Dir_iX directory protocol
family plus the snoopy schemes the paper compares against, the paper's bus
cost models, synthetic workloads calibrated to the paper's traces, and an
analysis layer that regenerates every table and figure.

Quick start::

    from repro import run_standard_comparison, pipelined_bus, table4

    comparison = run_standard_comparison()          # 4 schemes x 3 traces
    print(table4(comparison).render())              # the paper's Table 4
    bus = pipelined_bus()
    print(comparison.average_cycles("dir0b", bus))  # ~0.05 cycles/ref

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from .analysis import (
    FiniteSensitivityTable,
    broadcast_cost_line,
    directory_storage_bits,
    figure1,
    finite_sensitivity,
    figure2,
    figure3,
    figure4,
    figure5,
    overhead_lines,
    relative_gap,
    spin_lock_impact,
    sweep_dirib,
    sweep_dirinb,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from .core import (
    ComparisonResult,
    InvalidationHistogram,
    SimulationResult,
    decompose_miss_rate,
    effective_processors,
    run_comparison,
    run_standard_comparison,
    simulate,
    simulate_chunks,
    simulate_finite,
)
from .runner import (
    INFINITE_GEOMETRY,
    ResultCache,
    RunOutcome,
    RunSpec,
    SweepReport,
    normalize_geometry,
    run_sweep,
    sweep_grid,
)
from .interconnect import (
    BusCostModel,
    BusOp,
    BusTiming,
    nonpipelined_bus,
    pipelined_bus,
    standard_buses,
)
from .memory import CacheGeometry, FiniteCache, InfiniteCache, LineState, SharingTable
from .protocols import (
    PAPER_CORE_SCHEMES,
    PROTOCOLS,
    WTI,
    Berkeley,
    CoherenceProtocol,
    Dir0B,
    Dir1B,
    Dir1NB,
    DirCoarse,
    DiriB,
    DiriNB,
    DirnNB,
    Dragon,
    Event,
    Tang,
    YenFu,
    create_protocol,
    protocol_names,
)
from .trace import (
    AccessType,
    SharingModel,
    SyntheticWorkload,
    TraceRecord,
    WorkloadProfile,
    collect_stats,
    exclude_lock_spins,
    generate_trace,
    standard_profiles,
    standard_trace,
    standard_trace_names,
)

from ._version import __version__

__all__ = [
    "FiniteSensitivityTable",
    "broadcast_cost_line",
    "directory_storage_bits",
    "figure1",
    "finite_sensitivity",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "overhead_lines",
    "relative_gap",
    "spin_lock_impact",
    "sweep_dirib",
    "sweep_dirinb",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "ComparisonResult",
    "InvalidationHistogram",
    "SimulationResult",
    "decompose_miss_rate",
    "effective_processors",
    "run_comparison",
    "run_standard_comparison",
    "simulate",
    "simulate_chunks",
    "simulate_finite",
    "INFINITE_GEOMETRY",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "SweepReport",
    "normalize_geometry",
    "run_sweep",
    "sweep_grid",
    "BusCostModel",
    "BusOp",
    "BusTiming",
    "nonpipelined_bus",
    "pipelined_bus",
    "standard_buses",
    "CacheGeometry",
    "FiniteCache",
    "InfiniteCache",
    "LineState",
    "SharingTable",
    "PAPER_CORE_SCHEMES",
    "PROTOCOLS",
    "WTI",
    "Berkeley",
    "CoherenceProtocol",
    "Dir0B",
    "Dir1B",
    "Dir1NB",
    "DirCoarse",
    "DiriB",
    "DiriNB",
    "DirnNB",
    "Dragon",
    "Event",
    "Tang",
    "YenFu",
    "create_protocol",
    "protocol_names",
    "AccessType",
    "SharingModel",
    "SyntheticWorkload",
    "TraceRecord",
    "WorkloadProfile",
    "collect_stats",
    "exclude_lock_spins",
    "generate_trace",
    "standard_profiles",
    "standard_trace",
    "standard_trace_names",
    "__version__",
]
