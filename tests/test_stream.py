"""Unit tests for trace stream transforms."""

import pytest

from conftest import record
from repro.trace.record import AccessType
from repro.trace.stream import (
    SharingModel,
    count_sharing_units,
    exclude_lock_spins,
    exclude_os,
    interleave,
    map_to_sharing_units,
    materialize,
    take,
)


class TestSharingUnitMapping:
    def test_process_model_keys_by_pid(self):
        trace = [
            record(cpu=0, pid=7, address=0),
            record(cpu=1, pid=7, address=16),  # migrated: same process
            record(cpu=0, pid=9, address=32),
        ]
        mapped = materialize(map_to_sharing_units(trace, SharingModel.PROCESS))
        assert [r.cpu for r in mapped] == [0, 0, 1]

    def test_processor_model_keys_by_cpu(self):
        trace = [
            record(cpu=2, pid=7, address=0),
            record(cpu=2, pid=9, address=16),
            record(cpu=5, pid=7, address=32),
        ]
        mapped = materialize(map_to_sharing_units(trace, SharingModel.PROCESSOR))
        assert [r.cpu for r in mapped] == [0, 0, 1]

    def test_indices_are_dense_and_first_come(self):
        trace = [record(cpu=0, pid=p, address=0) for p in (42, 5, 42, 99)]
        mapped = materialize(map_to_sharing_units(trace))
        assert [r.cpu for r in mapped] == [0, 1, 0, 2]

    def test_non_cpu_fields_preserved(self):
        trace = [record(cpu=3, pid=8, kind="w", address=48, spin=False, os=True)]
        (mapped,) = materialize(map_to_sharing_units(trace))
        assert mapped.pid == 8
        assert mapped.access is AccessType.WRITE
        assert mapped.address == 48
        assert mapped.is_os

    def test_count_sharing_units(self):
        trace = [record(cpu=c % 2, pid=c % 3, address=0) for c in range(12)]
        assert count_sharing_units(trace, SharingModel.PROCESS) == 3
        assert count_sharing_units(trace, SharingModel.PROCESSOR) == 2


class TestFilters:
    def test_exclude_lock_spins_drops_only_spins(self):
        trace = [
            record(address=0, spin=True),
            record(address=16),
            record(kind="w", address=0),
        ]
        kept = materialize(exclude_lock_spins(trace))
        assert len(kept) == 2
        assert all(not r.is_lock_spin for r in kept)

    def test_exclude_os(self):
        trace = [record(address=0, os=True), record(address=16)]
        kept = materialize(exclude_os(trace))
        assert len(kept) == 1 and not kept[0].is_os

    def test_take(self):
        trace = [record(address=16 * i) for i in range(10)]
        assert len(materialize(take(trace, 3))) == 3

    def test_take_rejects_negative(self):
        with pytest.raises(ValueError):
            take([], -1)


class TestInterleave:
    def _stream(self, cpu, n):
        return [record(cpu=cpu, address=16 * i) for i in range(n)]

    def test_preserves_program_order_per_stream(self):
        streams = [self._stream(0, 5), self._stream(1, 5)]
        merged = materialize(interleave(streams, iter([2, 2, 2, 2, 2])))
        per_cpu = {0: [], 1: []}
        for r in merged:
            per_cpu[r.cpu].append(r.address)
        assert per_cpu[0] == sorted(per_cpu[0])
        assert per_cpu[1] == sorted(per_cpu[1])

    def test_emits_every_record_exactly_once(self):
        streams = [self._stream(0, 3), self._stream(1, 7), self._stream(2, 1)]
        merged = materialize(interleave(streams, iter([3, 1, 4])))
        assert len(merged) == 11

    def test_exhausted_run_length_defaults_to_one(self):
        streams = [self._stream(0, 4), self._stream(1, 4)]
        merged = materialize(interleave(streams, iter([])))
        assert len(merged) == 8
        # With run length 1 the schedule strictly alternates.
        assert [r.cpu for r in merged[:4]] == [0, 1, 0, 1]
