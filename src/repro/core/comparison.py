"""Multi-protocol, multi-trace comparison runner.

The paper's evaluation is a cross product: every scheme simulated over every
trace, averaged across traces (Tables 4 and 5, Figures 2-5).  This module
runs that cross product once and exposes the results in both per-trace and
trace-averaged form; the analysis layer turns them into the paper's tables
and figures.

Averaging convention: the paper reports event frequencies and bus cycles
"averaged across the three traces".  Rates are averaged with equal weight
per trace (not pooled by reference count), matching the paper's
presentation; both views are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from ..interconnect.bus import BusCostModel, Table5Category
from ..protocols.registry import PAPER_CORE_SCHEMES, create_protocol
from ..trace.record import TraceRecord
from ..trace.stream import SharingModel
from ..trace.workloads import DEFAULT_SCALE, standard_trace, standard_trace_names
from .invalidation import InvalidationHistogram
from .simulator import SimulationResult, simulate

__all__ = ["ComparisonResult", "run_comparison", "run_standard_comparison"]

#: A callable producing a fresh trace stream each time it is called (so one
#: trace can be replayed for every protocol without materialising it).
TraceFactory = Callable[[], Iterable[TraceRecord]]


@dataclass(frozen=True)
class ComparisonResult:
    """All (protocol, trace) simulation results of one comparison."""

    protocols: Sequence[str]
    traces: Sequence[str]
    results: Mapping[str, Mapping[str, SimulationResult]]  # protocol -> trace

    def result(self, protocol: str, trace: str) -> SimulationResult:
        return self.results[protocol][trace]

    def per_trace_cycles(
        self, protocol: str, bus: BusCostModel
    ) -> Dict[str, float]:
        """Bus cycles per reference for each trace (Figure 3 series)."""
        return {
            trace: self.results[protocol][trace].cycles_per_reference(bus)
            for trace in self.traces
        }

    def average_cycles(self, protocol: str, bus: BusCostModel) -> float:
        """Trace-averaged bus cycles per reference (Figure 2 bars)."""
        per_trace = self.per_trace_cycles(protocol, bus)
        return sum(per_trace.values()) / len(per_trace)

    def average_energy(self, protocol: str, bus: BusCostModel) -> Optional[float]:
        """Trace-averaged nanojoules per reference, ``None`` without an
        energy axis on ``bus``."""
        values = [
            self.results[protocol][trace]
            .cost_summary(bus)
            .energy_per_reference
            for trace in self.traces
        ]
        if any(value is None for value in values):
            return None
        return sum(values) / len(values)

    def average_category_cycles(
        self, protocol: str, bus: BusCostModel
    ) -> Dict[Table5Category, float]:
        """Trace-averaged Table 5 breakdown for one scheme."""
        totals: Dict[Table5Category, float] = {c: 0.0 for c in Table5Category}
        for trace in self.traces:
            summary = self.results[protocol][trace].cost_summary(bus)
            for category, cycles in summary.by_category.items():
                totals[category] += cycles
        n = len(self.traces)
        return {category: cycles / n for category, cycles in totals.items()}

    def average_transactions_per_reference(self, protocol: str) -> float:
        """Trace-averaged bus transactions per reference (Section 5.1's q
        coefficient)."""
        values = [
            self.results[protocol][trace].counters.ops.transactions_per_reference
            for trace in self.traces
        ]
        return sum(values) / len(values)

    def average_cycles_per_transaction(
        self, protocol: str, bus: BusCostModel
    ) -> float:
        """Trace-averaged bus cycles per bus transaction (Figure 5 bars)."""
        values = [
            self.results[protocol][trace].cost_summary(bus).cycles_per_transaction
            for trace in self.traces
        ]
        return sum(values) / len(values)

    def average_event_percent(self, protocol: str, key: str) -> float:
        """Trace-averaged Table 4 row value (by the paper's row label)."""
        values = [
            self.results[protocol][trace].frequencies().as_dict()[key]
            for trace in self.traces
        ]
        return sum(values) / len(values)

    def pooled_invalidation_histogram(self, protocol: str) -> InvalidationHistogram:
        """Figure 1 histogram pooled over all traces."""
        pooled = InvalidationHistogram()
        for trace in self.traces:
            pooled.merge(self.results[protocol][trace].invalidation_histogram)
        return pooled


def run_comparison(
    protocol_names: Sequence[str],
    trace_factories: Mapping[str, TraceFactory],
    n_caches: int,
    sharing_model: SharingModel = SharingModel.PROCESS,
    block_size: int = 16,
    protocol_factory: Optional[Callable[[str, int], object]] = None,
) -> ComparisonResult:
    """Simulate every named protocol over every named trace."""
    if not protocol_names:
        raise ValueError("at least one protocol is required")
    if not trace_factories:
        raise ValueError("at least one trace is required")
    make = protocol_factory or create_protocol
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for protocol_name in protocol_names:
        per_trace: Dict[str, SimulationResult] = {}
        for trace_name, factory in trace_factories.items():
            protocol = make(protocol_name, n_caches)
            per_trace[trace_name] = simulate(
                protocol,
                factory(),
                trace_name=trace_name,
                block_size=block_size,
                sharing_model=sharing_model,
            )
        results[protocol_name] = per_trace
    return ComparisonResult(
        protocols=tuple(protocol_names),
        traces=tuple(trace_factories),
        results=results,
    )


def run_standard_comparison(
    protocol_names: Sequence[str] = PAPER_CORE_SCHEMES,
    scale: float = DEFAULT_SCALE,
    n_caches: int = 4,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ComparisonResult:
    """The paper's evaluation: the named schemes over POPS, THOR and PERO.

    ``jobs`` fans the (protocol, trace) grid across worker processes and
    ``cache_dir`` serves repeat cells from the on-disk result cache — both
    via :mod:`repro.runner`, with results bit-identical to the serial path.
    """
    if jobs != 1 or cache_dir is not None:
        from ..runner.cache import ResultCache
        from ..runner.spec import sweep_grid
        from ..runner.sweep import run_sweep

        specs = sweep_grid(protocol_names, scale=scale, n_caches=n_caches)
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        return run_sweep(specs, jobs=jobs, cache=cache).comparison()
    factories: Dict[str, TraceFactory] = {
        name: (lambda name=name: standard_trace(name, scale=scale))
        for name in standard_trace_names()
    }
    return run_comparison(protocol_names, factories, n_caches=n_caches)
