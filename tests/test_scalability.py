"""Unit tests for the Section 6 scalability analyses."""

import pytest

from conftest import trace_of
from repro.analysis.scalability import (
    broadcast_cost_line,
    directory_storage_bits,
    sweep_dirib,
    sweep_dirinb,
)
from repro.core.simulator import simulate
from repro.protocols.directory.dirib import Dir1B


def _shared_trace():
    return trace_of(
        [(0, "r", 0), (1, "r", 0), (2, "r", 0), (0, "w", 0), (1, "r", 0)]
        + [(1, "w", 0), (2, "r", 16), (3, "r", 16), (2, "w", 16)]
    )


def _factories():
    trace = _shared_trace()
    return {"T": lambda: iter(list(trace))}


class TestBroadcastCostLine:
    def test_line_reproduces_measured_cost_at_b_one(self):
        from repro.interconnect.bus import pipelined_bus

        result = simulate(Dir1B(4), _shared_trace())
        line = broadcast_cost_line(result)
        assert line.at(1) == pytest.approx(
            result.cycles_per_reference(pipelined_bus())
        )

    def test_slope_is_broadcast_rate(self):
        result = simulate(Dir1B(4), _shared_trace())
        line = broadcast_cost_line(result)
        assert line.slope > 0  # this trace forces broadcast-bit overflow
        assert line.at(10) - line.at(0) == pytest.approx(10 * line.slope)

    def test_negative_b_rejected(self):
        result = simulate(Dir1B(4), _shared_trace())
        with pytest.raises(ValueError):
            broadcast_cost_line(result).at(-1)

    def test_render(self):
        result = simulate(Dir1B(4), _shared_trace())
        assert "cycles/ref" in broadcast_cost_line(result).render()


class TestPointerSweeps:
    def test_dirib_broadcasts_fall_with_pointers(self):
        points = sweep_dirib(_factories(), pointer_counts=(1, 2, 4))
        broadcasts = [p.broadcasts_per_thousand_refs for p in points]
        assert broadcasts == sorted(broadcasts, reverse=True)
        assert broadcasts[-1] == 0.0  # 4 pointers track all 4 caches

    def test_dirib_miss_rate_independent_of_pointers(self):
        points = sweep_dirib(_factories(), pointer_counts=(1, 2, 4))
        rates = {round(p.data_miss_rate, 9) for p in points}
        assert len(rates) == 1  # DiriB never restricts copies

    def test_dirinb_displacements_fall_with_pointers(self):
        points = sweep_dirinb(_factories(), pointer_counts=(1, 2, 4))
        displaced = [p.displacements_per_thousand_refs for p in points]
        assert displaced == sorted(displaced, reverse=True)
        assert displaced[-1] == 0.0

    def test_dirinb_miss_rate_falls_with_pointers(self):
        points = sweep_dirinb(_factories(), pointer_counts=(1, 4))
        assert points[0].data_miss_rate >= points[1].data_miss_rate

    def test_points_carry_storage_cost(self):
        (point,) = sweep_dirib(_factories(), pointer_counts=(2,))
        assert point.directory_bits_per_block == 6  # 2 ptrs x 2 bits + 2

    def test_render(self):
        (point,) = sweep_dirib(_factories(), pointer_counts=(1,))
        assert "cyc/ref" in point.render()


class TestStorageScaling:
    def test_full_map_grows_linearly(self):
        bits = directory_storage_bits((4, 1024))
        assert bits["DirnNB (full map)"][1024] == 1025

    def test_digit_code_is_two_log_n(self):
        bits = directory_storage_bits((1024,))
        assert bits["Digit code (coarse)"][1024] == 2 * 10 + 1

    def test_dir0b_is_constant(self):
        bits = directory_storage_bits((4, 1024))
        assert bits["Dir0B"][4] == bits["Dir0B"][1024] == 2

    def test_digit_code_beats_full_map_at_scale(self):
        bits = directory_storage_bits((256,))
        assert bits["Digit code (coarse)"][256] < bits["DirnNB (full map)"][256]
