"""Per-processor cache models.

The paper's evaluation uses **infinite caches** (Section 4): blocks are never
displaced, so every miss is either a first-time fetch or a coherence miss,
which isolates exactly the cost of sharing.  :class:`InfiniteCache` models
that directly.

:class:`FiniteCache` is the library's extension beyond the paper: a
set-associative LRU cache that lets users estimate the "finite cache size"
correction the paper says can be added to first order (Section 4).  The
finite-cache simulator in :mod:`repro.core.finite` uses it to inject
capacity/conflict evictions into any protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from .state import LineState

__all__ = ["InfiniteCache", "FiniteCache", "CacheGeometry"]


class InfiniteCache:
    """A cache that never evicts: block -> :class:`LineState` (valid lines only)."""

    __slots__ = ("_lines",)

    def __init__(self) -> None:
        self._lines: Dict[int, LineState] = {}

    def state_of(self, block: int) -> LineState:
        return self._lines.get(block, LineState.INVALID)

    def contains(self, block: int) -> bool:
        return block in self._lines

    def insert(self, block: int, state: LineState = LineState.CLEAN) -> None:
        if not state.is_valid:
            raise ValueError("cannot insert a line in INVALID state")
        self._lines[block] = state

    def set_state(self, block: int, state: LineState) -> None:
        if not state.is_valid:
            self.invalidate(block)
        elif block in self._lines:
            self._lines[block] = state
        else:
            raise KeyError(f"block {block:#x} not resident")

    def invalidate(self, block: int) -> bool:
        """Drop a line; returns True if it was resident."""
        return self._lines.pop(block, None) is not None

    def resident_blocks(self) -> Iterator[int]:
        return iter(self._lines)

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, block: int) -> bool:
        return block in self._lines


class CacheGeometry:
    """Size/associativity parameters of a finite cache.

    The canonical short form is the **spec string** ``"SETSxWAYS"``
    (e.g. ``"64x4"`` = 64 sets, 4-way = 256 blocks), produced by
    :attr:`spec` and accepted by :meth:`parse` — the form the sweep grid,
    result cache key, and CLI flags all use.
    """

    __slots__ = ("n_sets", "associativity")

    def __init__(self, n_sets: int, associativity: int) -> None:
        if n_sets <= 0 or (n_sets & (n_sets - 1)) != 0:
            raise ValueError(f"n_sets must be a positive power of two, got {n_sets}")
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.n_sets = n_sets
        self.associativity = associativity

    @classmethod
    def parse(cls, text: str) -> "CacheGeometry":
        """Build a geometry from a ``"SETSxWAYS"`` spec string."""
        parts = str(text).strip().lower().split("x")
        if len(parts) != 2:
            raise ValueError(
                f"bad cache geometry {text!r}: expected SETSxWAYS, e.g. '64x4'"
            )
        try:
            n_sets, associativity = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad cache geometry {text!r}: expected SETSxWAYS, e.g. '64x4'"
            ) from None
        return cls(n_sets, associativity)

    @property
    def spec(self) -> str:
        """The ``"SETSxWAYS"`` spec string (round-trips through :meth:`parse`)."""
        return f"{self.n_sets}x{self.associativity}"

    @property
    def capacity_blocks(self) -> int:
        return self.n_sets * self.associativity

    def set_of(self, block: int) -> int:
        return block & (self.n_sets - 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheGeometry):
            return NotImplemented
        return (
            self.n_sets == other.n_sets
            and self.associativity == other.associativity
        )

    def __hash__(self) -> int:
        return hash((self.n_sets, self.associativity))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CacheGeometry(n_sets={self.n_sets}, associativity={self.associativity})"


class FiniteCache:
    """Set-associative LRU cache with per-line coherence state.

    ``access`` returns the block evicted to make room, if any, so a caller
    (the finite-cache simulator) can inform the protocol of the displacement.
    """

    __slots__ = ("geometry", "_sets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List["OrderedDict[int, LineState]"] = [
            OrderedDict() for _ in range(geometry.n_sets)
        ]

    def _set_for(self, block: int) -> "OrderedDict[int, LineState]":
        return self._sets[self.geometry.set_of(block)]

    def state_of(self, block: int) -> LineState:
        return self._set_for(block).get(block, LineState.INVALID)

    def contains(self, block: int) -> bool:
        return block in self._set_for(block)

    def touch(self, block: int) -> bool:
        """Mark a hit for LRU purposes; returns False if not resident."""
        lines = self._set_for(block)
        if block not in lines:
            return False
        lines.move_to_end(block)
        return True

    def insert(self, block: int, state: LineState = LineState.CLEAN) -> Optional[int]:
        """Insert a line, returning the evicted block (victim) if any."""
        if not state.is_valid:
            raise ValueError("cannot insert a line in INVALID state")
        lines = self._set_for(block)
        victim: Optional[int] = None
        if block not in lines and len(lines) >= self.geometry.associativity:
            victim, _ = lines.popitem(last=False)
        lines[block] = state
        lines.move_to_end(block)
        return victim

    def set_state(self, block: int, state: LineState) -> None:
        if not state.is_valid:
            self.invalidate(block)
            return
        lines = self._set_for(block)
        if block not in lines:
            raise KeyError(f"block {block:#x} not resident")
        lines[block] = state

    def invalidate(self, block: int) -> bool:
        return self._set_for(block).pop(block, None) is not None

    def resident_blocks(self) -> Iterator[int]:
        for lines in self._sets:
            yield from lines

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def __contains__(self, block: int) -> bool:
        return self.contains(block)
