"""Goodman's Write-Once snoopy protocol (the paper's reference [2]).

The first snoopy protocol published, and the origin of the "write-once"
trick: the *first* write to a clean block is written through — the single
bus word both updates memory and invalidates the other cached copies — and
the block enters the **reserved** state (clean, memory-consistent, sole
copy).  A *second* write upgrades reserved to dirty locally, with no bus
traffic; thereafter the cache owns the block copy-back style.

Costs relative to the paper's schemes: Write-Once pays one word of
write-through per write-run (where Dir0B pays a directory check +
invalidate and WTI pays a word per write), so it lands between the two.

State tracking: the system-wide :class:`SharingTable` carries holders and
the dirty owner; the reserved owner (clean but known-sole after a
write-through) is a per-block annotation here.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...interconnect.bus import BusOp
from ...memory.sharing import NO_OWNER, bit_count
from ..base import AccessOutcome, CoherenceProtocol, OpList
from ..events import Event
from ..table import Rule, TransitionTable, compile_rules

__all__ = ["WriteOnce"]

#: Write-Once with the reserved state as the table's aux annotation.
_WRITE_ONCE_RULES = (
    Rule(write=False, event=Event.READ_HIT, held=True),
    Rule(write=False, event=Event.RM_FIRST_REF, first=True, mask="add"),
    Rule(
        write=False,
        event=Event.RM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
        clear_dirty=True,
        mask="add",
        aux_action="clear",
    ),
    Rule(
        write=False,
        event=Event.RM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
        aux_action="clear",
    ),
    Rule(
        write=False,
        event=Event.RM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        mask="add",
        aux_action="clear",
    ),
    Rule(write=True, event=Event.WH_BLK_DIRTY, held=True, dirty="local"),
    Rule(
        # Second write: reserved -> dirty, purely local.
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        aux="self",
        fanout="F",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        # First write to a valid block: one word written through; the block
        # becomes reserved (clean, known-sole), not dirty.
        write=True,
        event=Event.WH_BLK_CLEAN,
        held=True,
        ops=((BusOp.WRITE_THROUGH, 1),),
        fanout="F",
        mask="only",
        aux_action="self",
    ),
    Rule(
        write=True, event=Event.WM_FIRST_REF, first=True, mask="add", set_dirty=True
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_DIRTY,
        dirty="remote",
        ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        write=True,
        event=Event.WM_BLK_CLEAN,
        fclass=(1, 2),
        ops=((BusOp.MEM_ACCESS, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
    Rule(
        write=True,
        event=Event.WM_UNCACHED,
        ops=((BusOp.MEM_ACCESS, 1),),
        fanout="F",
        mask="only",
        set_dirty=True,
        aux_action="clear",
    ),
)


class WriteOnce(CoherenceProtocol):
    """Goodman's write-once protocol: write through once, then copy back."""

    name = "writeonce"
    label = "WriteOnce"
    kind = "snoopy"

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches)
        #: block -> cache holding it in the reserved state
        self._reserved: Dict[int, int] = {}

    def _read(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            return AccessOutcome(event=Event.READ_HIT)
        if first_ref:
            sharing.add_holder(block, cache)
            return AccessOutcome(event=Event.RM_FIRST_REF)
        self._reserved.pop(block, None)  # any reserved copy is sole no more
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            # The owner supplies the block and memory is updated in the same
            # transfer (Goodman's scheme); both copies end up valid/clean.
            sharing.clear_dirty(block)
            sharing.add_holder(block, cache)
            return AccessOutcome(
                event=Event.RM_BLK_DIRTY,
                ops=((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1)),
            )
        event = (
            Event.RM_BLK_CLEAN
            if sharing.remote_holders(block, cache)
            else Event.RM_UNCACHED
        )
        sharing.add_holder(block, cache)
        return AccessOutcome(event=event, ops=((BusOp.MEM_ACCESS, 1),))

    def _write(self, cache: int, block: int, first_ref: bool) -> AccessOutcome:
        sharing = self.sharing
        if sharing.is_held(block, cache):
            if sharing.is_dirty_in(block, cache):
                return AccessOutcome(event=Event.WH_BLK_DIRTY)
            if self._reserved.get(block) == cache:
                # Second write: reserved -> dirty, purely local.
                sharing.set_dirty(block, cache)
                del self._reserved[block]
                return AccessOutcome(
                    event=Event.WH_BLK_CLEAN, ops=(), invalidation_fanout=0
                )
            # First write to a valid block: one word written through; the
            # snoopers invalidate their copies as it goes by.
            remote = sharing.remote_holders(block, cache)
            fanout = bit_count(remote)
            if remote:
                sharing.set_only_holder(block, cache)
            self._reserved[block] = cache
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN,
                ops=((BusOp.WRITE_THROUGH, 1),),
                invalidation_fanout=fanout,
            )
        if first_ref:
            sharing.add_holder(block, cache)
            sharing.set_dirty(block, cache)
            return AccessOutcome(event=Event.WM_FIRST_REF)
        return self._write_miss(cache, block)

    def _write_miss(self, cache: int, block: int) -> AccessOutcome:
        sharing = self.sharing
        self._reserved.pop(block, None)
        owner = self._remote_dirty_owner(cache, block)
        if owner != NO_OWNER:
            ops: OpList = ((BusOp.FLUSH_REQUEST, 1), (BusOp.WRITE_BACK, 1))
            event = Event.WM_BLK_DIRTY
            fanout = None
        else:
            remote = sharing.remote_holders(block, cache)
            fanout = bit_count(remote)
            ops = ((BusOp.MEM_ACCESS, 1),)
            event = Event.WM_BLK_CLEAN if remote else Event.WM_UNCACHED
        # Read-with-intent-to-modify: the miss transaction invalidates the
        # other copies as the snoopers observe it.
        sharing.purge(block)
        sharing.add_holder(block, cache)
        sharing.set_dirty(block, cache)
        return AccessOutcome(event=event, ops=ops, invalidation_fanout=fanout)

    def evict(self, cache: int, block: int) -> OpList:
        if self._reserved.get(block) == cache:
            del self._reserved[block]
        return super().evict(cache, block)

    def compile_table(self) -> Optional[TransitionTable]:
        return compile_rules(self.name, _WRITE_ONCE_RULES, has_aux=True)
