"""Engine performance: references simulated per second.

Not a paper experiment — a genuine performance benchmark of the simulator
core so regressions in the hot path are visible.  Beyond the
pytest-benchmark timings, this module emits machine-readable
``benchmarks/results/BENCH_simulator.json`` straight from a
:class:`~repro.obs.metrics.MetricsRegistry` (timers per protocol,
refs/sec gauges) and guards the observability bargain: with no probe
attached, the instrumented hot loop must stay within
``REPRO_BENCH_OVERHEAD_PCT`` (default 5%) of a probe-free baseline.
"""

from __future__ import annotations

import math
import os
import time

import pytest

from conftest import RESULTS_DIR

from repro.core.pipeline import ReferencePipeline
from repro.core.simulator import simulate
from repro.obs import MetricsRegistry
from repro.protocols import create_protocol
from repro.trace import materialize, standard_trace
from repro.trace.record import AccessType

_TRACE_LENGTH_SCALE = 1.0 / 256.0  # ~12k references

#: Maximum tolerated probes-off slowdown vs the probe-free baseline, in
#: percent.  Overridable for noisy shared CI runners.
OVERHEAD_TOLERANCE_PCT = float(os.environ.get("REPRO_BENCH_OVERHEAD_PCT", "5"))

#: Timing repetitions; best-of keeps scheduler noise out of the comparison.
_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "12"))


def _materialized_pops():
    return materialize(standard_trace("POPS", scale=_TRACE_LENGTH_SCALE))


def test_simulator_throughput_dir0b(benchmark):
    trace = _materialized_pops()
    result = benchmark(
        lambda: simulate(create_protocol("dir0b", 4), trace)
    )
    assert result.references == len(trace)


def test_simulator_throughput_dragon(benchmark):
    trace = _materialized_pops()
    result = benchmark(
        lambda: simulate(create_protocol("dragon", 4), trace)
    )
    assert result.references == len(trace)


def _counters_signature(result):
    counters = result.counters
    return (
        dict(counters.events),
        dict(counters.ops.ops),
        counters.ops.transactions,
        counters.ops.references,
        counters.fanout.as_dict(),
        counters.evictions,
        counters.dirty_evictions,
    )


def test_simulator_throughput_dir0b_fast_backend(benchmark):
    """Time the table-driven backend — after proving it changes nothing."""
    pytest.importorskip("numpy")
    from repro.trace.packed import PackedTrace

    trace = _materialized_pops()
    packed = PackedTrace.from_records(trace)
    reference = simulate(create_protocol("dir0b", 4), trace)
    result = benchmark(
        lambda: simulate(create_protocol("dir0b", 4), packed, backend="fast")
    )
    assert _counters_signature(result) == _counters_signature(reference)
    assert result.references == len(trace)


def test_trace_generation_throughput(benchmark):
    records = benchmark(
        lambda: sum(1 for _ in standard_trace("PERO", scale=_TRACE_LENGTH_SCALE))
    )
    assert records > 10_000


class _ProbeFreePipeline(ReferencePipeline):
    """The hot loop exactly as it was before probes existed.

    ``step`` mirrors :meth:`ReferencePipeline.step` minus the probe
    attribute load and ``None`` check — the baseline the <5% overhead
    guarantee is measured against.
    """

    def step(self, unit, access, block, counters):
        stage = self._stage
        data = access is not AccessType.INSTR
        if stage is not None and data:
            stage.before_access(unit, block, counters)
        outcome = self._access(unit, access, block)
        counters.record(outcome)
        if stage is not None and data:
            stage.after_access(unit, block)
        self._processed += 1
        every = self.check_invariants_every
        if every and self._processed % every == 0:
            self.protocol.sharing.check_invariants()
        return outcome


def _timed_run(pipeline_cls, trace):
    pipeline = pipeline_cls(create_protocol("dir0b", 4))
    start = time.perf_counter()
    pipeline.run(trace, "POPS")
    return time.perf_counter() - start


def test_probes_off_overhead_under_tolerance():
    """With no probe attached the pipeline pays (almost) nothing for obs."""
    trace = _materialized_pops()

    # Warm both paths once, then interleave best-of measurements so slow
    # drift (thermal, noisy neighbours) hits both sides equally.
    _timed_run(_ProbeFreePipeline, trace)
    _timed_run(ReferencePipeline, trace)
    base = current = math.inf
    for _ in range(_REPEATS):
        base = min(base, _timed_run(_ProbeFreePipeline, trace))
        current = min(current, _timed_run(ReferencePipeline, trace))

    overhead_pct = (current - base) / base * 100.0
    assert overhead_pct < OVERHEAD_TOLERANCE_PCT, (
        f"probes-off hot loop is {overhead_pct:.2f}% slower than the "
        f"probe-free baseline (tolerance {OVERHEAD_TOLERANCE_PCT}%): "
        f"{base * 1e3:.2f}ms -> {current * 1e3:.2f}ms over {len(trace)} refs"
    )


def test_emit_bench_simulator_json(save_result):
    """Publish the core timings as BENCH_simulator.json via the registry."""
    registry = MetricsRegistry()
    trace = _materialized_pops()
    registry.gauge("bench.references").set(len(trace))
    registry.gauge("bench.overhead_tolerance_pct").set(OVERHEAD_TOLERANCE_PCT)

    lines = [f"Simulator throughput ({len(trace):,} refs, best of {_REPEATS})"]
    for name in ("dir0b", "dragon"):
        timer = registry.timer(f"simulate.{name}.seconds")
        for _ in range(_REPEATS):
            with timer.time():
                simulate(create_protocol(name, 4), trace)
        refs_per_sec = len(trace) * timer.count / timer.total_seconds
        registry.gauge(f"simulate.{name}.refs_per_sec").set(refs_per_sec)
        lines.append(
            f"{name:<8} {timer.mean_seconds * 1e3:8.2f}ms/run  "
            f"{refs_per_sec:12,.0f} refs/sec"
        )

    try:
        from repro.trace.packed import PackedTrace
    except ImportError:  # pragma: no cover - no-numpy environment
        PackedTrace = None
    if PackedTrace is not None:
        # Backend comparison on the packed trace: counter equality is
        # asserted before any timing claim is recorded.
        packed = PackedTrace.from_records(trace)
        runs = {
            backend: simulate(
                create_protocol("dir0b", 4), packed, backend=backend
            )
            for backend in ("reference", "fast")
        }
        assert _counters_signature(runs["fast"]) == _counters_signature(
            runs["reference"]
        )
        rates = {}
        for backend in ("reference", "fast"):
            timer = registry.timer(f"simulate.packed.{backend}.seconds")
            for _ in range(_REPEATS):
                with timer.time():
                    simulate(create_protocol("dir0b", 4), packed, backend=backend)
            rates[backend] = len(packed) * timer.count / timer.total_seconds
            registry.gauge(f"simulate.packed.{backend}.refs_per_sec").set(
                rates[backend]
            )
            lines.append(
                f"packed/{backend:<9} {timer.mean_seconds * 1e3:8.2f}ms/run  "
                f"{rates[backend]:12,.0f} refs/sec"
            )
        speedup = rates["fast"] / rates["reference"]
        registry.gauge("simulate.packed.fast.speedup").set(speedup)
        lines.append(f"fast backend speedup: {speedup:.1f}x (bit-identical)")

    generate = registry.timer("trace.generate.seconds")
    with generate.time():
        generated = sum(
            1 for _ in standard_trace("PERO", scale=_TRACE_LENGTH_SCALE)
        )
    registry.gauge("trace.generate.refs_per_sec").set(
        generated / generate.total_seconds
    )
    lines.append(
        f"tracegen {generate.total_seconds * 1e3:8.2f}ms/run  "
        f"{generated / generate.total_seconds:12,.0f} refs/sec"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    registry.write_json(RESULTS_DIR / "BENCH_simulator.json")
    save_result("simulator_throughput", "\n".join(lines))
