"""Unit tests for Goodman's Write-Once protocol."""

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp, pipelined_bus
from repro.protocols.snoopy.write_once import WriteOnce
from repro.protocols.events import Event


@pytest.fixture
def proto():
    return WriteOnce(4)


class TestWriteOnceSemantics:
    def test_first_write_is_written_through(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        first_write = outcomes[1]
        assert first_write.event is Event.WH_BLK_CLEAN
        assert dict(first_write.ops) == {BusOp.WRITE_THROUGH: 1}
        assert not proto.sharing.is_dirty(5)  # reserved: memory consistent

    def test_second_write_is_free_and_dirties(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5), (0, "w", 5)])
        second_write = outcomes[2]
        assert second_write.ops == ()
        assert proto.sharing.is_dirty_in(5, 0)

    def test_write_through_invalidates_snoopers(self, proto):
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        assert outcomes[2].invalidation_fanout == 1
        assert not proto.sharing.is_held(5, 1)

    def test_remote_read_cancels_reservation(self, proto):
        # 0 reserves the block; 1 reads it; 0's next write must go through
        # again (it is no longer known-sole).
        outcomes = run_ops(
            proto, [(0, "r", 5), (0, "w", 5), (1, "r", 5), (0, "w", 5)]
        )
        final_write = outcomes[3]
        assert dict(final_write.ops) == {BusOp.WRITE_THROUGH: 1}

    def test_dirty_remote_read_updates_memory_too(self, proto):
        outcomes = run_ops(
            proto, [(0, "r", 5), (0, "w", 5), (0, "w", 5), (1, "r", 5)]
        )
        miss = outcomes[3]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {BusOp.FLUSH_REQUEST: 1, BusOp.WRITE_BACK: 1}
        assert not proto.sharing.is_dirty(5)  # Goodman: memory updated

    def test_write_miss_claims_ownership(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_CLEAN
        assert proto.sharing.is_dirty_in(5, 0)
        assert not proto.sharing.is_held(5, 1)

    def test_eviction_clears_reservation(self, proto):
        run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        proto.evict(0, 5)
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        # The reservation did not survive the eviction: write-through again.
        assert dict(outcomes[1].ops) == {BusOp.WRITE_THROUGH: 1}


class TestWriteOnceCostPosition:
    def test_cheaper_than_wti_on_write_runs(self):
        """A run of writes costs one word under Write-Once, one word *per
        write* under WTI."""
        from repro.protocols.snoopy.wti import WTI

        bus = pipelined_bus()
        ops = [(0, "r", 5)] + [(0, "w", 5)] * 10
        write_once_cost = sum(
            sum(bus.cost_of(k) * n for k, n in outcome.ops)
            for outcome in run_ops(WriteOnce(4), ops)
        )
        wti_cost = sum(
            sum(bus.cost_of(k) * n for k, n in outcome.ops)
            for outcome in run_ops(WTI(4), ops)
        )
        assert write_once_cost < wti_cost
