"""Coherence-as-a-service: the sweep runner behind an HTTP job API.

The package splits into four layers, each usable on its own:

- :mod:`repro.service.schema` — the versioned request document and the
  JSON result payload (:func:`~repro.service.schema.parse_request`,
  :func:`~repro.service.schema.report_payload`).
- :mod:`repro.service.jobs` — :class:`~repro.service.jobs.JobManager`:
  queueing, dedupe against the shared :class:`~repro.runner.cache.ResultCache`,
  per-client rate limiting, TTL eviction, cancellation and drain.  Pure
  threads + one process per running sweep; no asyncio, so it unit-tests
  without an event loop.
- :mod:`repro.service.journal` — the crash-safe
  :class:`~repro.service.journal.ServiceJournal` of job state
  transitions that :meth:`~repro.service.jobs.JobManager.recover`
  replays after a restart (or a SIGKILL) so interrupted jobs resume
  without re-simulating finished cells.
- :mod:`repro.service.http` — the asyncio HTTP front end
  (:class:`~repro.service.http.SweepService`,
  :func:`~repro.service.http.run_service`) mapping the manager onto
  ``POST /sweeps`` … ``GET /metrics``.
- :mod:`repro.service.client` — :class:`~repro.service.client.ServiceClient`,
  a stdlib-only client used by the tests, the CI smoke job and
  ``examples/sweep_service.py``.

See ``docs/service.md`` for the API reference and deployment notes.
"""

from .client import ServiceClient, ServiceError
from .http import ServiceHandle, SweepService, run_service, start_background
from .jobs import JobManager, JobState, QueueFull, RateLimited, ServiceDraining
from .journal import SERVICE_JOURNAL_NAME, ServiceJournal
from .schema import (
    REQUEST_SCHEMA_VERSION,
    RequestError,
    parse_request,
    report_payload,
)

__all__ = [
    "JobManager",
    "JobState",
    "QueueFull",
    "RateLimited",
    "SERVICE_JOURNAL_NAME",
    "ServiceDraining",
    "ServiceJournal",
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "parse_request",
    "report_payload",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SweepService",
    "run_service",
    "start_background",
]
