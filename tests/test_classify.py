"""Tests for the sharing-pattern classifier."""

import pytest

from conftest import record, trace_of
from repro.trace.classify import (
    BlockClass,
    classify_blocks,
    sharing_profile,
)


def _classify(trace):
    profiles = classify_blocks(trace)
    return {block: profile.classify() for block, profile in profiles.items()}


class TestClassification:
    def test_private_block(self):
        classes = _classify(trace_of([(0, "r", 0), (0, "w", 0), (0, "r", 0)]))
        assert classes[0] is BlockClass.PRIVATE

    def test_read_only_shared(self):
        classes = _classify(trace_of([(0, "r", 0), (1, "r", 0), (2, "r", 0)]))
        assert classes[0] is BlockClass.READ_ONLY

    def test_producer_consumer(self):
        classes = _classify(
            trace_of([(0, "w", 0), (1, "r", 0), (2, "r", 0), (0, "w", 0)])
        )
        assert classes[0] is BlockClass.PRODUCER_CONSUMER

    def test_migratory(self):
        # Each writer reads the block just before writing: RMW hand-offs.
        steps = []
        for pid in (0, 1, 2, 0, 1):
            steps += [(pid, "r", 0), (pid, "w", 0)]
        classes = _classify(trace_of(steps))
        assert classes[0] is BlockClass.MIGRATORY

    def test_synchronization(self):
        trace = [
            record(0, kind="r", address=0, spin=True),
            record(1, kind="r", address=0, spin=True),
            record(0, kind="r", address=0, spin=True),
            record(0, kind="w", address=0),
            record(1, kind="r", address=0, spin=True),
            record(1, kind="w", address=0),
        ]
        classes = _classify(trace)
        assert classes[0] is BlockClass.SYNCHRONIZATION

    def test_general_read_write(self):
        # Two writers blind-writing with interleaved reads by others: not
        # chained, not single-writer.
        classes = _classify(
            trace_of([(0, "w", 0), (1, "w", 0), (2, "r", 0), (0, "w", 0), (1, "w", 0)])
        )
        assert classes[0] is BlockClass.READ_WRITE

    def test_instructions_ignored(self):
        profiles = classify_blocks(trace_of([(0, "i", 0), (0, "r", 16)]))
        assert len(profiles) == 1

    def test_block_size_respected(self):
        profiles = classify_blocks(
            trace_of([(0, "r", 0), (1, "r", 8)]), block_size=16
        )
        assert len(profiles) == 1  # both addresses fall in block 0


class TestSharingProfile:
    def test_shares_sum_to_one(self):
        trace = trace_of(
            [(0, "r", 0), (0, "w", 0)]
            + [(0, "r", 16), (1, "r", 16)]
            + [(0, "w", 32), (1, "r", 32)]
        )
        profile = sharing_profile(classify_blocks(trace))
        assert sum(
            profile.block_share(c) for c in BlockClass
        ) == pytest.approx(1.0)
        assert sum(
            profile.access_share(c) for c in BlockClass
        ) == pytest.approx(1.0)

    def test_empty_trace(self):
        profile = sharing_profile(classify_blocks([]))
        assert profile.total_blocks == 0
        assert profile.block_share(BlockClass.PRIVATE) == 0.0

    def test_render(self):
        trace = trace_of([(0, "r", 0), (1, "r", 0)])
        text = sharing_profile(classify_blocks(trace)).render()
        assert "read-only" in text


class TestOnCalibratedTraces:
    def test_pops_composition_matches_its_construction(self):
        """The classifier should recover the generator's own structure."""
        from repro.trace import standard_trace, take

        trace = list(take(standard_trace("POPS", scale=1 / 64), 40000))
        profiles = classify_blocks(trace)
        profile = sharing_profile(profiles)
        # Private blocks dominate by count.
        assert profile.block_share(BlockClass.PRIVATE) > 0.4
        # The contended lock is found.
        assert profile.block_counts.get(BlockClass.SYNCHRONIZATION, 0) >= 1
        # Spin reads concentrate synchronisation accesses.
        assert profile.access_share(BlockClass.SYNCHRONIZATION) > 0.05

    def test_pero_has_less_synchronization_than_pops(self):
        from repro.trace import standard_trace, take

        def sync_share(name):
            trace = take(standard_trace(name, scale=1 / 64), 40000)
            profile = sharing_profile(classify_blocks(trace))
            return profile.access_share(BlockClass.SYNCHRONIZATION)

        assert sync_share("PERO") < sync_share("POPS")
