"""Invalidation fan-out accounting (paper Figure 1).

Figure 1 histograms "the number of caches in which a block must be
invalidated on a write to a previously-clean block" — the population of
``wh-blk-cln`` and ``wm-blk-cln`` events — and finds that over 85% of such
writes invalidate at most one remote cache.  That observation motivates the
whole Section 6 family of limited-pointer directories.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["InvalidationHistogram"]


class InvalidationHistogram:
    """Histogram of remote copies invalidated per write to a clean block."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def record(self, fanout: int) -> None:
        if fanout < 0:
            raise ValueError(f"fanout must be non-negative, got {fanout}")
        self._counts[fanout] = self._counts.get(fanout, 0) + 1

    def add(self, fanout: int, count: int) -> None:
        """Record ``count`` events at once (bulk flush from the fast backend)."""
        if fanout < 0:
            raise ValueError(f"fanout must be non-negative, got {fanout}")
        if count:
            self._counts[fanout] = self._counts.get(fanout, 0) + count

    def merge(self, other: "InvalidationHistogram") -> "InvalidationHistogram":
        for fanout, count in other._counts.items():
            self._counts[fanout] = self._counts.get(fanout, 0) + count
        return self

    def __iadd__(self, other: "InvalidationHistogram") -> "InvalidationHistogram":
        return self.merge(other)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def count(self, fanout: int) -> int:
        return self._counts.get(fanout, 0)

    @property
    def max_fanout(self) -> int:
        return max(self._counts, default=0)

    def percentages(self) -> List[float]:
        """Figure 1's bars: percent of events at fanout 0, 1, 2, ... max."""
        total = self.total
        if total == 0:
            return []
        return [
            100.0 * self._counts.get(fanout, 0) / total
            for fanout in range(self.max_fanout + 1)
        ]

    def share_at_most(self, fanout: int) -> float:
        """Fraction of events invalidating at most ``fanout`` caches."""
        total = self.total
        if total == 0:
            return 0.0
        covered = sum(
            count for value, count in self._counts.items() if value <= fanout
        )
        return covered / total

    @property
    def mean_fanout(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(value * count for value, count in self._counts.items()) / total

    def as_dict(self) -> Dict[int, int]:
        return dict(self._counts)
