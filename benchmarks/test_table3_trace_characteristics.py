"""Table 3: summary of trace characteristics (counts in thousands).

Paper values (thousands): POPS 3142/1624/1257/261/2817/325,
THOR 3222/1456/1398/368/2727/495, PERO 3508/1834/1266/409/3242/266.
Our synthetic traces are generated at ``1/REPRO_BENCH_SCALE`` of those
lengths; the *mix* (instruction share, read/write split, user/sys split)
is the reproduced quantity.
"""

import pytest

from conftest import SCALE
from repro.trace import collect_stats, standard_trace, standard_trace_names
from repro.trace.stats import format_table3

PAPER_MIX = {
    # fractions of total refs: instr, data reads, data writes, sys
    "POPS": (1624 / 3142, 1257 / 3142, 261 / 3142, 325 / 3142),
    "THOR": (1456 / 3222, 1398 / 3222, 368 / 3222, 495 / 3222),
    "PERO": (1834 / 3508, 1266 / 3508, 409 / 3508, 266 / 3508),
}


def _collect_all():
    return [
        collect_stats(standard_trace(name, scale=SCALE), name=name)
        for name in standard_trace_names()
    ]


def test_table3_trace_characteristics(benchmark, save_result):
    stats = benchmark.pedantic(_collect_all, rounds=1, iterations=1)
    lines = [format_table3(stats), "", "Reference mix vs paper:"]
    for s in stats:
        instr, reads, writes, sys_frac = (
            s.instructions / s.total,
            s.data_reads / s.total,
            s.data_writes / s.total,
            s.os_fraction,
        )
        p_instr, p_reads, p_writes, p_sys = PAPER_MIX[s.name]
        lines.append(
            f"{s.name}: instr {instr:.3f} (paper {p_instr:.3f}), "
            f"reads {reads:.3f} ({p_reads:.3f}), "
            f"writes {writes:.3f} ({p_writes:.3f}), "
            f"sys {sys_frac:.3f} ({p_sys:.3f}), "
            f"spin/read {s.lock_spin_fraction_of_reads:.3f}"
        )
        # Shape assertions: the mix must be in the paper's neighbourhood.
        assert abs(instr - p_instr) < 0.06
        assert abs(reads - p_reads) < 0.06
        assert abs(writes - p_writes) < 0.05
    # POPS/THOR spin on locks for roughly a third of their reads.
    by_name = {s.name: s for s in stats}
    assert by_name["POPS"].lock_spin_fraction_of_reads == pytest.approx(
        1 / 3, abs=0.12
    )
    assert by_name["THOR"].lock_spin_fraction_of_reads == pytest.approx(
        1 / 3, abs=0.15
    )
    assert by_name["PERO"].lock_spin_fraction_of_reads < 0.05
    save_result("table3_trace_characteristics", "\n".join(lines))
