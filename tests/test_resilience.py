"""Tests for the resilience layer: isolation, retries, timeouts, journal, faults.

Every failure in here is *injected* through a seeded
:class:`~repro.resilience.faults.FaultPlan` — no sleeping on real flaky
resources, no wall-clock randomness — so the whole suite is deterministic:
the same plan produces the same failures in the same cells on the same
attempts, run after run.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    CellEvent,
    CellExecutor,
    CellFailure,
    FaultPlan,
    FaultSpec,
    FaultyCache,
    InjectedFault,
    RetryPolicy,
    RunError,
    SweepInterrupted,
    SweepJournal,
)
from repro.runner import ResultCache, RunOutcome, RunSpec, run_sweep

#: Minuscule traces keep every simulated cell around a few milliseconds.
SCALE = 1.0 / 2048.0


def grid(protocols=("dir0b",), traces=("POPS", "THOR")):
    return [RunSpec(p, t, scale=SCALE) for p in protocols for t in traces]


def plan(*faults, seed=0):
    return FaultPlan(faults=tuple(faults), seed=seed)


def same(a, b):
    """Bit-identity for results (SimulationResult has no deep __eq__)."""
    return pickle.dumps(a) == pickle.dumps(b)


class TestRunError:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown error kind"):
            RunError(kind="cosmic-ray", exc_type="X", message="m", attempts=1)

    def test_summary_is_one_deterministic_line(self):
        error = RunError(
            kind="timeout", exc_type="CellTimeout", message="too slow",
            attempts=3, worker=1234, elapsed=9.9,
        )
        assert error.summary() == (
            "timeout: CellTimeout: too slow (after 3 attempts)"
        )
        assert "1234" not in error.summary()  # pids are not deterministic

    def test_dict_round_trip(self):
        error = RunError(
            kind="worker-crash", exc_type="Signal(9)", message="killed",
            attempts=2, worker=77, elapsed=0.5, traceback="tb",
        )
        assert RunError.from_dict(error.to_dict()) == error


class TestRetryPolicy:
    def test_max_attempts_is_retries_plus_one(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(retries=3).max_attempts == 4

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3, base_seconds=0.1)
        assert policy.delay("k", 1) == policy.delay("k", 1)
        assert policy.delay("k", 1) != policy.delay("other", 1)

    def test_delay_doubles_then_caps(self):
        policy = RetryPolicy(retries=9, base_seconds=0.1, cap_seconds=0.4)
        # Jitter scales by [0.5, 1.0), so bounds bracket base * 2^(n-1).
        for attempt, raw in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.4)]:
            delay = policy.delay("cell", attempt)
            assert raw * 0.5 <= delay < raw

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay("k", 0)


class TestSweepJournal:
    def test_records_round_trip_last_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "s.journal.jsonl")
        journal.record_start(cells=2, jobs=1)
        error = RunError(
            kind="exception", exc_type="Boom", message="x", attempts=2
        )
        journal.record_cell("k1", "cell-1", "failed", attempts=2, error=error)
        journal.record_cell("k2", "cell-2", "ok", cached=True)
        journal.record_cell("k1", "cell-1", "ok", attempts=1, elapsed=0.5)
        journal.record_end("finished", ok=2, failed=0)
        records = journal.load()
        assert set(records) == {"k1", "k2"}
        assert records["k1"]["status"] == "ok"  # the retry's record wins
        assert records["k2"]["cached"] is True
        assert journal.successes().keys() == {"k1", "k2"}
        assert journal.failures() == {}

    def test_failed_record_carries_the_error(self, tmp_path):
        journal = SweepJournal(tmp_path / "s.journal.jsonl")
        error = RunError(
            kind="timeout", exc_type="CellTimeout", message="slow", attempts=3
        )
        journal.record_cell("k", "cell", "failed", attempts=3, error=error)
        record = journal.failures()["k"]
        assert RunError.from_dict(record["error"]) == error

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "s.journal.jsonl")
        journal.record_cell("k1", "cell-1", "ok")
        journal.record_cell("k2", "cell-2", "ok")
        # Simulate a writer SIGKILLed mid-append: truncate the last line.
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[:-9])
        records = journal.load()
        assert set(records) == {"k1"}

    def test_missing_journal_loads_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "nope.journal.jsonl").load() == {}

    def test_sweep_key_ignores_axis_order(self):
        assert SweepJournal.sweep_key(["b", "a"]) == SweepJournal.sweep_key(
            ["a", "b"]
        )
        assert SweepJournal.sweep_key(["a"]) != SweepJournal.sweep_key(["b"])

    def test_for_sweep_names_file_by_grid(self, tmp_path):
        journal = SweepJournal.for_sweep(tmp_path, ["a", "b"])
        assert journal.path.parent == tmp_path
        assert journal.path.name.endswith(".journal.jsonl")
        assert SweepJournal.sweep_key(["a", "b"]) in journal.path.name


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(cell="*", kind="meteor")

    def test_fires_matches_cell_pattern_and_attempt(self):
        fault = FaultSpec(cell="dir0b:POPS:*", kind="raise", attempt=2)
        assert fault.fires("dir0b:POPS:b16:ginf:process:seedcal", 2)
        assert not fault.fires("dir0b:POPS:b16:ginf:process:seedcal", 1)
        assert not fault.fires("dragon:POPS:b16:ginf:process:seedcal", 2)

    def test_attempt_none_is_permanent(self):
        fault = FaultSpec(cell="*", kind="raise", attempt=None)
        assert all(fault.fires("anything", n) for n in (1, 2, 5))

    def test_fire_worker_faults_raises_injected(self):
        p = plan(FaultSpec(cell="*", kind="raise", message="boom"))
        with pytest.raises(InjectedFault, match="boom"):
            p.fire_worker_faults("cell", 1)
        p.fire_worker_faults("cell", 2)  # attempt 2: fault spent, no-op

    def test_kill_fault_is_skipped_inline(self):
        p = plan(FaultSpec(cell="*", kind="kill"))
        p.fire_worker_faults("cell", 1, allow_kill=False)  # must not die

    def test_should_interrupt_and_cache_fault(self):
        p = plan(
            FaultSpec(cell="a:*", kind="interrupt"),
            FaultSpec(cell="b:*", kind="put-error"),
        )
        assert p.should_interrupt("a:1", 1)
        assert not p.should_interrupt("b:1", 1)
        assert p.cache_fault("b:1", 1).kind == "put-error"
        assert p.cache_fault("a:1", 1) is None
        assert p.has_cache_faults and not p.has_worker_kills

    def test_json_round_trip(self, tmp_path):
        p = plan(
            FaultSpec(cell="*", kind="delay", attempt=None, value=1.5),
            FaultSpec(cell="x:*", kind="raise", message="m"),
            seed=42,
        )
        path = tmp_path / "plan.json"
        p.dump(path)
        assert FaultPlan.load(path) == p

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="cannot read fault plan"):
            FaultPlan.load(path)

    def test_sample_is_deterministic_in_seed(self):
        cells = [f"cell-{i}" for i in range(50)]
        one = FaultPlan.sample(cells, kinds=("raise", "kill"), rate=0.3, seed=7)
        two = FaultPlan.sample(cells, kinds=("raise", "kill"), rate=0.3, seed=7)
        other = FaultPlan.sample(cells, kinds=("raise", "kill"), rate=0.3, seed=8)
        assert one == two
        assert one != other
        assert 0 < len(one.faults) < len(cells)

    def test_sample_rate_bounds(self):
        assert FaultPlan.sample(["a"], rate=0.0).faults == ()
        assert len(FaultPlan.sample(["a", "b"], rate=1.0).faults) == 2
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.sample(["a"], rate=1.5)


class TestFaultyCache:
    def spec_key_cell(self):
        spec = grid(traces=("POPS",))[0]
        return spec, spec.cache_key(), spec.cell_id()

    def test_put_error_degrades_gracefully(self, tmp_path):
        spec, key, cell = self.spec_key_cell()
        registry = MetricsRegistry()
        cache = FaultyCache(
            tmp_path,
            plan(FaultSpec(cell=cell, kind="put-error")),
            registry=registry,
        )
        cache.register_cell(key, cell)
        result = spec.run()
        assert cache.put(key, result) is False  # first put: injected OSError
        assert cache.put_errors == 1
        assert registry.counter("cache.put_errors").value == 1
        assert cache.get(key) is None  # nothing landed on disk
        assert cache.put(key, result) is True  # fault spent: second put lands
        assert same(cache.get(key), result)

    @pytest.mark.parametrize("kind", ["short-write", "corrupt"])
    def test_damaged_entries_detected_on_get(self, tmp_path, kind):
        spec, key, cell = self.spec_key_cell()
        cache = FaultyCache(tmp_path, plan(FaultSpec(cell=cell, kind=kind)))
        cache.register_cell(key, cell)
        assert cache.put(key, spec.run()) is True  # damage lands silently
        assert cache.get(key) is None  # ... and is caught on read
        assert cache.corrupt == 1
        assert not cache.path_for(key).exists()  # entry was removed

    def test_unmatched_cells_pass_through(self, tmp_path):
        spec, key, cell = self.spec_key_cell()
        cache = FaultyCache(
            tmp_path, plan(FaultSpec(cell="no-such-cell:*", kind="put-error"))
        )
        cache.register_cell(key, cell)
        result = spec.run()
        assert cache.put(key, result) is True
        assert same(cache.get(key), result)


class TestResultCacheDegradation:
    def test_put_oserror_returns_false_and_counts(self, tmp_path, monkeypatch):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        spec = grid(traces=("POPS",))[0]

        def explode(key, tmp, result):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_write_result", explode)
        assert cache.put(spec.cache_key(), spec.run()) is False
        assert cache.put_errors == 1
        assert registry.counter("cache.put_errors").value == 1
        assert len(cache) == 0

    def test_leftover_tmp_files_swept_on_open(self, tmp_path):
        (tmp_path / "deadbeef.pkl.123.tmp").write_bytes(b"partial")
        (tmp_path / "keep.pkl").write_bytes(b"entry")
        ResultCache(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert (tmp_path / "keep.pkl").exists()


class TestCellExecutor:
    def test_runs_a_cell_and_reports_ok(self):
        spec = grid(traces=("POPS",))[0]
        executor = CellExecutor(jobs=1)
        executor.submit(0, spec)
        events = []
        while executor.active:
            events.extend(executor.poll())
        [event] = events
        assert event.ok and event.index == 0 and event.attempt == 1
        result, elapsed, pid, manifest = event.payload
        assert same(result, spec.run())
        assert manifest.worker_pid == pid

    def test_exception_becomes_event_not_crash(self):
        spec = grid(traces=("POPS",))[0]
        executor = CellExecutor(
            jobs=1,
            faults=plan(FaultSpec(cell="*", kind="raise", message="bang")),
        )
        executor.submit(0, spec)
        events = []
        while executor.active:
            events.extend(executor.poll())
        [event] = events
        assert not event.ok
        assert event.kind == "exception"
        assert event.exc_type == "InjectedFault"
        assert event.message == "bang"
        assert event.traceback and "InjectedFault" in event.traceback

    def test_sigkilled_worker_detected_as_crash(self):
        spec = grid(traces=("POPS",))[0]
        executor = CellExecutor(
            jobs=1, faults=plan(FaultSpec(cell="*", kind="kill"))
        )
        executor.submit(0, spec)
        events = []
        while executor.active:
            events.extend(executor.poll())
        [event] = events
        assert event.kind == "worker-crash"
        assert event.exc_type == "Signal(9)"

    def test_overrunning_cell_is_killed_and_reported(self):
        spec = grid(traces=("POPS",))[0]
        executor = CellExecutor(
            jobs=1,
            timeout=0.3,
            faults=plan(FaultSpec(cell="*", kind="delay", value=30.0)),
        )
        executor.submit(0, spec)
        events = []
        while executor.active:
            events.extend(executor.poll())
        [event] = events
        assert event.kind == "timeout"
        assert event.exc_type == "CellTimeout"
        assert "0.3s" in event.message

    def test_abort_kills_everything(self):
        specs = grid(protocols=("dir0b", "dragon"), traces=("POPS", "THOR"))
        executor = CellExecutor(
            jobs=2, faults=plan(FaultSpec(cell="*", kind="delay", value=30.0))
        )
        for index, spec in enumerate(specs):
            executor.submit(index, spec)
        executor.poll()  # start some workers
        assert executor.abort() == len(specs)
        assert not executor.active


class TestRunOutcome:
    def test_carries_exactly_one_of_result_or_error(self):
        spec = grid(traces=("POPS",))[0]
        error = RunError(kind="exception", exc_type="X", message="m", attempts=1)
        with pytest.raises(ValueError, match="exactly one"):
            RunOutcome(
                spec=spec, result=None, cached=False, elapsed=0.0, worker=0
            )
        outcome = RunOutcome(
            spec=spec, result=None, cached=False, elapsed=0.0, worker=0,
            error=error,
        )
        assert not outcome.ok


class TestSweepFailureIsolation:
    PERMANENT = FaultSpec(
        cell="dir0b:POPS:*", kind="raise", attempt=None, message="hw fault"
    )

    def test_fail_fast_is_still_the_default(self):
        with pytest.raises(CellFailure, match="hw fault") as excinfo:
            run_sweep(grid(), faults=plan(self.PERMANENT))
        assert excinfo.value.error.kind == "exception"
        assert excinfo.value.cell.startswith("dir0b:POPS")

    def test_keep_going_completes_the_rest_of_the_grid(self):
        report = run_sweep(grid(), keep_going=True, faults=plan(self.PERMANENT))
        assert report.cells == 2
        assert len(report.failures) == 1
        assert len(report.successes) == 1
        [failed] = report.failures
        assert failed.error.kind == "exception"
        assert failed.error.exc_type == "InjectedFault"
        assert failed.manifest.error["message"] == "hw fault"
        assert report.registry.counter("sweep.failures").value == 1

    def test_max_failures_bounds_keep_going(self):
        everywhere = FaultSpec(cell="*", kind="raise", attempt=None)
        with pytest.raises(CellFailure, match="max_failures=1"):
            run_sweep(
                grid(), keep_going=True, max_failures=1, faults=plan(everywhere)
            )

    def test_retry_recovers_a_transient_fault(self):
        transient = FaultSpec(cell="dir0b:POPS:*", kind="raise", attempt=1)
        registry = MetricsRegistry()
        report = run_sweep(
            grid(),
            retry=RetryPolicy(retries=1, base_seconds=0.001),
            faults=plan(transient),
            registry=registry,
        )
        assert not report.failures
        assert registry.counter("sweep.retries").value == 1
        clean = run_sweep(grid())
        assert all(
            same(a.result, b.result)
            for a, b in zip(report.outcomes, clean.outcomes)
        )

    def test_exhausted_retries_report_total_attempts(self):
        report = run_sweep(
            grid(traces=("POPS",)),
            retry=RetryPolicy(retries=2, base_seconds=0.001),
            keep_going=True,
            faults=plan(self.PERMANENT),
        )
        [failed] = report.failures
        assert failed.error.attempts == 3

    def test_killed_worker_recovers_on_retry(self):
        killed = FaultSpec(cell="dir0b:POPS:*", kind="kill", attempt=1)
        registry = MetricsRegistry()
        report = run_sweep(
            grid(),
            jobs=2,
            retry=RetryPolicy(retries=1, base_seconds=0.001),
            faults=plan(killed),
            registry=registry,
        )
        assert not report.failures
        assert registry.counter("sweep.retries").value == 1
        assert same(report.outcomes[0].result, grid()[0].run())

    def test_timeout_is_killed_counted_and_recovers_on_retry(self):
        slow_once = FaultSpec(
            cell="dir0b:POPS:*", kind="delay", attempt=1, value=30.0
        )
        registry = MetricsRegistry()
        report = run_sweep(
            grid(),
            cell_timeout=0.3,
            retry=RetryPolicy(retries=1, base_seconds=0.001),
            faults=plan(slow_once),
            registry=registry,
        )
        assert not report.failures
        assert registry.counter("sweep.timeouts").value == 1
        assert registry.counter("sweep.retries").value == 1

    def test_permanent_timeout_fails_with_timeout_kind(self):
        always_slow = FaultSpec(
            cell="dir0b:POPS:*", kind="delay", attempt=None, value=30.0
        )
        report = run_sweep(
            grid(), cell_timeout=0.3, keep_going=True, faults=plan(always_slow)
        )
        [failed] = report.failures
        assert failed.error.kind == "timeout"
        assert failed.error.exc_type == "CellTimeout"

    def test_failed_cells_render_deterministically(self):
        report = run_sweep(
            grid(), keep_going=True, faults=plan(self.PERMANENT)
        )
        table = report.cell_table()
        assert "FAILED" in table and "exception" in table
        failure_table = report.failure_table()
        assert "InjectedFault: hw fault" in failure_table
        again = run_sweep(grid(), keep_going=True, faults=plan(self.PERMANENT))
        assert again.cell_table() == table
        assert again.failure_table() == failure_table
        assert run_sweep(grid()).failure_table() == "no failures"

    def test_comparison_refuses_a_grid_with_failures(self):
        report = run_sweep(grid(), keep_going=True, faults=plan(self.PERMANENT))
        with pytest.raises(ValueError, match="failed cells"):
            report.comparison()

    def test_metrics_dict_lists_failures(self):
        report = run_sweep(grid(), keep_going=True, faults=plan(self.PERMANENT))
        [entry] = report.metrics_dict()["failures"]
        assert entry["kind"] == "exception"
        assert entry["cell"].startswith("dir0b:POPS")

    def test_validation_of_resilience_knobs(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            run_sweep(grid(), cell_timeout=0.0)
        with pytest.raises(ValueError, match="max_failures"):
            run_sweep(grid(), max_failures=-1)
        with pytest.raises(ValueError, match="requires a journal"):
            run_sweep(grid(), resume=True)


class TestJournalAndResume:
    def test_sweep_journals_every_cell(self, tmp_path):
        specs = grid()
        cache = ResultCache(tmp_path)
        journal = SweepJournal.for_sweep(
            tmp_path, [s.cache_key() for s in specs]
        )
        run_sweep(specs, cache=cache, journal=journal)
        assert journal.successes().keys() == {s.cache_key() for s in specs}
        # Second run: hits are journaled as cached successes.
        run_sweep(specs, cache=cache, journal=journal)
        assert all(r["cached"] for r in journal.load().values())

    def test_resume_redispatches_only_failures(self, tmp_path):
        specs = grid(protocols=("dir0b", "dragon"))
        cache = ResultCache(tmp_path)
        keys = [s.cache_key() for s in specs]
        journal = SweepJournal.for_sweep(tmp_path, keys)
        broken = FaultSpec(cell="dragon:THOR:*", kind="raise", attempt=None)
        report = run_sweep(
            specs, cache=cache, journal=journal, keep_going=True,
            faults=plan(broken),
        )
        assert len(report.failures) == 1
        # Resume without the fault: only the failed cell re-simulates.
        resumed = run_sweep(
            specs,
            cache=cache,
            journal=SweepJournal.for_sweep(tmp_path, keys),
            resume=True,
        )
        assert resumed.simulations == 1  # zero re-simulation of successes
        assert resumed.cache_hits == 3
        assert not resumed.failures
        assert journal.successes().keys() == set(keys)

    def test_resume_after_interrupt_completes_the_grid(self, tmp_path):
        specs = grid(protocols=("dir0b", "dragon"))
        keys = [s.cache_key() for s in specs]
        cache = ResultCache(tmp_path)
        # SIGINT lands (deterministically) as the second cell completes.
        interrupt = FaultSpec(
            cell=specs[1].cell_id(), kind="interrupt", attempt=None
        )
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep(
                specs,
                cache=cache,
                journal=SweepJournal.for_sweep(tmp_path, keys),
                faults=plan(interrupt),
            )
        partial = excinfo.value.report
        assert excinfo.value.total == 4
        assert len(partial.outcomes) == 2
        # Completed cells were flushed to cache and journal before the stop.
        journal = SweepJournal.for_sweep(tmp_path, keys)
        assert len(journal.successes()) == 2
        for outcome in partial.outcomes:
            assert same(cache.get(outcome.spec.cache_key()), outcome.result)
        # Resume completes the remaining half from the journal + cache.
        resumed = run_sweep(
            specs, cache=cache,
            journal=SweepJournal.for_sweep(tmp_path, keys), resume=True,
        )
        assert resumed.cache_hits == 2 and resumed.simulations == 2
        assert all(
            same(o.result, s.run())
            for o, s in zip(resumed.outcomes, specs)
        )

    def test_interrupt_flushes_under_parallel_jobs(self, tmp_path):
        specs = grid(protocols=("dir0b", "dragon"))
        keys = [s.cache_key() for s in specs]
        cache = ResultCache(tmp_path)
        interrupt = FaultSpec(cell="*", kind="interrupt", attempt=None)
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep(
                specs, jobs=2, cache=cache,
                journal=SweepJournal.for_sweep(tmp_path, keys),
                faults=plan(interrupt),
            )
        # The very first completion raises, so exactly one cell landed —
        # and it is already durable.
        [outcome] = excinfo.value.report.outcomes
        assert same(cache.get(outcome.spec.cache_key()), outcome.result)
        assert len(SweepJournal.for_sweep(tmp_path, keys).successes()) == 1


class TestFaultedSweepDeterminism:
    """Property: surviving cells are bit-identical to a clean serial sweep."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_transient_faults_never_perturb_results(self, seed):
        specs = grid(protocols=("dir0b", "dragon"))
        sampled = FaultPlan.sample(
            [s.cell_id() for s in specs],
            kinds=("raise",),
            rate=0.5,
            seed=seed,
            attempt=1,
        )
        clean = run_sweep(specs)
        faulted = run_sweep(
            specs,
            jobs=2,
            retry=RetryPolicy(retries=1, base_seconds=0.001),
            faults=sampled,
        )
        assert not faulted.failures
        for faulty, reference in zip(faulted.outcomes, clean.outcomes):
            assert pickle.dumps(faulty.result) == pickle.dumps(reference.result)

    def test_permanent_faults_only_remove_their_cells(self):
        specs = grid(protocols=("dir0b", "dragon"))
        sampled = FaultPlan.sample(
            [s.cell_id() for s in specs],
            kinds=("raise",), rate=0.5, seed=3, attempt=None,
        )
        assert sampled.faults  # seed 3 hits at least one cell
        clean = run_sweep(specs)
        faulted = run_sweep(specs, keep_going=True, faults=sampled)
        assert len(faulted.failures) == len(sampled.faults)
        for faulty, reference in zip(faulted.outcomes, clean.outcomes):
            if faulty.ok:
                assert pickle.dumps(faulty.result) == pickle.dumps(
                    reference.result
                )
