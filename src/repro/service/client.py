"""A stdlib HTTP client for the sweep service.

``http.client`` only — usable from the test suite, the CI smoke job and
any machine with a bare Python.  Every call opens one connection (the
server closes after each response anyway) and decodes JSON bodies;
non-2xx responses raise :class:`ServiceError` carrying the status code
and the decoded error payload.

Pass ``retry=RetryPolicy(retries=N)`` (the deterministic-jitter backoff
from :mod:`repro.resilience`) and the client transparently retries
transient failures — 429 and 503 responses and connection-level errors —
honouring a server ``Retry-After`` when it exceeds the computed backoff.
Retried POSTs are safe because a retrying client stamps every ``submit``
with an ``Idempotency-Key`` header (generated when the caller gives
none), so a request whose *response* was lost returns the original job
instead of creating a duplicate.  The default is no retries: tests that
assert on 429/503 see them raw.

>>> client = ServiceClient("http://127.0.0.1:8321")
>>> job = client.submit({"sweep": {"protocols": ["dir0b"], "scale": 512}})
>>> done = client.wait(job["id"])
>>> result = client.result(job["id"])
"""

from __future__ import annotations

import http.client
import json
import time
import uuid
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from ..resilience.retry import RetryPolicy

__all__ = ["ServiceClient", "ServiceError"]

#: HTTP statuses worth retrying: rate limit and queue-full/draining.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(Exception):
    """A non-2xx response: ``status`` plus the server's error payload."""

    def __init__(self, status: int, payload: object) -> None:
        self.status = status
        self.payload = payload
        detail = ""
        if isinstance(payload, dict) and "error" in payload:
            detail = f": {payload['error']}"
        super().__init__(f"HTTP {status}{detail}")

    @property
    def retry_after(self) -> Optional[float]:
        if isinstance(self.payload, dict):
            value = self.payload.get("retry_after_s")
            if isinstance(value, (int, float)):
                return float(value)
        return None


class ServiceClient:
    """Talks to one sweep service at ``base_url``.

    ``client`` names this caller for the server's per-client rate
    buckets (the ``X-Client`` header); ``timeout`` is the per-request
    socket timeout in seconds.
    """

    def __init__(
        self,
        base_url: str,
        client: str = "python-client",
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.client_name = client
        self.timeout = timeout
        self.retry = retry

    # -- plumbing --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Dict:
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body, extra_headers)
            except ServiceError as error:
                if (
                    self.retry is None
                    or attempt > self.retry.retries
                    or error.status not in RETRYABLE_STATUSES
                ):
                    raise
                delay = self.retry.delay(f"{method} {path}", attempt)
                retry_after = error.retry_after
                if retry_after is not None:
                    delay = max(delay, retry_after)
                time.sleep(delay)
            except (ConnectionError, http.client.HTTPException, OSError):
                # The request may have been *applied* before the response
                # was lost; retrying a submit is still safe because it
                # carries an Idempotency-Key (see submit()).
                if self.retry is None or attempt > self.retry.retries:
                    raise
                time.sleep(self.retry.delay(f"{method} {path}", attempt))

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"X-Client": self.client_name}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            headers.update(extra_headers)
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode() or "null")
            except json.JSONDecodeError:
                decoded = {"raw": raw.decode(errors="replace")}
            if response.status >= 400:
                raise ServiceError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- API -------------------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def ready(self) -> Dict:
        """The readiness payload; raises ServiceError(503) when not ready."""
        return self._request("GET", "/readyz")

    def submit(
        self, request: dict, idempotency_key: Optional[str] = None
    ) -> Dict:
        """POST a sweep document; returns the job snapshot (id, state...).

        When this client retries (``retry=`` was given) and neither the
        caller nor the document supplies an idempotency key, one is
        generated — a duplicate submit caused by a lost response then
        returns the original job instead of double-submitting.
        """
        if (
            idempotency_key is None
            and self.retry is not None
            and not (
                isinstance(request, dict) and request.get("idempotency_key")
            )
        ):
            idempotency_key = uuid.uuid4().hex
        extra = (
            (("Idempotency-Key", idempotency_key),)
            if idempotency_key is not None
            else ()
        )
        return self._request(
            "POST", "/sweeps", body=request, extra_headers=extra
        )

    def list_jobs(self) -> Dict:
        return self._request("GET", "/sweeps")

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/sweeps/{job_id}")

    def result(self, job_id: str) -> Dict:
        """The finished report payload (raises 409 ServiceError earlier)."""
        return self._request("GET", f"/sweeps/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/sweeps/{job_id}/cancel")

    def metrics(self) -> str:
        """The raw OpenMetrics exposition text."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", "/metrics", headers={"X-Client": self.client_name}
            )
            response = connection.getresponse()
            raw = response.read().decode()
            if response.status >= 400:
                raise ServiceError(response.status, {"error": raw})
            return raw
        finally:
            connection.close()

    def events(self, job_id: str) -> Iterator[Dict]:
        """Stream the job's NDJSON events until the server closes."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET",
                f"/sweeps/{job_id}/events",
                headers={"X-Client": self.client_name},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode()
                try:
                    payload = json.loads(raw or "null")
                except json.JSONDecodeError:
                    payload = {"error": raw}
                raise ServiceError(response.status, payload)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            connection.close()

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.2,
    ) -> Dict:
        """Poll ``/sweeps/{id}`` until the job is terminal; returns it.

        Raises :class:`TimeoutError` if it is still live at the deadline.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("finished", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {job_id} still {snapshot['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll_seconds)
