"""Unit tests for the processor-count scaling sweeps (the paper's future work)."""

import pytest

from repro.analysis.scaling import (
    dirib_broadcast_scaling,
    dirinb_miss_scaling,
    fanout_scaling,
    scale_profile_to_processors,
)
from repro.trace.synthetic import WorkloadProfile


def base_profile(length=30_000):
    return WorkloadProfile(
        name="scaletest",
        length=length,
        seed=23,
        w_lock=0.3,
        n_locks=1,
        lock_hold_turns=(8, 16),
        w_migratory=0.6,
        w_consume=0.4,
        w_produce=0.3,
    )


class TestProfileScaling:
    def test_processes_and_length_scale_together(self):
        profile = scale_profile_to_processors(base_profile(), 8)
        assert profile.processes == 8
        assert profile.processors == 8
        assert profile.length == 60_000

    def test_downscaling_works_too(self):
        profile = scale_profile_to_processors(base_profile(), 2)
        assert profile.processes == 2
        assert profile.length == 15_000

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_profile_to_processors(base_profile(), 0)


class TestSweeps:
    def test_fanout_sweep_structure(self):
        points = fanout_scaling(base_profile(10_000), processor_counts=(4, 8))
        assert [p.n_processors for p in points] == [4, 8]
        for point in points:
            assert 0 <= point.share_at_most_one_invalidation <= 1
            assert point.cycles_per_reference > 0

    def test_mean_fanout_grows_with_processors(self):
        # More caches can hold a block, so the average invalidation touches
        # at least as many copies on a bigger machine.
        points = fanout_scaling(base_profile(40_000), processor_counts=(4, 16))
        assert (
            points[1].mean_invalidation_fanout
            >= 0.8 * points[0].mean_invalidation_fanout
        )

    def test_dir1b_broadcasts_grow_with_processors(self):
        points = dirib_broadcast_scaling(
            base_profile(40_000), pointers=1, processor_counts=(4, 16)
        )
        assert (
            points[1].broadcasts_per_thousand_refs
            >= points[0].broadcasts_per_thousand_refs * 0.8
        )

    def test_more_pointers_damp_broadcast_growth(self):
        wide = dirib_broadcast_scaling(
            base_profile(30_000), pointers=4, processor_counts=(8,)
        )[0]
        narrow = dirib_broadcast_scaling(
            base_profile(30_000), pointers=1, processor_counts=(8,)
        )[0]
        assert wide.broadcasts_per_thousand_refs <= narrow.broadcasts_per_thousand_refs

    def test_dirinb_misses_fall_with_pointers_at_scale(self):
        capped = dirinb_miss_scaling(
            base_profile(30_000), pointers=1, processor_counts=(8,)
        )[0]
        roomy = dirinb_miss_scaling(
            base_profile(30_000), pointers=4, processor_counts=(8,)
        )[0]
        assert roomy.data_miss_rate <= capped.data_miss_rate

    def test_render(self):
        (point,) = fanout_scaling(base_profile(5_000), processor_counts=(4,))
        text = point.render()
        assert "cyc/ref" in text and "fanout" in text
