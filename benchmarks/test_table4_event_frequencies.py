"""Table 4: event frequencies as a percentage of all references."""

import pytest

from repro.analysis.tables import TABLE4_ROWS, table4

#: The paper's Table 4 (percent of all references); None where it prints '-'.
PAPER_TABLE4 = {
    "instr": (49.72, 49.72, 49.72, 49.72),
    "read": (39.82, 39.82, 39.82, 39.82),
    "rd-hit": (34.32, 38.88, 38.88, 39.20),
    "rd-miss(rm)": (5.18, 0.62, 0.62, 0.30),
    "rm-blk-cln": (4.78, None, 0.23, 0.14),
    "rm-blk-drty": (0.40, None, 0.40, 0.17),
    "rm-first-ref": (0.32, 0.32, 0.32, 0.32),
    "write": (10.46, 10.46, 10.46, 10.46),
    "wrt-hit(wh)": (10.19, 10.25, 10.25, 10.36),
    "wh-blk-cln": (None, None, 0.41, None),
    "wh-blk-drty": (None, None, 9.84, None),
    "wh-distrib": (None, None, None, 1.74),
    "wh-local": (None, None, None, 8.62),
    "wrt-miss(wm)": (0.17, 0.12, 0.11, 0.02),
    "wm-blk-cln": (0.08, None, 0.02, 0.01),
    "wm-blk-drty": (0.09, None, 0.09, 0.01),
    "wm-first-ref": (0.08, 0.08, 0.08, 0.08),
}
SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_table4_event_frequencies(benchmark, comparison, save_result):
    result = benchmark(table4, comparison, SCHEMES)

    lines = [result.render(), "", "Measured vs paper (selected rows):"]
    for row in TABLE4_ROWS:
        paper = PAPER_TABLE4[row]
        cells = []
        for index, scheme in enumerate(SCHEMES):
            measured = result.value(row, scheme)
            reference = f"{paper[index]:.2f}" if paper[index] is not None else "-"
            cells.append(f"{scheme}: {measured:.2f} (paper {reference})")
        lines.append(f"  {row:<14} " + "  ".join(cells))
    save_result("table4_event_frequencies", "\n".join(lines))

    # --- shape assertions against the paper -------------------------------
    # Dir1NB's read-miss rate is an order of magnitude above Dir0B's.
    assert result.value("rd-miss(rm)", "dir1nb") > 4 * result.value(
        "rd-miss(rm)", "dir0b"
    )
    # WTI and Dir0B share a state-change spec: identical miss frequencies.
    assert result.value("rd-miss(rm)", "wti") == pytest.approx(
        result.value("rd-miss(rm)", "dir0b"), rel=1e-9
    )
    # Dragon's miss rate is the native rate — the lowest of all schemes.
    assert result.value("rd-miss(rm)", "dragon") < result.value(
        "rd-miss(rm)", "dir0b"
    )
    # Headline magnitudes within a factor-of-two band of the paper.
    assert result.value("rd-miss(rm)", "dir1nb") == pytest.approx(5.18, rel=0.5)
    assert result.value("rd-miss(rm)", "dir0b") == pytest.approx(0.62, rel=0.5)
    assert result.value("wh-blk-cln", "dir0b") == pytest.approx(0.41, rel=0.75)
    assert result.value("wh-distrib", "dragon") == pytest.approx(1.74, rel=0.5)
