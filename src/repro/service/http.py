"""The asyncio HTTP front end over :class:`~repro.service.jobs.JobManager`.

Pure stdlib: ``asyncio.start_server`` plus a minimal HTTP/1.1
request parser — no web framework, per the north-star's
no-hard-dependency rule.  Every response closes its connection
(``Connection: close``), which keeps the parser honest and the service
immune to slow-loris keep-alive games.

Routes (see ``docs/service.md`` for the full reference)::

    POST   /sweeps               submit a sweep          201 / 200 dedupe
    GET    /sweeps               list jobs
    GET    /sweeps/{id}          status snapshot         404 unknown
    GET    /sweeps/{id}/result   finished report JSON    409 until terminal
    GET    /sweeps/{id}/events   NDJSON progress stream
    POST   /sweeps/{id}/cancel   request cancellation
    DELETE /sweeps/{id}          alias for cancel
    GET    /metrics              OpenMetrics exposition
    GET    /healthz              liveness (always 200 while the loop runs)
    GET    /readyz               readiness: 503 while recovering/draining

Backpressure surfaces as status codes, never queues hidden in the
server: 422 invalid schema, 429 rate-limited (with ``Retry-After``),
503 queue-full or draining.  The blocking manager calls run through
``asyncio.to_thread`` so one slow submission cannot stall the loop.

:func:`run_service` is the blocking entry the ``serve`` CLI verb uses —
it installs SIGTERM/SIGINT handlers that drain the manager before the
loop exits.  :func:`start_background` runs the same server on a daemon
thread and hands back a :class:`ServiceHandle`, which is how the tests,
the benchmark and ``examples/sweep_service.py`` embed a live service
in-process.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import Dict, Optional, Tuple

from .jobs import (
    JobManager,
    JobState,
    QueueFull,
    RateLimited,
    ServiceDraining,
)
from .schema import RequestError

__all__ = ["SweepService", "ServiceHandle", "run_service", "start_background"]

#: Largest accepted request body, in bytes.  Sweep documents are small;
#: anything bigger is a mistake or an attack.
MAX_BODY_BYTES = 1 << 20

#: Seconds between poll rounds while streaming a job's events.
EVENT_POLL_SECONDS = 0.2

_MARKER_KINDS = frozenset({"cache_hit", "reprice", "retry", "timeout", "fault"})


class _HttpError(Exception):
    """Internal short-circuit carrying a ready-to-send error response."""

    def __init__(self, status: int, payload: dict, headers=()) -> None:
        self.status = status
        self.payload = payload
        self.headers = tuple(headers)
        super().__init__(f"HTTP {status}")


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class SweepService:
    """One listening socket mapping HTTP onto a :class:`JobManager`."""

    def __init__(
        self, manager: JobManager, host: str = "127.0.0.1", port: int = 8321
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- server lifecycle ------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, error.payload, error.headers
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return
            self.manager.registry.counter("service.http_requests").inc()
            client = headers.get(
                "x-client", writer.get_extra_info("peername", ("unknown",))[0]
            )
            try:
                await self._dispatch(writer, method, path, headers, body, client)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, error.payload, error.headers
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as error:  # last-resort 500, never a hung socket
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("client closed before sending a request")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, {"error": "malformed request line"})
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413,
                {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"},
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, headers=()
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        await self._send_raw(
            writer,
            status,
            body,
            (("Content-Type", "application/json"),) + tuple(headers),
        )

    async def _send_raw(
        self, writer: asyncio.StreamWriter, status: int, body: bytes, headers=()
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        client: str,
    ) -> None:
        if path == "/sweeps":
            if method == "POST":
                return await self._post_sweep(
                    writer, body, client, headers.get("idempotency-key")
                )
            if method == "GET":
                jobs = await asyncio.to_thread(self.manager.list_jobs)
                return await self._send_json(
                    writer, 200, {"jobs": [job.snapshot() for job in jobs]}
                )
            raise _HttpError(405, {"error": f"{method} not allowed on {path}"})
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, {"error": "GET only"})
            text = self.manager.registry.to_openmetrics()
            return await self._send_raw(
                writer,
                200,
                text.encode(),
                (
                    (
                        "Content-Type",
                        "application/openmetrics-text; version=1.0.0",
                    ),
                ),
            )
        if path == "/healthz":
            # Liveness: the loop is answering, so the process is alive —
            # always 200, even mid-recovery or draining.  ``degraded``
            # carries everything a dashboard should worry about.
            if method != "GET":
                raise _HttpError(405, {"error": "GET only"})
            info = self.manager.health_info()
            info["ok"] = True
            return await self._send_json(writer, 200, info)
        if path == "/readyz":
            # Readiness: should a load balancer send new work here?  503
            # while journal replay is rebuilding the job table and while
            # draining; degraded-but-ready states (queue saturation,
            # write-failure counters) stay 200 with the evidence attached.
            if method != "GET":
                raise _HttpError(405, {"error": "GET only"})
            info = self.manager.health_info()
            ready = not (info["recovering"] or info["draining"])
            info["ready"] = ready
            return await self._send_json(writer, 200 if ready else 503, info)
        if path.startswith("/sweeps/"):
            rest = path[len("/sweeps/") :]
            job_id, _, action = rest.partition("/")
            if not job_id:
                raise _HttpError(404, {"error": "missing job id"})
            job = await asyncio.to_thread(self.manager.get, job_id)
            if job is None:
                raise _HttpError(404, {"error": f"unknown sweep {job_id!r}"})
            if not action:
                if method == "GET":
                    return await self._send_json(writer, 200, job.snapshot())
                if method == "DELETE":
                    await asyncio.to_thread(self.manager.cancel, job_id)
                    return await self._send_json(writer, 200, job.snapshot())
                raise _HttpError(405, {"error": "GET or DELETE"})
            if action == "cancel" and method == "POST":
                await asyncio.to_thread(self.manager.cancel, job_id)
                return await self._send_json(writer, 200, job.snapshot())
            if action == "result" and method == "GET":
                return await self._get_result(writer, job)
            if action == "events" and method == "GET":
                return await self._stream_events(writer, job)
            raise _HttpError(
                404, {"error": f"unknown action {action!r} for {method}"}
            )
        raise _HttpError(404, {"error": f"no route for {path}"})

    # -- handlers --------------------------------------------------------------

    async def _post_sweep(
        self,
        writer: asyncio.StreamWriter,
        body: bytes,
        client: str,
        idempotency_key: Optional[str] = None,
    ) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(
                400, {"error": f"request body is not JSON: {error}"}
            ) from None
        try:
            job = await asyncio.to_thread(
                self.manager.submit, payload, client, idempotency_key
            )
        except RequestError as error:
            raise _HttpError(
                422,
                {"error": "invalid sweep request", "details": error.details},
            ) from None
        except RateLimited as error:
            self.manager.registry.counter("service.rate_limited").inc()
            raise _HttpError(
                429,
                {"error": str(error), "retry_after_s": error.retry_after},
                (("Retry-After", f"{error.retry_after:.0f}"),),
            ) from None
        except (QueueFull, ServiceDraining) as error:
            raise _HttpError(503, {"error": str(error)}) from None
        # 200 for anything that didn't create new work (coalesced onto an
        # existing job, or served inline from the cache); 201 otherwise.
        snapshot = job.snapshot()
        created = not job.deduped and snapshot["state"] in (
            JobState.QUEUED,
            JobState.RUNNING,
        )
        await self._send_json(
            writer,
            201 if created else 200,
            snapshot,
            (("Location", f"/sweeps/{job.job_id}"),),
        )

    async def _get_result(self, writer: asyncio.StreamWriter, job) -> None:
        with job.lock:
            state = job.state
        if state != JobState.FINISHED:
            raise _HttpError(
                409,
                {
                    "error": f"sweep {job.job_id} is {state}, not finished",
                    "state": state,
                },
            )
        body = await asyncio.to_thread(job.result_path.read_bytes)
        await self._send_raw(
            writer, 200, body, (("Content-Type", "application/json"),)
        )

    async def _stream_events(self, writer: asyncio.StreamWriter, job) -> None:
        """NDJSON progress: journal records live, span markers at the end.

        Streams the job's journal lines (the PR 4 substrate — one record
        per cell outcome) as they land, interleaved with status snapshots
        whenever the heartbeat file changes, until the job goes terminal;
        then replays the sweep's marker spans (cache hits, retries,
        faults…) from the Chrome trace and closes with an ``end`` event.
        """
        reason = _REASONS[200]
        writer.write(
            (
                f"HTTP/1.1 200 {reason}\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )

        def emit(event: dict) -> bytes:
            return (json.dumps(event, sort_keys=True) + "\n").encode()

        writer.write(emit({"event": "snapshot", "job": job.snapshot()}))
        await writer.drain()

        journal_offset = 0
        last_status: Optional[str] = None
        while True:
            with job.lock:
                state = job.state
            terminal = state in JobState.TERMINAL
            try:
                with open(job.journal_path, "r") as handle:
                    handle.seek(journal_offset)
                    chunk = handle.read()
                    journal_offset = handle.tell()
            except OSError:
                chunk = ""
            for line in chunk.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail; the next poll re-reads nothing
                writer.write(emit({"event": "journal", "record": record}))
            try:
                status_text = job.status_path.read_text()
            except OSError:
                status_text = None
            if status_text and status_text != last_status:
                last_status = status_text
                try:
                    status = json.loads(status_text)
                except json.JSONDecodeError:
                    status = None
                if status is not None:
                    writer.write(emit({"event": "status", "status": status}))
            await writer.drain()
            if terminal:
                break
            await asyncio.sleep(EVENT_POLL_SECONDS)

        for marker in self._markers(job):
            writer.write(emit({"event": "marker", "span": marker}))
        with job.lock:
            final_state = job.state
        writer.write(emit({"event": "end", "state": final_state}))
        await writer.drain()

    def _markers(self, job) -> list:
        """The sweep's instantaneous marker spans, from its Chrome trace."""
        try:
            document = json.loads(job.spans_path.read_text())
        except (OSError, json.JSONDecodeError):
            return []
        markers = []
        for slice_ in document.get("traceEvents", []):
            if slice_.get("cat") in _MARKER_KINDS:
                markers.append(
                    {
                        "name": slice_.get("name"),
                        "kind": slice_.get("cat"),
                        "ts_us": slice_.get("ts"),
                        "args": slice_.get("args", {}),
                    }
                )
        return markers


# -- entry points --------------------------------------------------------------


class ServiceHandle:
    """A service running on a background thread (tests, examples, bench)."""

    def __init__(self, manager: JobManager, host: str, port: int) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._service: Optional[SweepService] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._service = SweepService(self.manager, self.host, self.port)

        async def serve() -> None:
            self.host, self.port = await self._service.start()
            self._started.set()

        self._loop.run_until_complete(serve())
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._service.stop())
            self._loop.close()

    def start(self, timeout: float = 10.0) -> "ServiceHandle":
        self._thread = threading.Thread(
            target=self._run, name="sweep-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start listening in time")
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if drain:
            self.manager.drain(timeout=timeout)
        self.manager.shutdown(cancel_running=not drain)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)


def start_background(manager: JobManager, host: str = "127.0.0.1", port: int = 0):
    """Serve ``manager`` on a daemon thread; returns a started handle.

    ``port=0`` binds an ephemeral port — read it back from the handle.
    """
    return ServiceHandle(manager, host, port).start()


def run_service(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8321,
    drain_timeout: float = 30.0,
    ready_stream=None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain and exit (the CLI path).

    Prints ``listening on http://host:port`` to ``ready_stream`` (stderr
    by default) once bound — the CI smoke job polls for that line.
    Returns 0 after a clean drain, 1 if jobs had to be abandoned.
    """
    stream = ready_stream if ready_stream is not None else sys.stderr

    async def main() -> int:
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        service = SweepService(manager, host, port)
        bound_host, bound_port = await service.start()
        print(f"listening on http://{bound_host}:{bound_port}", file=stream)
        stream.flush()
        await stop_event.wait()
        print("draining...", file=stream)
        drained = await asyncio.to_thread(manager.drain, drain_timeout)
        await service.stop()
        manager.shutdown(cancel_running=not drained)
        print(
            "drained cleanly" if drained else "drain timed out; jobs abandoned",
            file=stream,
        )
        return 0 if drained else 1

    return asyncio.run(main())
