"""Calibration robustness: the headline shapes are not seed artifacts.

The workload profiles are calibrated with fixed seeds; these tests re-run
the core comparison with perturbed seeds and assert the paper's orderings
survive — the reproduction rests on the sharing *structure*, not on one
lucky random stream.
"""

import pytest

from repro.core.comparison import run_comparison
from repro.interconnect import pipelined_bus
from repro.trace.synthetic import SyntheticWorkload
from repro.trace.workloads import pero_profile, pops_profile

SCALE = 1.0 / 64.0
SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def _comparison(seed_offset: int):
    factories = {
        "POPS": lambda: SyntheticWorkload(
            pops_profile(scale=SCALE, seed=51 + seed_offset)
        ).records(),
        "PERO": lambda: SyntheticWorkload(
            pero_profile(scale=SCALE, seed=53 + seed_offset)
        ).records(),
    }
    return run_comparison(SCHEMES, factories, n_caches=4)


@pytest.mark.parametrize("seed_offset", [100, 2000, 31337])
class TestSeedRobustness:
    def test_scheme_ordering_survives_reseeding(self, seed_offset):
        comparison = _comparison(seed_offset)
        bus = pipelined_bus()
        costs = {s: comparison.average_cycles(s, bus) for s in SCHEMES}
        assert costs["dragon"] < costs["wti"] < costs["dir1nb"]
        assert costs["dir0b"] < costs["wti"]
        # Dir0B stays competitive with Dragon under every seed.
        assert costs["dir0b"] < 2.5 * costs["dragon"]

    def test_pero_stays_the_cheap_trace(self, seed_offset):
        comparison = _comparison(seed_offset)
        bus = pipelined_bus()
        for scheme in ("dir0b", "dragon"):
            per_trace = comparison.per_trace_cycles(scheme, bus)
            assert per_trace["PERO"] < per_trace["POPS"]

    def test_small_fanout_property_survives_reseeding(self, seed_offset):
        comparison = _comparison(seed_offset)
        histogram = comparison.pooled_invalidation_histogram("dir0b")
        assert histogram.share_at_most(1) > 0.75
