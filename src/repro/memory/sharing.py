"""The system-wide sharing table: who holds each block, and who dirtied it.

Every protocol in this library needs the same two facts about a block:
which caches currently hold a copy (a bitmask over cache indices) and which
single cache, if any, holds it modified.  :class:`SharingTable` centralises
that bookkeeping; the protocol classes layer their *policies* (what to
invalidate, what to broadcast, which events to emit) on top.

For directory protocols the table literally is the directory contents (a
full-map Censier & Feautrier directory stores exactly a presence bit per
cache plus a dirty bit).  For snoopy protocols it plays the role of the
aggregate of all the per-cache state that snooping distributes — the paper
notes the two organisations track the same information.

Holder sets are plain ints used as bitmasks, which keeps the per-reference
simulation cost at a couple of dict operations.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

__all__ = ["SharingTable", "NO_OWNER", "iter_bits", "bit_count"]

#: Sentinel for "no cache holds this block dirty".
NO_OWNER = -1


def bit_count(mask: int) -> int:
    """Number of set bits (cache copies) in a holder mask."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of a holder mask, ascending."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


class SharingTable:
    """Tracks, per block, the holder mask and the dirty owner.

    Invariants maintained (and assertable via :meth:`check_invariants`):

    * the dirty owner, when present, is always a holder;
    * at most one cache holds a block dirty (the paper's single-writer rule).
    """

    __slots__ = ("_holders", "_dirty")

    def __init__(self) -> None:
        self._holders: Dict[int, int] = {}
        self._dirty: Dict[int, int] = {}

    # -- queries ------------------------------------------------------------

    def holders(self, block: int) -> int:
        """Bitmask of caches holding ``block`` (0 when uncached)."""
        return self._holders.get(block, 0)

    def is_held(self, block: int, cache: int) -> bool:
        return bool(self._holders.get(block, 0) & (1 << cache))

    def remote_holders(self, block: int, cache: int) -> int:
        """Holder mask excluding ``cache`` itself."""
        return self._holders.get(block, 0) & ~(1 << cache)

    def holder_count(self, block: int) -> int:
        return bit_count(self._holders.get(block, 0))

    def dirty_owner(self, block: int) -> int:
        """Cache index holding ``block`` modified, or :data:`NO_OWNER`."""
        return self._dirty.get(block, NO_OWNER)

    def is_dirty(self, block: int) -> bool:
        return block in self._dirty

    def is_dirty_in(self, block: int, cache: int) -> bool:
        return self._dirty.get(block, NO_OWNER) == cache

    def cached_blocks(self) -> Iterator[Tuple[int, int]]:
        """All ``(block, holder_mask)`` pairs with at least one holder."""
        return ((block, mask) for block, mask in self._holders.items() if mask)

    def blocks_held_by(self, cache: int) -> List[int]:
        """All blocks currently held by ``cache`` (diagnostic; O(blocks))."""
        bit = 1 << cache
        return [block for block, mask in self._holders.items() if mask & bit]

    # -- updates ------------------------------------------------------------

    def add_holder(self, block: int, cache: int) -> None:
        self._holders[block] = self._holders.get(block, 0) | (1 << cache)

    def remove_holder(self, block: int, cache: int) -> None:
        mask = self._holders.get(block, 0) & ~(1 << cache)
        if mask:
            self._holders[block] = mask
        else:
            self._holders.pop(block, None)
        if self._dirty.get(block, NO_OWNER) == cache:
            del self._dirty[block]

    def set_only_holder(self, block: int, cache: int) -> None:
        """Make ``cache`` the sole holder (invalidating everyone else)."""
        self._holders[block] = 1 << cache
        owner = self._dirty.get(block, NO_OWNER)
        if owner != NO_OWNER and owner != cache:
            del self._dirty[block]

    def set_dirty(self, block: int, cache: int) -> None:
        """Mark ``block`` modified by ``cache`` (which must hold it)."""
        if not self.is_held(block, cache):
            raise ValueError(
                f"cache {cache} cannot dirty block {block:#x} it does not hold"
            )
        self._dirty[block] = cache

    def clear_dirty(self, block: int) -> None:
        """Memory has been made consistent with the cached copy."""
        self._dirty.pop(block, None)

    def purge(self, block: int) -> None:
        """Remove all copies of ``block`` from all caches."""
        self._holders.pop(block, None)
        self._dirty.pop(block, None)

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the single-writer invariant is violated."""
        for block, owner in self._dirty.items():
            mask = self._holders.get(block, 0)
            assert mask & (1 << owner), (
                f"dirty owner {owner} of block {block:#x} is not a holder"
            )
