"""Coherence protocols: the event taxonomy, framework, and all schemes."""

from .base import NO_OPS, AccessOutcome, CoherenceProtocol, OpList
from .directory import (
    DigitCode,
    Dir0B,
    Dir1B,
    Dir1NB,
    DirCoarse,
    DiriB,
    DiriNB,
    DirnNB,
    Tang,
    YenFu,
)
from .events import (
    FIRST_REF_EVENTS,
    READ_MISS_EVENTS,
    WRITE_HIT_EVENTS,
    WRITE_MISS_EVENTS,
    Event,
)
from .registry import (
    PAPER_CORE_SCHEMES,
    PROTOCOLS,
    create_protocol,
    protocol_names,
    suggest_protocol,
    unknown_protocol_message,
)
from .snoopy import WTI, Berkeley, CompetitiveUpdate, Dragon, Firefly, Illinois, WriteOnce
from .software_flush import SoftwareFlush

__all__ = [
    "NO_OPS",
    "AccessOutcome",
    "CoherenceProtocol",
    "OpList",
    "DigitCode",
    "Dir0B",
    "Dir1B",
    "Dir1NB",
    "DirCoarse",
    "DiriB",
    "DiriNB",
    "DirnNB",
    "Tang",
    "YenFu",
    "FIRST_REF_EVENTS",
    "READ_MISS_EVENTS",
    "WRITE_HIT_EVENTS",
    "WRITE_MISS_EVENTS",
    "Event",
    "PAPER_CORE_SCHEMES",
    "PROTOCOLS",
    "create_protocol",
    "protocol_names",
    "suggest_protocol",
    "unknown_protocol_message",
    "WTI",
    "Berkeley",
    "CompetitiveUpdate",
    "Dragon",
    "Firefly",
    "Illinois",
    "WriteOnce",
    "SoftwareFlush",
]
