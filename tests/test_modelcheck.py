"""Tests for the exhaustive coherence model checker."""

import pytest

from repro.core.modelcheck import model_check
from repro.protocols import create_protocol, protocol_names
from repro.protocols.base import AccessOutcome
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.events import Event

# Protocols cheap enough to exhaust at depth 5 in the unit-test suite.
FAST_DEPTH = 5


class TestAllProtocolsVerify:
    @pytest.mark.parametrize("name", sorted(protocol_names()))
    def test_two_caches_one_block(self, name):
        report = model_check(
            lambda n: create_protocol(name, n),
            n_caches=2,
            n_blocks=1,
            depth=FAST_DEPTH,
        )
        assert report.ok, report.render()
        assert report.sequences_explored == sum(4**d for d in range(1, FAST_DEPTH + 1))

    def test_three_caches_catch_third_party_bugs(self):
        # Deliberately small depth: branching is 6 per step.
        for name in ("dir0b", "dragon", "dirnnb"):
            report = model_check(
                lambda n, name=name: create_protocol(name, n),
                n_caches=3,
                n_blocks=1,
                depth=4,
            )
            assert report.ok, report.render()

    def test_two_blocks_no_aliasing(self):
        report = model_check(
            lambda n: create_protocol("dir0b", n),
            n_caches=2,
            n_blocks=2,
            depth=4,
        )
        assert report.ok


class _InvalidatesTheWrongSharer(Dir0B):
    """Three-party bug: invalidates only the lowest-indexed remote sharer."""

    name = "broken-wrong-sharer"

    def _write_hit_clean(self, cache, block):
        sharing = self.sharing
        remote = sharing.remote_holders(block, cache)
        if remote:
            lowest = (remote & -remote).bit_length() - 1
            sharing.remove_holder(block, lowest)  # leaves the others stale
        sharing.set_dirty(block, cache)
        return AccessOutcome(
            event=Event.WH_BLK_CLEAN, ops=(), invalidation_fanout=0
        )


class TestCounterexamples:
    def test_two_party_bug_found(self):
        class Broken(Dir0B):
            name = "broken"

            def _write_hit_clean(self, cache, block):
                self.sharing.set_dirty(block, cache)
                return AccessOutcome(
                    event=Event.WH_BLK_CLEAN, ops=(), invalidation_fanout=0
                )

        report = model_check(lambda n: Broken(n), n_caches=2, depth=5)
        assert not report.ok
        assert report.counterexample is not None
        assert "version" in report.error

    def test_three_party_bug_needs_three_caches(self):
        # With two caches the wrong-sharer bug is invisible (the "wrong"
        # sharer is the only sharer); with three it is caught.
        two = model_check(
            lambda n: _InvalidatesTheWrongSharer(n), n_caches=2, depth=5
        )
        assert two.ok
        three = model_check(
            lambda n: _InvalidatesTheWrongSharer(n), n_caches=3, depth=4
        )
        assert not three.ok

    def test_counterexample_replays_to_a_violation(self):
        from repro.core.oracle import CoherenceOracle, CoherenceViolation

        report = model_check(
            lambda n: _InvalidatesTheWrongSharer(n), n_caches=3, depth=4
        )
        oracle = CoherenceOracle(_InvalidatesTheWrongSharer(3))
        with pytest.raises(CoherenceViolation):
            for cache, access, block in report.counterexample:
                oracle.access(cache, access, block)
            oracle.check_all_copies()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            model_check(lambda n: create_protocol("dir0b", n), n_caches=0)
        with pytest.raises(ValueError):
            model_check(lambda n: create_protocol("dir0b", n), depth=0)

    def test_render(self):
        report = model_check(
            lambda n: create_protocol("dir0b", n), n_caches=2, depth=2
        )
        assert "OK" in report.render()
