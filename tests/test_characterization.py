"""Tests for the versioned hardware characterization layer.

Covers the loader (bundled names, TOML and CSV paths, both parsers), the
schema (validation errors, content hashing), the energy axis, the RunSpec
characterization axis and its cache-key discipline, re-pricing in the sweep
engine, the network-model round trip, and the ``models`` CLI verb.
"""

import pytest

from repro.characterization import (
    BUILTIN_CHARACTERIZATIONS,
    Characterization,
    CharacterizationError,
    builtin_bus_model,
    builtin_characterization,
    builtin_names,
    load_characterization,
)
from repro.characterization.loader import _parse_toml_subset
from repro.cli import main
from repro.interconnect.bus import (
    BusCostModel,
    BusOp,
    UnknownBusOpError,
    nonpipelined_bus,
    nonpipelined_cycles,
    pipelined_bus,
    pipelined_cycles,
)
from repro.interconnect.costs import summarize_costs
from repro.interconnect.network import (
    NetworkModel,
    Topology,
    network_characterization,
    network_cost_model,
)
from repro.runner import ResultCache, RunSpec, run_sweep, sweep_grid

#: Tiny traces so the whole module stays fast.
SCALE = 1.0 / 1024.0


class TestLoader:
    def test_builtin_names_are_bundled_files(self):
        assert builtin_names() == ("pipelined", "non-pipelined")
        for path in BUILTIN_CHARACTERIZATIONS.values():
            assert path.exists()

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("pipelined", "pipelined"),
            ("non-pipelined", "non-pipelined"),
            ("nonpipelined", "non-pipelined"),
            ("non_pipelined", "non-pipelined"),
            ("  Pipelined ", "pipelined"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert load_characterization(alias).name == canonical

    def test_unknown_name_error_lists_bundled_names(self):
        with pytest.raises(CharacterizationError) as excinfo:
            load_characterization("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        assert "pipelined" in message and "non-pipelined" in message

    def test_load_by_explicit_path(self):
        by_name = builtin_characterization("pipelined")
        by_path = load_characterization(BUILTIN_CHARACTERIZATIONS["pipelined"])
        assert by_path.content_hash() == by_name.content_hash()

    def test_subset_parser_agrees_with_bundled_files(self):
        """The 3.10 fallback parser reads the bundled files identically."""
        for name, path in BUILTIN_CHARACTERIZATIONS.items():
            payload = _parse_toml_subset(path.read_text(encoding="utf-8"), name)
            parsed = Characterization.from_payload(payload, source=name)
            assert parsed.content_hash() == load_characterization(name).content_hash()

    def test_csv_round_trip(self, tmp_path):
        """The ESL-style sectioned CSV spelling loads to the same content."""
        import csv

        reference = builtin_characterization("pipelined")
        path = tmp_path / "pipelined.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for section, entries in reference.payload().items():
                writer.writerow([f"# {section}"])
                for key, value in entries.items():
                    writer.writerow([key, value])
        loaded = load_characterization(path)
        assert loaded.content_hash() == reference.content_hash()

    def test_edited_file_is_reloaded(self, tmp_path):
        """The mtime/size memo must not serve stale content after an edit."""
        import os

        path = tmp_path / "model.toml"
        builtin_characterization("pipelined").save(path)
        first = load_characterization(path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('version = "1"', 'version = "2"'))
        # Force a different stamp even on coarse-mtime filesystems.
        os.utime(path, ns=(1, 1))
        second = load_characterization(path)
        assert first.version == "1" and second.version == "2"
        assert first.content_hash() != second.content_hash()

    @pytest.mark.parametrize(
        "mutation, match",
        [
            (lambda p: p.pop("cycles"), "cycles"),
            (lambda p: p.pop("model"), "model"),
            (lambda p: p["model"].pop("version"), "version"),
            (lambda p: p["model"].__setitem__("schema", 99), "schema"),
            (lambda p: p["cycles"].__setitem__("warp", 1), "unknown bus op"),
            (lambda p: p["cycles"].__setitem__("mem_access", -1), "non-negative"),
            (lambda p: p["table1"].__setitem__("warp_core", 1), "unknown timings"),
            (lambda p: p.__setitem__("extra", {}), "unknown sections"),
        ],
    )
    def test_schema_validation_errors(self, mutation, match):
        payload = {
            section: dict(entries)
            for section, entries in builtin_characterization("pipelined")
            .payload()
            .items()
        }
        mutation(payload)
        with pytest.raises(CharacterizationError, match=match):
            Characterization.from_payload(payload)

    def test_parse_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[model]\nname\n", encoding="utf-8")
        with pytest.raises(CharacterizationError, match="broken.toml"):
            load_characterization(path)


class TestBitIdentity:
    """The bundled data files reproduce the parametric Table 2 derivations."""

    @pytest.mark.parametrize(
        "name, derive, factory",
        [
            ("pipelined", pipelined_cycles, pipelined_bus),
            ("non-pipelined", nonpipelined_cycles, nonpipelined_bus),
        ],
    )
    def test_bundled_file_matches_derivation(self, name, derive, factory):
        loaded = builtin_bus_model(name)
        derived = derive()
        for op in BusOp:
            assert loaded.cost_of(op) == derived[op], op
        # And the default factories serve exactly the bundled data.
        assert factory().table2_rows() == loaded.table2_rows()

    def test_table2_golden_values(self):
        pipe = builtin_characterization("pipelined").table2_rows()
        nonpipe = builtin_characterization("non-pipelined").table2_rows()
        assert pipe == {
            "Memory access": 5,
            "Cache access": 5,
            "Write-back": 4,
            "Write-through / update": 1,
            "Directory check": 1,
            "Invalidate": 1,
        }
        assert nonpipe == {
            "Memory access": 7,
            "Cache access": 6,
            "Write-back": 4,
            "Write-through / update": 2,
            "Directory check": 3,
            "Invalidate": 1,
        }


class TestContentHash:
    def test_save_round_trips_hash(self, tmp_path):
        original = builtin_characterization("pipelined")
        path = original.save(tmp_path / "copy.toml")
        reloaded = load_characterization(path)
        assert reloaded.content_hash() == original.content_hash()
        assert reloaded.payload() == original.payload()

    def test_hash_ignores_source_and_formatting(self, tmp_path):
        original = builtin_characterization("pipelined")
        text = BUILTIN_CHARACTERIZATIONS["pipelined"].read_text(encoding="utf-8")
        path = tmp_path / "renamed-and-reformatted.toml"
        path.write_text("# a new comment\n" + text, encoding="utf-8")
        assert load_characterization(path).content_hash() == original.content_hash()

    def test_hash_changes_when_a_value_changes(self, tmp_path):
        original = builtin_characterization("pipelined")
        path = tmp_path / "tweaked.toml"
        text = BUILTIN_CHARACTERIZATIONS["pipelined"].read_text(encoding="utf-8")
        path.write_text(text.replace("mem_access = 5", "mem_access = 6"))
        assert load_characterization(path).content_hash() != original.content_hash()

    def test_integer_and_float_spellings_hash_alike(self, tmp_path):
        original = builtin_characterization("pipelined")
        path = tmp_path / "floats.toml"
        text = BUILTIN_CHARACTERIZATIONS["pipelined"].read_text(encoding="utf-8")
        path.write_text(text.replace("mem_access = 5", "mem_access = 5.0"))
        assert load_characterization(path).content_hash() == original.content_hash()


class TestEnergyAxis:
    def test_bundled_models_carry_energy(self):
        for name in builtin_names():
            model = builtin_bus_model(name)
            assert model.has_energy
            for op in BusOp:
                assert model.energy_of(op) >= 0

    def test_summarize_costs_surfaces_energy(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        result = spec.run()
        summary = summarize_costs(
            "dir0b", result.counters.ops, pipelined_bus()
        )
        assert summary.energy_per_reference is not None
        assert summary.energy_per_reference > 0
        # Hand-computed: sum(count * nJ) / references.
        bus = pipelined_bus()
        expected = (
            sum(
                count * bus.energy_of(op)
                for op, count in result.counters.ops.ops.items()
            )
            / result.references
        )
        assert summary.energy_per_reference == pytest.approx(expected)
        assert result.energy_per_reference(bus) == summary.energy_per_reference

    def test_parametric_bus_prices_no_energy(self):
        bare = BusCostModel(name="bare", cycles=pipelined_cycles())
        assert not bare.has_energy
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        result = spec.run()
        assert result.energy_per_reference(bare) is None

    def test_unknown_op_error_names_op_model_and_known_ops(self):
        partial = BusCostModel(
            name="partial", cycles={BusOp.MEM_ACCESS: 5.0}
        )
        with pytest.raises(UnknownBusOpError) as excinfo:
            partial.cost_of(BusOp.WRITE_BACK)
        message = str(excinfo.value)
        assert "write_back" in message
        assert "partial" in message
        assert "mem_access" in message
        assert isinstance(excinfo.value, ValueError)


class TestEnergyAnalysis:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.core.comparison import run_standard_comparison

        return run_standard_comparison(["dir0b", "dir1nb"], scale=SCALE)

    def test_energy_table(self, comparison):
        from repro.analysis import energy_table

        table = energy_table(comparison)
        rendered = table.render()
        assert "nJ/ref" in rendered
        for scheme in ("dir0b", "dir1nb"):
            assert table.value(scheme) > 0

    def test_energy_table_rejects_energyless_bus(self, comparison):
        from repro.analysis import energy_table

        bare = BusCostModel(name="bare", cycles=pipelined_cycles())
        with pytest.raises(ValueError, match="no energy axis"):
            energy_table(comparison, bus=bare)

    def test_figure_energy(self, comparison):
        from repro.analysis import figure_energy

        series = figure_energy(comparison)
        assert len(series) == 2
        assert all(value > 0 for value in series.values())


class TestNetworkRoundTrip:
    def test_characterize_save_load_prices_identically(self, tmp_path):
        network = NetworkModel(Topology.OMEGA, n_nodes=16)
        derived = network_cost_model(network)
        characterization = network_characterization(network)
        path = characterization.save(tmp_path / "omega16.toml")
        loaded = load_characterization(path)
        assert loaded.name == "omega(16)"
        assert "omega" in loaded.description
        reloaded_bus = loaded.bus_model()
        for op in BusOp:
            assert reloaded_bus.cost_of(op) == derived.cost_of(op), op

    def test_round_trip_through_summarize_costs(self, tmp_path):
        network = NetworkModel(Topology.MESH2D, n_nodes=16)
        path = network_characterization(network).save(tmp_path / "mesh.toml")
        spec = RunSpec(protocol="dirnnb", trace="POPS", scale=SCALE)
        result = spec.run()
        direct = summarize_costs(
            "dirnnb", result.counters.ops, network_cost_model(network)
        )
        via_file = summarize_costs(
            "dirnnb", result.counters.ops, load_characterization(path).bus_model()
        )
        assert via_file.cycles_per_reference == direct.cycles_per_reference
        assert via_file.by_category == direct.by_category
        # Derived characterizations carry no energy axis unless given one.
        assert via_file.energy_per_reference is None

    def test_swept_as_a_data_file(self, tmp_path):
        """A saved network characterization is an ordinary sweep axis value."""
        path = network_characterization(
            NetworkModel(Topology.CROSSBAR, n_nodes=4)
        ).save(tmp_path / "xbar.toml")
        spec = RunSpec(
            protocol="dir1nb", trace="POPS", scale=SCALE,
            characterization=str(path),
        )
        result = spec.run()
        assert result.cycles_per_reference(spec.bus_model()) > 0


class TestRunSpecAxis:
    def test_default_is_pipelined(self):
        spec = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        assert spec.characterization is None
        assert spec.characterization_hash() is None
        assert spec.bus_model().table2_rows() == pipelined_bus().table2_rows()

    def test_unknown_characterization_rejected_at_construction(self):
        with pytest.raises(ValueError, match="warp-drive"):
            RunSpec(
                protocol="dir0b", trace="POPS", scale=SCALE,
                characterization="warp-drive",
            )

    def test_hash_is_pinned_and_in_as_dict(self):
        spec = RunSpec(
            protocol="dir0b", trace="POPS", scale=SCALE,
            characterization="non-pipelined",
        )
        expected = builtin_characterization("non-pipelined").content_hash()
        assert spec.characterization_hash() == expected
        payload = spec.as_dict()
        assert payload["characterization"] == "non-pipelined"
        assert payload["characterization_hash"] == expected

    def test_cache_key_tracks_content_not_path(self, tmp_path):
        """Identical content under two paths shares a key; edits change it."""
        base = builtin_characterization("pipelined")
        copy_a = base.save(tmp_path / "a.toml")
        copy_b = base.save(tmp_path / "b.toml")

        def key(source):
            return RunSpec(
                protocol="dir0b", trace="POPS", scale=SCALE,
                characterization=str(source),
            ).cache_key()

        assert key(copy_a) == key(copy_b) == key("pipelined")
        text = copy_a.read_text(encoding="utf-8")
        copy_a.write_text(text.replace("mem_access = 5", "mem_access = 9"))
        import os

        os.utime(copy_a, ns=(1, 1))
        assert key(copy_a) != key(copy_b)

    def test_base_key_and_cell_id_ignore_characterization(self):
        plain = RunSpec(protocol="dir0b", trace="POPS", scale=SCALE)
        priced = RunSpec(
            protocol="dir0b", trace="POPS", scale=SCALE,
            characterization="non-pipelined",
        )
        assert plain.cache_key() != priced.cache_key()
        assert plain.base_cache_key() == priced.base_cache_key()
        assert plain.base_cache_key() == plain.cache_key()
        assert plain.cell_id() == priced.cell_id()
        assert priced.base_spec() == plain

    def test_pickles_with_pinned_hash(self):
        import pickle

        spec = RunSpec(
            protocol="dir0b", trace="POPS", scale=SCALE,
            characterization="non-pipelined",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.characterization_hash() == spec.characterization_hash()
        assert clone.cache_key() == spec.cache_key()

    def test_sweep_grid_fans_out(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE,
            characterizations=(None, "pipelined", "non-pipelined"),
        )
        assert [spec.characterization for spec in specs] == [
            None, "pipelined", "non-pipelined",
        ]
        with pytest.raises(ValueError):
            sweep_grid(("dir0b",), characterizations=())


class TestRepricing:
    def test_k_characterizations_cost_one_simulation_per_cell(self):
        """Acceptance: the Section 4.1 method — simulate once, price k times."""
        specs = sweep_grid(
            ("dir0b", "dir1nb"), traces=("POPS",), scale=SCALE,
            characterizations=(None, "pipelined", "non-pipelined"),
        )
        report = run_sweep(specs)
        assert report.cells == 6
        assert report.simulations == 2  # one per (protocol, trace)
        assert report.repricings == 4
        assert report.metrics_dict()["repriced"] == 4
        assert not report.failures

    def test_repriced_counters_are_bit_identical(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE,
            characterizations=(None, "non-pipelined"),
        )
        report = run_sweep(specs)
        leader, follower = report.outcomes
        assert not leader.repriced and follower.repriced
        assert leader.result.counters.events == follower.result.counters.events
        assert leader.result.counters.ops.ops == follower.result.counters.ops.ops
        # The follower's own pricing differs from the leader's default.
        assert follower.result.cycles_per_reference(
            follower.spec.bus_model()
        ) != pytest.approx(
            leader.result.cycles_per_reference(leader.spec.bus_model())
        )

    def test_repricing_matches_direct_simulation(self):
        """Re-priced cells equal what a dedicated simulation would produce."""
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE,
            characterizations=("pipelined", "non-pipelined"),
        )
        report = run_sweep(specs)
        direct = run_sweep(
            sweep_grid(
                ("dir0b",), traces=("POPS",), scale=SCALE,
                characterizations=("non-pipelined",),
            )
        )
        repriced = report.outcomes[1]
        assert repriced.repriced
        assert (
            repriced.result.counters.ops.ops
            == direct.outcomes[0].result.counters.ops.ops
        )

    def test_cross_sweep_repricing_via_base_key(self, tmp_path):
        """A warm characterization-free cache serves a brand-new pricing."""
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(
            sweep_grid(("dir0b",), traces=("POPS",), scale=SCALE),
            cache=cache,
        )
        assert cold.simulations == 1
        novel = builtin_characterization("pipelined")
        path = Characterization(
            name="custom",
            version="1",
            timing=novel.timing,
            cycles=dict(novel.cycles),
        ).save(tmp_path / "custom.toml")
        warm = run_sweep(
            sweep_grid(
                ("dir0b",), traces=("POPS",), scale=SCALE,
                characterizations=(str(path),),
            ),
            cache=cache,
        )
        assert warm.simulations == 0
        assert warm.outcomes[0].ok
        # Written back under the full key: next run is a direct hit.
        again = run_sweep(
            sweep_grid(
                ("dir0b",), traces=("POPS",), scale=SCALE,
                characterizations=(str(path),),
            ),
            cache=cache,
        )
        assert again.simulations == 0 and again.cache_hits == 1

    def test_manifest_records_characterization_provenance(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE,
            characterizations=("non-pipelined",),
        )
        report = run_sweep(specs)
        manifest = report.outcomes[0].manifest
        assert manifest is not None
        assert manifest.spec["characterization"] == "non-pipelined"
        assert manifest.spec["characterization_hash"] == (
            builtin_characterization("non-pipelined").content_hash()
        )

    def test_pricing_table_renders_every_cell(self):
        specs = sweep_grid(
            ("dir0b",), traces=("POPS",), scale=SCALE,
            characterizations=(None, "non-pipelined"),
        )
        report = run_sweep(specs)
        table = report.pricing_table()
        assert "(default)" in table
        assert "non-pipelined" in table
        assert "nJ/ref" in table


class TestCli:
    FAST = ["--scale", "512"]

    def test_models_lists_bundled(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "pipelined" in out and "non-pipelined" in out
        assert "content hash" in out
        assert "mem_access" in out

    def test_models_unknown_name_is_usage_error(self, capsys):
        assert main(["models", "warp-drive"]) == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_sweep_with_characterization_prints_pricing(self, capsys):
        code = main(
            self.FAST
            + [
                "sweep", "--schemes", "dir0b", "--traces", "POPS",
                "--characterization", "pipelined", "non-pipelined",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "nJ/ref" in captured.out
        assert "repriced" in captured.err

    def test_sweep_with_bad_characterization_is_usage_error(self, capsys):
        code = main(
            self.FAST
            + [
                "sweep", "--schemes", "dir0b", "--traces", "POPS",
                "--characterization", "warp-drive",
            ]
        )
        assert code == 2
        assert "warp-drive" in capsys.readouterr().err
