"""Property-based tests for the sharing table and caches (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.memory.cache import CacheGeometry, FiniteCache
from repro.memory.sharing import SharingTable, bit_count, iter_bits

masks = st.integers(min_value=0, max_value=2**16 - 1)


class TestBitHelpers:
    @given(masks)
    def test_bit_count_matches_iter_bits(self, mask):
        assert bit_count(mask) == len(list(iter_bits(mask)))

    @given(masks)
    def test_iter_bits_reconstructs_mask(self, mask):
        assert sum(1 << b for b in iter_bits(mask)) == mask

    @given(masks, masks)
    def test_bit_count_subadditive_under_or(self, a, b):
        assert bit_count(a | b) <= bit_count(a) + bit_count(b)


class SharingTableMachine(RuleBasedStateMachine):
    """Random sequences of table updates must preserve the invariants and
    agree with a naive model (dict of sets)."""

    def __init__(self):
        super().__init__()
        self.table = SharingTable()
        self.model_holders = {}  # block -> set of caches
        self.model_dirty = {}  # block -> cache

    blocks = st.integers(min_value=0, max_value=7)
    caches = st.integers(min_value=0, max_value=3)

    @rule(block=blocks, cache=caches)
    def add_holder(self, block, cache):
        self.table.add_holder(block, cache)
        self.model_holders.setdefault(block, set()).add(cache)

    @rule(block=blocks, cache=caches)
    def remove_holder(self, block, cache):
        self.table.remove_holder(block, cache)
        self.model_holders.get(block, set()).discard(cache)
        if self.model_dirty.get(block) == cache:
            del self.model_dirty[block]

    @rule(block=blocks, cache=caches)
    def set_dirty_if_held(self, block, cache):
        if cache in self.model_holders.get(block, set()):
            self.table.set_dirty(block, cache)
            self.model_dirty[block] = cache

    @rule(block=blocks)
    def clear_dirty(self, block):
        self.table.clear_dirty(block)
        self.model_dirty.pop(block, None)

    @rule(block=blocks, cache=caches)
    def set_only_holder(self, block, cache):
        self.table.set_only_holder(block, cache)
        self.model_holders[block] = {cache}
        if self.model_dirty.get(block, cache) != cache:
            del self.model_dirty[block]

    @rule(block=blocks)
    def purge(self, block):
        self.table.purge(block)
        self.model_holders.pop(block, None)
        self.model_dirty.pop(block, None)

    @invariant()
    def agrees_with_model(self):
        for block in range(8):
            expected = self.model_holders.get(block, set())
            assert self.table.holder_count(block) == len(expected)
            for cache in range(4):
                assert self.table.is_held(block, cache) == (cache in expected)
            assert self.table.dirty_owner(block) == self.model_dirty.get(
                block, -1
            )

    @invariant()
    def table_invariants_hold(self):
        self.table.check_invariants()


TestSharingTableStateMachine = SharingTableMachine.TestCase


class TestFiniteCacheProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, blocks, n_sets, assoc):
        cache = FiniteCache(CacheGeometry(n_sets=n_sets, associativity=assoc))
        for block in blocks:
            if not cache.touch(block):
                cache.insert(block)
            assert len(cache) <= n_sets * assoc

    @given(
        st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100)
    )
    @settings(max_examples=60)
    def test_most_recent_insert_is_resident(self, blocks):
        cache = FiniteCache(CacheGeometry(n_sets=2, associativity=2))
        for block in blocks:
            cache.insert(block)
            assert cache.contains(block)

    @given(
        st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100)
    )
    @settings(max_examples=60)
    def test_victims_come_from_the_same_set(self, blocks):
        geometry = CacheGeometry(n_sets=4, associativity=1)
        cache = FiniteCache(geometry)
        for block in blocks:
            victim = cache.insert(block)
            if victim is not None:
                assert geometry.set_of(victim) == geometry.set_of(block)
