"""Process-per-cell execution: isolation, kill-based timeouts, crash detection.

The original sweep loop fanned cells over ``multiprocessing.Pool.imap``,
which has two fatal failure modes for long sweeps: a raised exception in
any cell aborts the whole iteration, and a SIGKILL'd worker (OOM killer,
operator, fault injection) leaves the pool waiting forever for a result
that will never arrive.  :class:`CellExecutor` replaces it with one child
process per cell attempt, dispatched future-style:

* each cell runs in its own process with a dedicated result pipe, so a
  crash loses exactly that attempt — the "pool" is replaced for free
  because nothing is shared;
* the parent owns a wall-clock deadline per in-flight cell and SIGKILLs
  overruns (a cooperative timeout cannot interrupt a stuck simulation);
* a worker that dies without reporting is detected by process exit, not
  by a hang, and surfaces as a ``worker-crash`` event;
* retries re-enter through :meth:`CellExecutor.submit` with a delay, so
  backoff scheduling lives in the same queue as fresh dispatches.

Telemetry crosses the process boundary on the same result pipe (see
``docs/observability.md``): every worker attempt swaps a **fresh**
process-wide metrics registry in (:func:`repro.obs.metrics.set_registry`)
so whatever the attempt tallies — cache traffic, corrupt-entry
deletions, ad-hoc counters — comes back as a snapshot delta on the
event, and when the sweep ships a :data:`~repro.obs.telemetry.SpanContext`
the worker records ``attempt``/``stage`` spans under the parent's cell
span and returns them serialised alongside the delta.  Both ride on
success *and* failure events, so a retried attempt's telemetry survives
the retry.

Events are raw tuples; the sweep loop turns them into
:class:`~repro.resilience.errors.RunError`s (which know the attempt
budget) and :class:`~repro.runner.sweep.RunOutcome`s.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as wait_connections
from typing import Dict, List, Optional, Tuple

from ..obs.manifest import collect_manifest
from ..obs.metrics import MetricsRegistry, set_registry
from ..obs.telemetry import SpanRecorder

__all__ = ["CellEvent", "CellExecutor"]

#: Upper bound on one poll's blocking wait; keeps timeouts responsive.
POLL_SECONDS = 0.05


def _cell_worker(
    conn: Connection, spec, attempt: int, faults, span_context=None
) -> None:
    """Child entry point: fire injected faults, simulate, report on the pipe.

    The attempt runs against a fresh process-wide registry, whose snapshot
    travels back as the event's metrics delta; with a ``span_context``
    the attempt also records its span subtree (attempt → stages) for the
    parent to ingest.
    """
    pid = os.getpid()
    registry = MetricsRegistry()
    set_registry(registry)
    recorder = None
    attempt_span = None
    if span_context is not None:
        trace_id, parent_span_id = span_context
        recorder = SpanRecorder(trace_id=trace_id)
        attempt_span = recorder.begin(
            f"attempt {attempt}", kind="attempt", parent=parent_span_id,
            attempt=attempt, cell=spec.cell_id(),
        )
    start = time.perf_counter()

    def _telemetry() -> Tuple[Optional[dict], List[dict]]:
        delta = registry.as_dict()
        if not any(delta.values()):
            delta = None
        return delta, recorder.serialized() if recorder is not None else []

    try:
        if faults is not None:
            faults.fire_worker_faults(spec.cell_id(), attempt)
        if recorder is not None:
            with recorder.span("simulate", kind="stage", parent=attempt_span):
                result = spec.run()
        else:
            result = spec.run()
        elapsed = time.perf_counter() - start
        if recorder is not None:
            with recorder.span("report", kind="stage", parent=attempt_span):
                manifest = collect_manifest(
                    spec.as_dict(), spec.cache_key(), elapsed, worker_pid=pid
                )
            attempt_span.end(status="ok")
        else:
            manifest = collect_manifest(
                spec.as_dict(), spec.cache_key(), elapsed, worker_pid=pid
            )
        delta, spans = _telemetry()
        conn.send(("ok", result, elapsed, pid, manifest, delta, spans))
    except BaseException as exc:  # noqa: BLE001 - everything becomes an event
        elapsed = time.perf_counter() - start
        if attempt_span is not None:
            attempt_span.end(status="error", error=type(exc).__name__)
        delta, spans = _telemetry()
        conn.send(
            ("error", type(exc).__name__, str(exc),
             traceback.format_exc(), pid, elapsed, delta, spans)
        )
    finally:
        conn.close()


@dataclass(frozen=True)
class CellEvent:
    """One finished cell attempt, success or failure."""

    index: int
    spec: object
    attempt: int
    #: (result, elapsed, worker_pid, manifest) on success, else None
    payload: Optional[Tuple] = None
    #: one of ERROR_KINDS on failure, else None
    kind: Optional[str] = None
    exc_type: str = ""
    message: str = ""
    traceback: Optional[str] = None
    worker: int = 0
    elapsed: float = 0.0
    #: the worker attempt's process-wide registry snapshot (None when empty)
    metrics: Optional[dict] = None
    #: the worker attempt's serialised spans (empty without a span context)
    spans: Tuple = field(default=())

    @property
    def ok(self) -> bool:
        return self.payload is not None


@dataclass
class _Task:
    process: multiprocessing.Process
    conn: Connection
    spec: object
    attempt: int
    started: float


class CellExecutor:
    """Dispatch cell attempts to child processes; poll for typed events."""

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        faults=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._jobs = jobs
        self._timeout = timeout
        self._faults = faults
        self._ctx = multiprocessing.get_context()
        self._running: Dict[int, _Task] = {}
        self._queue: List[Tuple[float, int, int, object, int]] = []
        self._seq = 0

    # -- dispatch -------------------------------------------------------------

    def submit(
        self,
        index: int,
        spec,
        attempt: int = 1,
        delay: float = 0.0,
        span_context=None,
    ) -> None:
        """Queue one cell attempt, optionally delayed (retry backoff).

        ``span_context`` — a ``(trace_id, parent_span_id)`` pair — makes
        the worker record its attempt/stage spans under the parent's cell
        span (see :mod:`repro.obs.telemetry`).
        """
        heapq.heappush(
            self._queue,
            (
                time.monotonic() + delay,
                self._seq, index, spec, attempt, span_context,
            ),
        )
        self._seq += 1

    @property
    def active(self) -> bool:
        """True while any attempt is running or queued."""
        return bool(self._running or self._queue)

    @property
    def in_flight(self) -> int:
        return len(self._running)

    def _start_ready(self) -> None:
        now = time.monotonic()
        while (
            self._queue
            and len(self._running) < self._jobs
            and self._queue[0][0] <= now
        ):
            _, _, index, spec, attempt, span_context = heapq.heappop(self._queue)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_cell_worker,
                args=(child_conn, spec, attempt, self._faults, span_context),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._running[index] = _Task(
                process=process,
                conn=parent_conn,
                spec=spec,
                attempt=attempt,
                started=time.monotonic(),
            )

    # -- polling --------------------------------------------------------------

    def poll(self) -> List[CellEvent]:
        """Start what's ready, wait briefly, and return finished attempts."""
        self._start_ready()
        events: List[CellEvent] = []
        if self._running:
            wait_connections(
                [task.conn for task in self._running.values()],
                timeout=POLL_SECONDS,
            )
            for index, task in list(self._running.items()):
                event = self._check(index, task)
                if event is not None:
                    events.append(event)
                    del self._running[index]
        elif self._queue:
            # Nothing in flight: sleep until the earliest backoff expires.
            pause = self._queue[0][0] - time.monotonic()
            if pause > 0:
                time.sleep(min(POLL_SECONDS, pause))
        self._start_ready()
        return events

    def _check(self, index: int, task: _Task) -> Optional[CellEvent]:
        if task.conn.poll():
            try:
                message = task.conn.recv()
            except (EOFError, OSError):
                return self._crash_event(index, task)
            return self._message_event(index, task, message)
        if not task.process.is_alive():
            return self._crash_event(index, task)
        if (
            self._timeout is not None
            and time.monotonic() - task.started > self._timeout
        ):
            return self._timeout_event(index, task)
        return None

    def _reap(self, task: _Task, kill: bool = False) -> None:
        if kill:
            task.process.kill()
        task.process.join()
        task.conn.close()

    def _message_event(self, index: int, task: _Task, message) -> CellEvent:
        self._reap(task)
        if message[0] == "ok":
            _, result, elapsed, pid, manifest, metrics, spans = message
            return CellEvent(
                index=index,
                spec=task.spec,
                attempt=task.attempt,
                payload=(result, elapsed, pid, manifest),
                worker=pid,
                metrics=metrics,
                spans=tuple(spans),
            )
        _, exc_type, text, tb, pid, elapsed, metrics, spans = message
        return CellEvent(
            index=index,
            spec=task.spec,
            attempt=task.attempt,
            kind="exception",
            exc_type=exc_type,
            message=text,
            traceback=tb,
            worker=pid,
            elapsed=elapsed,
            metrics=metrics,
            spans=tuple(spans),
        )

    def _crash_event(self, index: int, task: _Task) -> CellEvent:
        elapsed = time.monotonic() - task.started
        self._reap(task)
        exitcode = task.process.exitcode
        if exitcode is not None and exitcode < 0:
            exc_type = f"Signal({-exitcode})"
        else:
            exc_type = f"Exit({exitcode})"
        return CellEvent(
            index=index,
            spec=task.spec,
            attempt=task.attempt,
            kind="worker-crash",
            exc_type=exc_type,
            message=(
                "worker process died before returning a result "
                f"(exit code {exitcode})"
            ),
            worker=task.process.pid or 0,
            elapsed=elapsed,
        )

    def _timeout_event(self, index: int, task: _Task) -> CellEvent:
        elapsed = time.monotonic() - task.started
        self._reap(task, kill=True)
        return CellEvent(
            index=index,
            spec=task.spec,
            attempt=task.attempt,
            kind="timeout",
            exc_type="CellTimeout",
            message=f"cell exceeded {self._timeout:g}s wall-clock limit",
            worker=task.process.pid or 0,
            elapsed=elapsed,
        )

    # -- teardown -------------------------------------------------------------

    def abort(self) -> int:
        """Kill everything in flight, drop the queue; returns cells dropped."""
        dropped = len(self._running) + len(self._queue)
        for task in self._running.values():
            self._reap(task, kill=True)
        self._running.clear()
        self._queue.clear()
        return dropped
