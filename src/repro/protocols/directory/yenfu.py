"""Yen & Fu's single-bit refinement of the full-map directory.

The central directory is unchanged from Censier & Feautrier, but every cache
additionally keeps a **single bit** per block that is set if and only if that
cache holds the only copy in the system (Section 2).  A write hit to a clean
block whose single bit is set can then proceed without completing a
directory access — saving the standalone directory check that Dir0B/DirnNB
pay on every such write.

The catch the paper points out: "extra bus bandwidth is consumed to keep the
single bits updated in all the caches.  Thus, the scheme saves central
directory accesses, but does not reduce the number of bus accesses."  This
implementation charges one :data:`BusOp.SINGLE_BIT_UPDATE` cycle whenever a
previously-sole holder must be told it is no longer alone (except when that
holder is already the target of the flush request, which carries the news
for free).
"""

from __future__ import annotations

from typing import Dict

from ...interconnect.bus import BusOp
from ..base import NO_OPS, AccessOutcome, OpList
from ..events import Event
from .dirnnb import DirnNB

__all__ = ["YenFu"]


class YenFu(DirnNB):
    """Full-map directory plus per-cache single ("only copy") bits."""

    name = "yenfu"
    label = "YenFu"
    kind = "directory"

    def __init__(self, n_caches: int) -> None:
        super().__init__(n_caches)
        #: block -> cache whose single bit is set (at most one, by definition)
        self._single: Dict[int, int] = {}
        #: standalone directory checks avoided thanks to the single bit
        self.saved_directory_checks = 0

    def _admit_holder(self, cache: int, block: int, flushed: bool = False) -> OpList:
        sharing = self.sharing
        ops: OpList = NO_OPS
        sole = self._single.pop(block, None)
        if sole is not None and sole != cache:
            # The old sole holder's single bit must be cleared.  If the block
            # was dirty there, the flush request we just sent doubles as the
            # notification; otherwise it costs a bus cycle.
            if not flushed:
                ops = ((BusOp.SINGLE_BIT_UPDATE, 1),)
        sharing.add_holder(block, cache)
        if sharing.holder_count(block) == 1:
            self._single[block] = cache
        return ops

    def _note_exclusive(self, cache: int, block: int) -> None:
        # All other copies were just invalidated; the directory's reply to
        # the invalidation request tells the writer it is sole, for free.
        self._single[block] = cache

    def _write_hit_clean(self, cache: int, block: int) -> AccessOutcome:
        if self._single.get(block) == cache:
            self.saved_directory_checks += 1
            self.sharing.set_dirty(block, cache)
            return AccessOutcome(
                event=Event.WH_BLK_CLEAN, ops=NO_OPS, invalidation_fanout=0
            )
        return super()._write_hit_clean(cache, block)

    def evict(self, cache: int, block: int) -> OpList:
        if self._single.get(block) == cache:
            del self._single[block]
        return super().evict(cache, block)

    @classmethod
    def directory_bits_per_block(cls, n_caches: int) -> int:
        """Central directory identical to the full map (the single bits live
        in the caches)."""
        return n_caches + 1
