"""Parallel sweep runner: grid fan-out, result caching, merge-exact accounting.

The runner is the scaling layer above the simulator core.  It turns the
paper's evaluation — a cross product of protocols, traces and hardware
configurations — into a grid of self-contained
:class:`~repro.runner.spec.RunSpec` cells that can be

* executed across a ``multiprocessing`` worker pool
  (:func:`~repro.runner.sweep.run_sweep`),
* served from an on-disk :class:`~repro.runner.cache.ResultCache` keyed by
  a stable content hash of the spec, and
* folded back into the same :class:`~repro.core.comparison.ComparisonResult`
  the analysis layer's tables and figures consume.

See ``docs/runner.md`` for the architecture, the sharding invariants, and
how to add a sweep axis.
"""

from .cache import ResultCache
from .spec import (
    CACHE_SCHEMA_VERSION,
    INFINITE_GEOMETRY,
    RunSpec,
    normalize_geometry,
    sweep_grid,
)
from .sweep import RunOutcome, SweepReport, run_sweep

__all__ = [
    "ResultCache",
    "CACHE_SCHEMA_VERSION",
    "INFINITE_GEOMETRY",
    "RunSpec",
    "normalize_geometry",
    "sweep_grid",
    "RunOutcome",
    "SweepReport",
    "run_sweep",
]
