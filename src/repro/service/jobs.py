"""Job lifecycle behind the sweep service: queue, dedupe, run, reap.

The manager is deliberately asyncio-free — plain threads, a bounded
:class:`queue.Queue` and one ``multiprocessing`` child per running sweep —
so every policy here (rate limits, backpressure, cancellation, drain)
unit-tests without an event loop.  The HTTP layer in
:mod:`repro.service.http` is a thin translation of the exceptions raised
by :meth:`JobManager.submit` into status codes.

Submission pipeline, in order::

    drain check          -> ServiceDraining   (HTTP 503)
    recovery barrier     -> submissions wait until journal replay finishes
    idempotency key      -> same key seen before -> that job, even terminal
    token bucket         -> RateLimited       (HTTP 429 + Retry-After)
    schema validation    -> RequestError      (HTTP 422)
    coalesce: same sweep_key already queued/running -> that job, no new work
    dedupe: every cell already in the ResultCache   -> run inline, zero sims
    bounded queue        -> QueueFull         (HTTP 503)

Durability: every transition a job makes (submitted, queued, running —
with the child's pid and kernel start time — finished, failed, cancelled,
expired) is appended to a crash-safe
:class:`~repro.service.journal.ServiceJournal` under ``state_dir``, and
:meth:`JobManager.recover` replays it on startup: terminal jobs are
restored as queryable records, orphaned sweep children are SIGKILLed
(pid + start-time matched, so recycled pids are safe), and interrupted
jobs are re-queued.  A re-queued job re-runs through the same per-job
sweep journal and the shared :class:`~repro.runner.cache.ResultCache`,
so every cell the dead server already finished is served as a cache hit —
zero duplicate simulations, bit-identical counters.

The dedupe step is the service's core economy: a grid whose every cell
(full key, or re-priceable base key) is already on disk never touches the
worker queue — it replays through ``run_sweep`` inline against the
service's shared cache and registry, so the ``cache.hit`` counters land
in ``GET /metrics`` and the submitter gets a finished job in one round
trip.  Everything else runs in a child process: ``run_sweep`` writes the
job's own status snapshot/journal/spans under ``jobs/<id>/`` (the PR 7
telemetry substrate, unchanged), the child ships its metrics snapshot
back over a pipe, and the parent folds it into the service registry via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` — one scrape
endpoint sees every sweep, however it executed.  A child process also
makes cancellation honest: ``terminate()`` actually stops a sweep
mid-flight, which no amount of thread flagging can.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..obs.log import fields as log_fields
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, set_registry
from ..obs.telemetry import SpanRecorder, read_status, write_status
from ..resilience.faults import FaultPlan
from ..resilience.journal import SweepJournal
from ..runner.cache import ResultCache
from ..runner.sweep import run_sweep
from .journal import SERVICE_JOURNAL_NAME, ServiceJournal, pid_start_time
from .schema import (
    RequestError,
    SweepOptions,
    SweepRequest,
    parse_request,
    report_payload,
    validate_idempotency_key,
)

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "QueueFull",
    "RateLimited",
    "ServiceDraining",
    "TokenBucket",
]

logger = get_logger("service.jobs")

#: Default cap on queued-but-not-running jobs.
DEFAULT_QUEUE_LIMIT = 16

#: Default seconds a terminal job's record (and directory) is kept.
DEFAULT_JOB_TTL = 3600.0

#: Journal-only states recovery must never resurrect a job from.
_DROPPED_STATES = frozenset({"expired", "rejected"})


class JobState:
    """The job lifecycle's states (plain strings — they go over the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({FINISHED, FAILED, CANCELLED})


class RateLimited(Exception):
    """The client's token bucket is empty; retry after ``retry_after``."""

    def __init__(self, retry_after: float) -> None:
        self.retry_after = max(retry_after, 0.001)
        super().__init__(f"rate limited; retry in {self.retry_after:.2f}s")


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 503)."""


class ServiceDraining(Exception):
    """The service is shutting down and no longer accepts work (HTTP 503)."""


class TokenBucket:
    """Per-client token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The clock is injectable so tests can exhaust a bucket deterministically
    (``rate=0`` never refills).  ``rate=None`` disables limiting entirely.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: int,
        clock=time.monotonic,
    ) -> None:
        if rate is not None and rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def take(self) -> None:
        """Consume one token or raise :class:`RateLimited`."""
        if self.rate is None:
            return
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            if self.rate == 0:
                raise RateLimited(retry_after=60.0)
            raise RateLimited(retry_after=(1.0 - self._tokens) / self.rate)


@dataclass
class Job:
    """One submitted sweep and everything known about it."""

    job_id: str
    request: SweepRequest
    sweep_key: str
    directory: Path
    client: str
    submitted_at: float
    state: str = JobState.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: True when every cell was already cached and the job ran inline
    deduped: bool = False
    #: Client-supplied retry token this job was submitted under, if any
    idempotency_key: Optional[str] = None
    #: True when this job was rebuilt from the service journal at startup
    recovered: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )
    process: Optional[multiprocessing.process.BaseProcess] = field(
        default=None, repr=False
    )

    @property
    def status_path(self) -> Path:
        return self.directory / "status.json"

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    @property
    def result_path(self) -> Path:
        return self.directory / "result.json"

    @property
    def spans_path(self) -> Path:
        return self.directory / "spans.json"

    def snapshot(self) -> dict:
        """The job as JSON: manager-side lifecycle + the sweep's own status.

        The sweep's heartbeat snapshot (written by ``run_sweep`` inside the
        child) carries cell progress; the manager's record is authoritative
        for lifecycle state, since the child cannot observe its own
        termination.
        """
        with self.lock:
            payload: dict = {
                "id": self.job_id,
                "state": self.state,
                "sweep_key": self.sweep_key,
                "cells": len(self.request.specs),
                "deduped": self.deduped,
                "recovered": self.recovered,
                "client": self.client,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
            }
            if self.error is not None:
                payload["error"] = self.error
            if self.idempotency_key is not None:
                payload["idempotency_key"] = self.idempotency_key
        sweep_status = read_status(self.status_path)
        if sweep_status is not None:
            payload["sweep"] = sweep_status
        return payload


def _job_process_main(
    conn,
    specs,
    options,
    cache_dir: str,
    job_dir: str,
) -> None:
    """Child-process entry: run one sweep with the full telemetry substrate.

    Builds a fresh registry/cache/journal/recorder (fork inherits the
    parent's — sharing them across the process boundary would double
    count), runs the sweep with its status snapshot and journal under the
    job directory, writes ``result.json`` + ``spans.json`` atomically, and
    ships ``{"ok", "metrics", "error"?}`` back over the pipe so the parent
    can fold this sweep into the service-wide registry.
    """
    job_path = Path(job_dir)
    registry = MetricsRegistry()
    set_registry(registry)
    cache = ResultCache(Path(cache_dir), registry=registry)
    journal = SweepJournal(job_path / "journal.jsonl")
    recorder = SpanRecorder()
    outcome: dict = {"ok": False, "metrics": {}}
    try:
        report = run_sweep(
            specs,
            jobs=options.jobs,
            cache=cache,
            registry=registry,
            retry=options.retries,
            cell_timeout=options.cell_timeout,
            keep_going=options.keep_going,
            journal=journal,
            telemetry=recorder,
            status_path=job_path / "status.json",
        )
        payload = report_payload(report)
        tmp = job_path / "result.json.tmp"
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, job_path / "result.json")
        recorder.write_chrome_trace(job_path / "spans.json")
        outcome["ok"] = True
    except Exception as error:  # ships the failure, never a traceback dump
        outcome["error"] = f"{type(error).__name__}: {error}"
    outcome["metrics"] = registry.as_dict()
    try:
        conn.send(outcome)
    finally:
        conn.close()


class JobManager:
    """Owns the job table, the worker pool and the shared result cache.

    ``start_gate``, when given, is a :class:`threading.Event` every worker
    waits on after marking its job RUNNING and before launching the sweep
    process — a test seam that freezes the pipeline in a known state so
    queue-full 503s and queued-job cancellation are deterministic.
    """

    def __init__(
        self,
        root: Path,
        workers: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_cells: int = 4096,
        max_jobs: int = 4,
        rate_per_sec: Optional[float] = None,
        burst: int = 10,
        job_ttl: float = DEFAULT_JOB_TTL,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        start_gate: Optional[threading.Event] = None,
        state_dir: Optional[Path] = None,
        fault_plan: Optional[FaultPlan] = None,
        recover: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self.state_dir = (
            Path(state_dir) if state_dir is not None else self.root / "state"
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.journal = ServiceJournal(
            self.state_dir / SERVICE_JOURNAL_NAME,
            plan=fault_plan,
            registry=self.registry,
        )
        self.cache = ResultCache(self.root / "cache", registry=self.registry)
        self.max_cells = max_cells
        self.max_jobs = max_jobs
        self.job_ttl = job_ttl
        self._rate_per_sec = rate_per_sec
        self._burst = burst
        self._clock = clock
        self._start_gate = start_gate
        self._jobs: Dict[str, Job] = {}
        self._idempotency: Dict[str, str] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=queue_limit
        )
        self._draining = False
        self._recovered = threading.Event()
        self._mp = multiprocessing.get_context()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()
        if recover and self.journal.exists():
            threading.Thread(
                target=self._recover_main, name="service-recovery", daemon=True
            ).start()
        else:
            self._recovered.set()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        payload: object,
        client: str = "anonymous",
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Take one request through the full admission pipeline.

        Raises :class:`ServiceDraining`, :class:`RateLimited`,
        :class:`~repro.service.schema.RequestError` or :class:`QueueFull`;
        otherwise returns the job — possibly an existing one (same
        idempotency key seen before, or coalesced on identical in-flight
        grids) or an already-finished one (fully cache-covered, ran
        inline).  ``idempotency_key`` (the ``Idempotency-Key`` header)
        takes precedence over a key embedded in the request body.
        """
        if self._draining:
            raise ServiceDraining("service is draining; not accepting sweeps")
        # Submissions wait out journal replay: the idempotency map and job
        # table are only trustworthy once recovery has rebuilt them.
        self._recovered.wait()
        if idempotency_key is not None:
            problem = validate_idempotency_key(idempotency_key)
            if problem is not None:
                raise RequestError(
                    [{"field": "idempotency-key header", "error": problem}]
                )
        # Fast idempotent replay: a key we have seen returns its job —
        # even a terminal one — before rate limiting, so a client
        # retrying a dropped response is never throttled into giving up.
        retry_key = idempotency_key
        if retry_key is None and isinstance(payload, Mapping):
            raw = payload.get("idempotency_key")
            if isinstance(raw, str):
                retry_key = raw
        if retry_key is not None:
            existing = self._job_for_key(retry_key)
            if existing is not None:
                self.registry.counter("service.jobs_idempotent").inc()
                return existing

        self._bucket_for(client).take()
        request = parse_request(
            payload, max_cells=self.max_cells, max_jobs=self.max_jobs
        )
        key = (
            idempotency_key
            if idempotency_key is not None
            else request.idempotency_key
        )
        sweep_key = request.sweep_key()

        with self._lock:
            for job in self._jobs.values():
                if job.sweep_key == sweep_key and job.state not in JobState.TERMINAL:
                    self.registry.counter("service.jobs_coalesced").inc()
                    if key is not None:
                        self._idempotency[key] = job.job_id
                    return job

        job = Job(
            job_id=uuid.uuid4().hex[:12],
            request=request,
            sweep_key=sweep_key,
            directory=self.jobs_root / "pending",
            client=client,
            submitted_at=time.time(),
            idempotency_key=key,
        )
        job.directory = self.jobs_root / job.job_id
        job.directory.mkdir(parents=True, exist_ok=True)
        (job.directory / "request.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        write_status(
            job.status_path,
            {"state": JobState.QUEUED, "cells": len(request.specs)},
        )
        self.journal.record(
            job.job_id,
            "submitted",
            sweep_key=sweep_key,
            client=client,
            idempotency_key=key,
            request=payload,
            cells=len(request.specs),
            submitted_at=job.submitted_at,
        )

        if self._fully_cached(request):
            # Zero simulations ahead: replay inline through the shared cache
            # so the hits count in the service registry and the caller gets
            # a terminal job immediately, bypassing the queue entirely.
            job.deduped = True
            self.registry.counter("service.jobs_deduped").inc()
            self._register(job)
            self._run_inline(job)
            return job

        self._register(job)
        # Journal "queued" BEFORE the put: once the job is on the queue a
        # worker may append "running" at any moment, and the journal's
        # merge is append-ordered.  A rejected put appends "rejected",
        # which supersedes the optimistic "queued".
        self.journal.record(job.job_id, "queued")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self._jobs.pop(job.job_id, None)
                if key is not None:
                    self._idempotency.pop(key, None)
            self.registry.counter("service.queue_rejected").inc()
            self.journal.record(job.job_id, "rejected")
            raise QueueFull(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self.registry.counter("service.jobs_submitted").inc()
        return job

    def _register(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
            if job.idempotency_key is not None:
                self._idempotency[job.idempotency_key] = job.job_id

    def _job_for_key(self, key: str) -> Optional[Job]:
        with self._lock:
            job_id = self._idempotency.get(key)
            if job_id is None:
                return None
            job = self._jobs.get(job_id)
            if job is None:  # reaped since; the key no longer redeems
                self._idempotency.pop(key, None)
            return job

    def _bucket_for(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self._rate_per_sec, self._burst, clock=self._clock
                )
                self._buckets[client] = bucket
            return bucket

    def _fully_cached(self, request: SweepRequest) -> bool:
        """True when no cell of this grid would simulate anything.

        A cell is covered by its full cache key, or — the PR 6 re-pricing
        path — by its base key (same configuration under any
        characterization), which ``run_sweep`` re-prices without
        simulating.
        """
        for spec in request.specs:
            if self.cache.path_for(spec.cache_key()).exists():
                continue
            base = spec.base_cache_key()
            if base != spec.cache_key() and self.cache.path_for(base).exists():
                continue
            return False
        return True

    def _run_inline(self, job: Job) -> None:
        """Serve a fully-cached job in the submitting thread."""
        with job.lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()
        self.journal.record(job.job_id, "running", started_at=job.started_at)
        try:
            report = run_sweep(
                list(job.request.specs),
                jobs=1,
                cache=self.cache,
                registry=self.registry,
                keep_going=job.request.options.keep_going,
                journal=SweepJournal(job.journal_path),
                status_path=job.status_path,
            )
            payload = report_payload(report)
            tmp = job.directory / "result.json.tmp"
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, job.result_path)
            with job.lock:
                job.state = JobState.FINISHED
                job.finished_at = time.time()
            self.journal.record(
                job.job_id, "finished", finished_at=job.finished_at
            )
        except Exception as error:
            with job.lock:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_at = time.time()
            self.journal.record(
                job.job_id,
                "failed",
                error=job.error,
                finished_at=job.finished_at,
            )

    # -- worker side -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        with job.lock:
            if job.cancel_event.is_set():
                # cancel() already journalled the queued->cancelled flip.
                job.state = JobState.CANCELLED
                if job.finished_at is None:
                    job.finished_at = time.time()
                return
            job.state = JobState.RUNNING
            job.started_at = time.time()
        if self._start_gate is not None:
            self._start_gate.wait()
        if job.cancel_event.is_set():
            with job.lock:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
            self.journal.record(
                job.job_id, "cancelled", finished_at=job.finished_at
            )
            return

        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_job_process_main,
            args=(
                child_conn,
                list(job.request.specs),
                job.request.options,
                str(self.cache.directory),
                str(job.directory),
            ),
            daemon=True,
        )
        with job.lock:
            job.process = process
        process.start()
        child_conn.close()
        # The pid plus its kernel start time uniquely name this child
        # incarnation: recovery after a crash can kill the orphan without
        # ever signalling a recycled pid.
        self.journal.record(
            job.job_id,
            "running",
            pid=process.pid,
            pid_start=pid_start_time(process.pid),
            started_at=job.started_at,
        )

        outcome: Optional[dict] = None
        while True:
            if job.cancel_event.is_set():
                process.terminate()
                process.join(timeout=10.0)
                with job.lock:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    job.process = None
                parent_conn.close()
                write_status(job.status_path, {"state": JobState.CANCELLED})
                self.journal.record(
                    job.job_id, "cancelled", finished_at=job.finished_at
                )
                return
            if parent_conn.poll(timeout=0.1):
                try:
                    outcome = parent_conn.recv()
                except EOFError:
                    outcome = None
                break
            if not process.is_alive():
                # One last poll: the child may have sent and exited between
                # our checks.
                if parent_conn.poll(timeout=0.1):
                    try:
                        outcome = parent_conn.recv()
                    except EOFError:
                        outcome = None
                break
        process.join(timeout=10.0)
        parent_conn.close()

        # Fold the child's metrics in BEFORE publishing a terminal state:
        # a client that polls to completion and immediately scrapes
        # /metrics must see this sweep's counters.
        if outcome is not None and outcome.get("metrics"):
            self.registry.merge_snapshot(outcome["metrics"])
        with job.lock:
            job.process = None
            job.finished_at = time.time()
            if outcome is None:
                job.state = JobState.FAILED
                job.error = (
                    f"sweep process died (exit code {process.exitcode})"
                )
            elif outcome.get("ok"):
                job.state = JobState.FINISHED
            else:
                job.state = JobState.FAILED
                job.error = outcome.get("error", "sweep failed")
        if job.state == JobState.FAILED:
            self.registry.counter("service.jobs_failed").inc()
            write_status(
                job.status_path,
                {"state": JobState.FAILED, "error": job.error},
            )
            self.journal.record(
                job.job_id,
                "failed",
                error=job.error,
                finished_at=job.finished_at,
            )
        else:
            self.journal.record(
                job.job_id, "finished", finished_at=job.finished_at
            )

    # -- crash recovery --------------------------------------------------------

    def _recover_main(self) -> None:
        """Background-thread wrapper: recovery must never wedge the service."""
        try:
            summary = self.recover()
            logger.info(
                "service recovery complete", extra=log_fields(**summary)
            )
        except Exception as error:  # pragma: no cover - defensive
            logger.error(
                "service recovery failed; starting with an empty job table",
                extra=log_fields(error=f"{type(error).__name__}: {error}"),
            )
        finally:
            self._recovered.set()

    @property
    def recovering(self) -> bool:
        """True while journal replay is still rebuilding the job table."""
        return not self._recovered.is_set()

    def wait_recovered(self, timeout: Optional[float] = None) -> bool:
        """Block until recovery finishes; True when it has."""
        return self._recovered.wait(timeout)

    def recover(self) -> dict:
        """Replay the service journal: restore, reap orphans, re-queue.

        Terminal jobs inside their TTL come back as queryable records;
        jobs the dead server left submitted/queued/running are re-queued
        (after SIGKILLing any orphaned sweep child whose pid *and* kernel
        start time still match the journal), and jobs whose request can
        no longer be parsed — a torn ``submitted`` line — are restored as
        FAILED so the client sees a terminal answer instead of a 404.
        Re-queued jobs re-run through the shared :class:`ResultCache`, so
        cells the previous incarnation completed are cache hits: zero
        duplicate simulations.  The journal is compacted to the surviving
        records before anything is re-queued (nothing else appends until
        ``_recovered`` is set, so compaction cannot lose a transition).
        """
        with self.registry.timer("service.recovery").time():
            records = self.journal.load()
            live: Dict[str, dict] = {}
            restored: List[Job] = []
            requeue: List[Job] = []
            orphans = 0
            now = time.time()
            for job_id, record in records.items():
                state = record.get("state")
                if state in _DROPPED_STATES:
                    continue
                if state in JobState.TERMINAL:
                    finished = record.get("finished_at")
                    if not isinstance(finished, (int, float)):
                        finished = record.get("ts", now)
                    if (
                        self.job_ttl is not None
                        and self.job_ttl > 0
                        and now - float(finished) > self.job_ttl
                    ):
                        continue  # expired while down; falls out on compact
                    job, _ = self._rebuild_job(job_id, record)
                    with job.lock:
                        job.state = state
                        job.finished_at = float(finished)
                        started = record.get("started_at")
                        if isinstance(started, (int, float)):
                            job.started_at = float(started)
                        error = record.get("error")
                        if isinstance(error, str):
                            job.error = error
                    live[job_id] = dict(record)
                    restored.append(job)
                    continue
                # submitted/queued/running: the crash interrupted this job.
                # Reap regardless of the merged state — a "running" append
                # can race a "queued" one, but the pid fields survive the
                # merge either way (no-op when the record has no pid).
                orphans += self._reap_orphan(job_id, record)
                job, problem = self._rebuild_job(job_id, record)
                if problem is not None:
                    with job.lock:
                        job.state = JobState.FAILED
                        job.error = problem
                        job.finished_at = now
                    failed = dict(record)
                    failed.update(
                        state="failed", error=problem, finished_at=now
                    )
                    live[job_id] = failed
                    restored.append(job)
                    continue
                with job.lock:
                    job.state = JobState.QUEUED
                requeued_record = dict(record)
                requeued_record["state"] = "queued"
                requeued_record.pop("pid", None)
                requeued_record.pop("pid_start", None)
                live[job_id] = requeued_record
                requeue.append(job)
            self.journal.compact(live)
            for job in restored:
                self._register(job)
            for job in requeue:
                job.directory.mkdir(parents=True, exist_ok=True)
                write_status(
                    job.status_path,
                    {
                        "state": JobState.QUEUED,
                        "cells": len(job.request.specs),
                        "recovered": True,
                    },
                )
                self._register(job)
                self._queue.put(job)
            recovered = len(restored) + len(requeue)
            if recovered:
                self.registry.counter("service.jobs_recovered").inc(recovered)
            if orphans:
                self.registry.counter("service.jobs_orphaned").inc(orphans)
        return {
            "recovered": recovered,
            "restored": len(restored),
            "requeued": len(requeue),
            "orphans": orphans,
        }

    def _rebuild_job(self, job_id: str, record: dict) -> "tuple[Job, Optional[str]]":
        """A Job from a merged journal record, plus a problem string if the
        request payload can no longer be parsed (torn ``submitted`` line,
        schema drift across versions)."""
        problem: Optional[str] = None
        try:
            request = parse_request(
                record.get("request"),
                max_cells=self.max_cells,
                max_jobs=self.max_jobs,
            )
        except RequestError as error:
            request = SweepRequest(specs=(), options=SweepOptions())
            problem = f"unrecoverable after restart: {error}"
        submitted = record.get("submitted_at")
        if not isinstance(submitted, (int, float)):
            submitted = record.get("ts", time.time())
        key = record.get("idempotency_key")
        job = Job(
            job_id=job_id,
            request=request,
            sweep_key=str(record.get("sweep_key", "")),
            directory=self.jobs_root / job_id,
            client=str(record.get("client", "anonymous")),
            submitted_at=float(submitted),
            idempotency_key=key if isinstance(key, str) else None,
            recovered=True,
        )
        return job, problem

    def _reap_orphan(self, job_id: str, record: dict) -> int:
        """SIGKILL the orphaned sweep child of a crashed incarnation.

        Only when the journalled pid's kernel start time still matches —
        a pid the OS has recycled belongs to someone else and is left
        alone.  Returns how many processes were killed (0 or 1).
        """
        pid = record.get("pid")
        start = record.get("pid_start")
        if not isinstance(pid, int) or not isinstance(start, str):
            return 0
        if pid_start_time(pid) != start:
            return 0
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            return 0
        logger.warning(
            "killed orphaned sweep child from previous incarnation",
            extra=log_fields(job=job_id, pid=pid),
        )
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and pid_start_time(pid) == start:
            time.sleep(0.05)
        return 1

    # -- queries and lifecycle -------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        self._recovered.wait()
        self._reap()
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        self._recovered.wait()
        self._reap()
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at
            )

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job, or None if unknown.

        Queued jobs flip straight to CANCELLED (the worker skips them);
        running jobs get their sweep process terminated by the worker's
        poll loop within ~100ms.
        """
        job = self.get(job_id)
        if job is None:
            return None
        with job.lock:
            if job.state in JobState.TERMINAL:
                return job
            job.cancel_event.set()
            cancelled_now = False
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                cancelled_now = True
        if cancelled_now:
            self.journal.record(
                job.job_id, "cancelled", finished_at=job.finished_at
            )
        self.registry.counter("service.jobs_cancelled").inc()
        return job

    def _reap(self) -> None:
        """Evict terminal jobs older than the TTL (record and directory)."""
        if self.job_ttl is None or self.job_ttl <= 0:
            return
        now = time.time()
        expired: List[Job] = []
        with self._lock:
            for job_id, job in list(self._jobs.items()):
                if (
                    job.state in JobState.TERMINAL
                    and job.finished_at is not None
                    and now - job.finished_at > self.job_ttl
                ):
                    expired.append(self._jobs.pop(job_id))
        for job in expired:
            self.registry.counter("service.jobs_expired").inc()
            self.journal.record(job.job_id, "expired")
            if job.idempotency_key is not None:
                with self._lock:
                    if self._idempotency.get(job.idempotency_key) == job.job_id:
                        self._idempotency.pop(job.idempotency_key, None)
            for name in (
                "request.json",
                "status.json",
                "journal.jsonl",
                "result.json",
                "spans.json",
            ):
                try:
                    (job.directory / name).unlink()
                except OSError:
                    pass
            try:
                job.directory.rmdir()
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining

    def health_info(self) -> dict:
        """Liveness/readiness signals for ``/healthz`` and ``/readyz``.

        ``degraded`` lists everything currently wrong: recovery still
        replaying the journal, the service draining, the job queue
        saturated, or nonzero write-failure counters (result cache or
        service journal) — the service still answers, but a crash right
        now would lose more than usual.
        """
        depth = self._queue.qsize()
        put_errors = self.registry.counter_value("cache.put_errors")
        journal_errors = self.registry.counter_value("service.journal_errors")
        degraded: List[str] = []
        if self.recovering:
            degraded.append("recovery_in_progress")
        if self._draining:
            degraded.append("draining")
        if depth >= self._queue.maxsize:
            degraded.append("queue_saturated")
        if put_errors:
            degraded.append("cache_put_errors")
        if journal_errors:
            degraded.append("journal_errors")
        return {
            "draining": self._draining,
            "recovering": self.recovering,
            "queue_depth": depth,
            "queue_limit": self._queue.maxsize,
            "cache_put_errors": put_errors,
            "journal_errors": journal_errors,
            "degraded": degraded,
        }

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting work and wait for in-flight jobs to finish.

        Returns True when everything reached a terminal state in time.
        Safe to call more than once.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        # Recovery may still be re-queueing; the drain must see those jobs.
        self._recovered.wait(max(0.0, deadline - time.monotonic()))
        while time.monotonic() < deadline:
            with self._lock:
                busy = [
                    job
                    for job in self._jobs.values()
                    if job.state not in JobState.TERMINAL
                ]
            if not busy:
                return True
            time.sleep(0.05)
        return False

    def shutdown(self, cancel_running: bool = False) -> None:
        """Tear the worker pool down (used by tests and the serve loop)."""
        self._draining = True
        if cancel_running:
            with self._lock:
                jobs = list(self._jobs.values())
            for job in jobs:
                with job.lock:
                    terminal = job.state in JobState.TERMINAL
                if not terminal:
                    self.cancel(job.job_id)
        for _ in self._workers:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        for worker in self._workers:
            worker.join(timeout=5.0)
