"""Tests for the competitive update/invalidate hybrid (EDWP)."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import pipelined_bus
from repro.protocols.snoopy.competitive import CompetitiveUpdate
from repro.protocols.snoopy.dragon import Dragon
from repro.protocols.events import Event
from repro.trace.record import AccessType


class TestSelfInvalidation:
    def test_copy_survives_below_the_limit(self):
        proto = CompetitiveUpdate(4, limit=3)
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5), (0, "w", 5)])
        assert proto.sharing.is_held(5, 1)  # two updates < limit 3

    def test_copy_drops_at_the_limit(self):
        proto = CompetitiveUpdate(4, limit=3)
        run_ops(
            proto,
            [(0, "r", 5), (1, "r", 5), (0, "w", 5), (0, "w", 5), (0, "w", 5)],
        )
        assert not proto.sharing.is_held(5, 1)
        assert proto.self_invalidations == 1

    def test_local_access_resets_the_counter(self):
        proto = CompetitiveUpdate(4, limit=2)
        run_ops(
            proto,
            [
                (0, "r", 5),
                (1, "r", 5),
                (0, "w", 5),
                (1, "r", 5),  # reader is still interested: counter resets
                (0, "w", 5),
                (1, "r", 5),
                (0, "w", 5),
            ],
        )
        assert proto.sharing.is_held(5, 1)
        assert proto.self_invalidations == 0

    def test_updates_stop_after_everyone_drops(self):
        proto = CompetitiveUpdate(4, limit=1)
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5), (0, "w", 5)]
        )
        # First write updates (and drops) cache 1; second write is local.
        assert outcomes[2].event is Event.WH_DISTRIB
        assert outcomes[3].event is Event.WH_LOCAL
        assert outcomes[3].ops == ()

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            CompetitiveUpdate(4, limit=0)

    def test_owner_never_self_invalidates(self):
        proto = CompetitiveUpdate(4, limit=1)
        rng = random.Random(3)
        for _ in range(2000):
            block = rng.randrange(10)
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                block,
            )
            owner = proto.sharing.dirty_owner(block)
            if owner != -1:
                assert proto.sharing.is_held(block, owner)


class TestCompetitivePosition:
    def _migratory_ops(self, rounds=20, run=20):
        """Migratory hand-offs with long write runs: after a hand-off the
        previous owner never looks again until its own next turn, so every
        update sent to it beyond the first couple is pure waste."""
        ops = []
        for i in range(rounds):
            pid = i % 2
            ops.append((pid, "r", 7))
            ops += [(pid, "w", 7)] * run
        return ops

    def _active_sharing_ops(self, rounds=50):
        """One writer, three readers re-reading every round: updates win."""
        ops = []
        for _ in range(rounds):
            ops.append((0, "w", 7))
            ops += [(reader, "r", 7) for reader in (1, 2, 3)]
        return ops

    def _cost(self, proto, ops):
        bus = pipelined_bus()
        return sum(
            sum(bus.cost_of(k) * n for k, n in outcome.ops)
            for outcome in run_ops(proto, ops)
        )

    def test_beats_dragon_on_migratory_data(self):
        ops = self._migratory_ops()
        competitive = self._cost(CompetitiveUpdate(4, limit=2), ops)
        dragon = self._cost(Dragon(4), ops)
        assert competitive < dragon

    def test_matches_dragon_on_actively_shared_data(self):
        ops = self._active_sharing_ops()
        competitive = self._cost(CompetitiveUpdate(4, limit=4), ops)
        dragon = self._cost(Dragon(4), ops)
        # Readers touch the block every round, so nothing self-invalidates.
        assert competitive == dragon

    def test_infinite_limit_degenerates_to_dragon(self):
        rng = random.Random(17)
        ops = [
            (
                rng.randrange(4),
                rng.choice("rw"),
                rng.randrange(12),
            )
            for _ in range(3000)
        ]
        competitive = CompetitiveUpdate(4, limit=10**9)
        dragon = Dragon(4)
        for op in ops:
            a = run_ops(competitive, [op])[0]
            b = run_ops(dragon, [op])[0]
            assert a.event is b.event
            assert a.ops == b.ops
