"""Network scaling analysis: where directories beat snooping.

The paper asserts, without a large machine to measure, that directory
schemes scale because their messages are directed while snoopy schemes die
with the broadcasts they rely on.  This analysis quantifies the claim: the
bus-operation counts measured at 4 processors are re-priced on
progressively larger interconnection networks
(:mod:`repro.interconnect.network`), where a broadcast costs n-1 directed
messages.

The extrapolation holds the sharing *structure* fixed (the counts come from
the 4-processor traces — exactly the limitation the paper acknowledges for
its own data); what changes with machine size is purely the price of each
operation.  Under it:

* **DirnNB** (directed sequential invalidations) grows only with message
  latency — log2(n) on an omega network;
* **Dir0B / Dir1B** pay the broadcast emulation on their (rare) broadcasts
  — a visible but bounded penalty;
* **WTI and Dragon** pay it on *every* shared write — the snoopy collapse.

The crossover — directories cheapest beyond a handful of nodes — is the
paper's thesis in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..core.comparison import ComparisonResult
from ..interconnect.network import NetworkModel, Topology, network_cost_model

__all__ = ["NetworkScaling", "network_scaling"]


@dataclass(frozen=True)
class NetworkScaling:
    """Cycles per reference for each scheme across machine sizes."""

    topology: Topology
    node_counts: Sequence[int]
    cycles: Mapping[str, Mapping[int, float]]  # scheme -> n -> cycles/ref

    def cheapest_at(self, n_nodes: int) -> str:
        return min(self.cycles, key=lambda scheme: self.cycles[scheme][n_nodes])

    def growth(self, scheme: str) -> float:
        """Cost ratio between the largest and smallest machine."""
        first, last = self.node_counts[0], self.node_counts[-1]
        base = self.cycles[scheme][first]
        if base == 0:
            return float("inf")
        return self.cycles[scheme][last] / base

    def render(self) -> str:
        header = f"{'scheme':<10}" + "".join(
            f"{n:>10}" for n in self.node_counts
        ) + f"{'growth':>9}"
        lines = [
            f"Cycles/reference on a {self.topology.value} network "
            "(4-processor sharing structure, re-priced):",
            header,
        ]
        for scheme, row in self.cycles.items():
            lines.append(
                f"{scheme:<10}"
                + "".join(f"{row[n]:>10.4f}" for n in self.node_counts)
                + f"{self.growth(scheme):>8.1f}x"
            )
        lines.append(
            f"cheapest at n={self.node_counts[-1]}: "
            f"{self.cheapest_at(self.node_counts[-1])}"
        )
        return "\n".join(lines)


def network_scaling(
    comparison: ComparisonResult,
    schemes: Sequence[str],
    topology: Topology = Topology.OMEGA,
    node_counts: Sequence[int] = (4, 16, 64, 256),
) -> NetworkScaling:
    """Re-price measured operation counts on networks of growing size."""
    if not schemes:
        raise ValueError("at least one scheme is required")
    cycles: Dict[str, Dict[int, float]] = {scheme: {} for scheme in schemes}
    for n_nodes in node_counts:
        model = network_cost_model(
            NetworkModel(topology=topology, n_nodes=n_nodes)
        )
        for scheme in schemes:
            cycles[scheme][n_nodes] = comparison.average_cycles(scheme, model)
    return NetworkScaling(
        topology=topology, node_counts=tuple(node_counts), cycles=cycles
    )
