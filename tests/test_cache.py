"""Unit tests for the infinite and finite cache models."""

import pytest

from repro.memory.cache import CacheGeometry, FiniteCache, InfiniteCache
from repro.memory.state import LineState


class TestLineState:
    def test_valid_predicate(self):
        assert LineState.CLEAN.is_valid
        assert LineState.DIRTY.is_valid
        assert not LineState.INVALID.is_valid

    def test_modified_predicate(self):
        assert LineState.DIRTY.is_modified
        assert LineState.SHARED_DIRTY.is_modified
        assert not LineState.CLEAN.is_modified


class TestInfiniteCache:
    def test_insert_and_lookup(self):
        cache = InfiniteCache()
        cache.insert(7)
        assert cache.contains(7)
        assert 7 in cache
        assert cache.state_of(7) is LineState.CLEAN

    def test_insert_rejects_invalid_state(self):
        with pytest.raises(ValueError):
            InfiniteCache().insert(1, LineState.INVALID)

    def test_set_state(self):
        cache = InfiniteCache()
        cache.insert(7)
        cache.set_state(7, LineState.DIRTY)
        assert cache.state_of(7) is LineState.DIRTY

    def test_set_state_to_invalid_evicts(self):
        cache = InfiniteCache()
        cache.insert(7)
        cache.set_state(7, LineState.INVALID)
        assert not cache.contains(7)

    def test_set_state_on_missing_block_raises(self):
        with pytest.raises(KeyError):
            InfiniteCache().set_state(7, LineState.DIRTY)

    def test_invalidate_reports_residency(self):
        cache = InfiniteCache()
        cache.insert(7)
        assert cache.invalidate(7) is True
        assert cache.invalidate(7) is False

    def test_never_evicts(self):
        cache = InfiniteCache()
        for block in range(10_000):
            cache.insert(block)
        assert len(cache) == 10_000


class TestCacheGeometry:
    def test_capacity(self):
        geometry = CacheGeometry(n_sets=8, associativity=4)
        assert geometry.capacity_blocks == 32

    def test_set_mapping(self):
        geometry = CacheGeometry(n_sets=8, associativity=1)
        assert geometry.set_of(0) == 0
        assert geometry.set_of(9) == 1
        assert geometry.set_of(8) == 0

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(n_sets=6, associativity=1)

    def test_rejects_nonpositive_associativity(self):
        with pytest.raises(ValueError):
            CacheGeometry(n_sets=4, associativity=0)


class TestFiniteCache:
    def test_insert_within_capacity_never_evicts(self):
        cache = FiniteCache(CacheGeometry(n_sets=2, associativity=2))
        assert cache.insert(0) is None
        assert cache.insert(1) is None
        assert cache.insert(2) is None  # set 0 now holds 0 and 2
        assert len(cache) == 3

    def test_lru_victim_selection(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=2))
        cache.insert(10)
        cache.insert(20)
        cache.touch(10)  # 20 becomes least recently used
        victim = cache.insert(30)
        assert victim == 20
        assert cache.contains(10) and cache.contains(30)

    def test_touch_miss_returns_false(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=2))
        assert cache.touch(99) is False

    def test_reinserting_resident_block_does_not_evict(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=2))
        cache.insert(1)
        cache.insert(2)
        assert cache.insert(1) is None

    def test_conflict_eviction_respects_sets(self):
        cache = FiniteCache(CacheGeometry(n_sets=2, associativity=1))
        cache.insert(0)  # set 0
        cache.insert(1)  # set 1
        victim = cache.insert(2)  # maps to set 0
        assert victim == 0
        assert cache.contains(1)

    def test_state_tracking(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=2))
        cache.insert(1, LineState.DIRTY)
        assert cache.state_of(1) is LineState.DIRTY
        cache.set_state(1, LineState.CLEAN)
        assert cache.state_of(1) is LineState.CLEAN

    def test_set_state_invalid_evicts(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=1))
        cache.insert(1)
        cache.set_state(1, LineState.INVALID)
        assert not cache.contains(1)

    def test_resident_blocks(self):
        cache = FiniteCache(CacheGeometry(n_sets=2, associativity=2))
        for block in (0, 1, 2):
            cache.insert(block)
        assert sorted(cache.resident_blocks()) == [0, 1, 2]

    def test_insert_rejects_invalid_state(self):
        cache = FiniteCache(CacheGeometry(n_sets=1, associativity=1))
        with pytest.raises(ValueError):
            cache.insert(0, LineState.INVALID)
