"""Section 6: directory scheme alternatives for scalability.

Four analyses from the paper's Section 6:

1. **Sequential invalidation** — DirnNB (directed messages) vs Dir0B
   (broadcast): the paper measures 0.0499 vs 0.0491 cycles/reference, a
   negligible difference because most invalidation situations involve at
   most one remote copy.
2. **Broadcast-cost model** — Dir1B keeps one pointer plus a broadcast bit;
   its cost is linear in the broadcast price ``b``:
   ``cycles(b) = intercept + slope·b`` (paper: 0.0485 + 0.0006·b).
   :func:`broadcast_cost_line` extracts the line from a simulation.
3. **Pointer sweeps** — DiriB trades broadcast frequency against pointer
   storage; DiriNB avoids broadcasts entirely at the price of extra misses
   from pointer displacement.  Both are swept over ``i``.
4. **Directory storage** — bits per main-memory block for each organisation
   as the machine grows (full map grows linearly with caches; the paper's
   digit code needs only ``2·log2 n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.simulator import SimulationResult, simulate
from ..interconnect.bus import BusCostModel, BusOp
from ..protocols.directory.coarse import DirCoarse
from ..protocols.directory.dir0b import Dir0B
from ..protocols.directory.dir1nb import Dir1NB
from ..protocols.directory.dirib import DiriB
from ..protocols.directory.dirinb import DiriNB
from ..protocols.directory.dirnnb import DirnNB
from ..trace.record import TraceRecord
from ._defaults import _default_bus

__all__ = [
    "BroadcastCostLine",
    "broadcast_cost_line",
    "PointerSweepPoint",
    "sweep_dirib",
    "sweep_dirinb",
    "directory_storage_bits",
]

TraceFactory = Callable[[], Iterable[TraceRecord]]


@dataclass(frozen=True)
class BroadcastCostLine:
    """``cycles(b) = intercept + slope·b`` for a broadcast-bit scheme."""

    scheme: str
    intercept: float
    slope: float

    def at(self, b: float) -> float:
        if b < 0:
            raise ValueError(f"broadcast cost b must be non-negative, got {b}")
        return self.intercept + self.slope * b

    def render(self) -> str:
        return (
            f"{self.scheme}: {self.intercept:.4f} + {self.slope:.4f}*b "
            "cycles/ref"
        )


def broadcast_cost_line(
    result: SimulationResult, bus: Optional[BusCostModel] = None
) -> BroadcastCostLine:
    """Extract the Section 6 linear model from one simulation result.

    The slope is the measured broadcast rate (broadcasts per reference); the
    intercept is the cost with broadcasts priced at zero.
    """
    bus = _default_bus(bus)
    free_broadcasts = bus.with_broadcast_cost(0.0)
    intercept = result.cycles_per_reference(free_broadcasts)
    slope = result.counters.ops.rate(BusOp.BROADCAST_INVALIDATE)
    return BroadcastCostLine(
        scheme=result.protocol_label, intercept=intercept, slope=slope
    )


@dataclass(frozen=True)
class PointerSweepPoint:
    """One configuration in a DiriB / DiriNB pointer sweep (trace average)."""

    scheme: str
    pointers: int
    cycles_per_reference: float
    data_miss_rate: float  # percent of references, first refs excluded
    broadcasts_per_thousand_refs: float
    displacements_per_thousand_refs: float
    directory_bits_per_block: int

    def render(self) -> str:
        return (
            f"{self.scheme:<8} i={self.pointers}: "
            f"{self.cycles_per_reference:.4f} cyc/ref, "
            f"miss {self.data_miss_rate:.2f}%, "
            f"bcast {self.broadcasts_per_thousand_refs:.2f}/kref, "
            f"displaced {self.displacements_per_thousand_refs:.2f}/kref, "
            f"{self.directory_bits_per_block} dir bits/blk"
        )


def _average_over_traces(
    make_protocol: Callable[[], object],
    trace_factories: Mapping[str, TraceFactory],
    bus: BusCostModel,
):
    """Run one protocol config over all traces; return averaged measures."""
    cycles: List[float] = []
    miss: List[float] = []
    broadcasts: List[float] = []
    displacements: List[float] = []
    for trace_name, factory in trace_factories.items():
        protocol = make_protocol()
        result = simulate(protocol, factory(), trace_name=trace_name)
        cycles.append(result.cycles_per_reference(bus))
        miss.append(result.frequencies().data_miss_rate)
        broadcasts.append(
            1000.0 * result.counters.ops.rate(BusOp.BROADCAST_INVALIDATE)
        )
        displaced = getattr(protocol, "displacements", 0)
        displacements.append(1000.0 * displaced / result.references)
    n = len(cycles)
    return (
        sum(cycles) / n,
        sum(miss) / n,
        sum(broadcasts) / n,
        sum(displacements) / n,
    )


def sweep_dirib(
    trace_factories: Mapping[str, TraceFactory],
    pointer_counts: Sequence[int] = (1, 2, 4),
    n_caches: int = 4,
    bus: Optional[BusCostModel] = None,
) -> List[PointerSweepPoint]:
    """Sweep DiriB over pointer counts (broadcast frequency falls with i)."""
    bus = _default_bus(bus)
    points = []
    for pointers in pointer_counts:
        cycles, miss, broadcasts, _ = _average_over_traces(
            lambda pointers=pointers: DiriB(n_caches, pointers=pointers),
            trace_factories,
            bus,
        )
        points.append(
            PointerSweepPoint(
                scheme="DiriB",
                pointers=pointers,
                cycles_per_reference=cycles,
                data_miss_rate=miss,
                broadcasts_per_thousand_refs=broadcasts,
                displacements_per_thousand_refs=0.0,
                directory_bits_per_block=DiriB.directory_bits_per_block(
                    n_caches, pointers
                ),
            )
        )
    return points


def sweep_dirinb(
    trace_factories: Mapping[str, TraceFactory],
    pointer_counts: Sequence[int] = (1, 2, 4),
    n_caches: int = 4,
    bus: Optional[BusCostModel] = None,
    eviction: str = "fifo",
) -> List[PointerSweepPoint]:
    """Sweep DiriNB over pointer counts (miss rate falls as i grows)."""
    bus = _default_bus(bus)
    points = []
    for pointers in pointer_counts:
        cycles, miss, _, displaced = _average_over_traces(
            lambda pointers=pointers: DiriNB(
                n_caches, pointers=pointers, eviction=eviction
            ),
            trace_factories,
            bus,
        )
        points.append(
            PointerSweepPoint(
                scheme="DiriNB",
                pointers=pointers,
                cycles_per_reference=cycles,
                data_miss_rate=miss,
                broadcasts_per_thousand_refs=0.0,
                displacements_per_thousand_refs=displaced,
                directory_bits_per_block=DiriNB.directory_bits_per_block(
                    n_caches, pointers
                ),
            )
        )
    return points


def directory_storage_bits(
    cache_counts: Sequence[int] = (4, 16, 64, 256, 1024),
) -> Dict[str, Dict[int, int]]:
    """Directory bits per main-memory block vs machine size (Section 6).

    The full map (DirnNB) grows linearly with the number of caches, the
    pointer schemes logarithmically, the digit code as 2·log2 n, and Dir0B
    not at all.
    """
    schemes = {
        "Dir1NB": Dir1NB.directory_bits_per_block,
        "DirnNB (full map)": DirnNB.directory_bits_per_block,
        "Dir0B": Dir0B.directory_bits_per_block,
        "Dir1B": lambda n: DiriB.directory_bits_per_block(n, pointers=1),
        "Dir4B": lambda n: DiriB.directory_bits_per_block(n, pointers=4),
        "Dir4NB": lambda n: DiriNB.directory_bits_per_block(n, pointers=4),
        "Digit code (coarse)": DirCoarse.directory_bits_per_block,
    }
    return {
        name: {n: bits(n) for n in cache_counts}
        for name, bits in schemes.items()
    }
