"""Table 5: breakdown of bus cycles per reference (pipelined bus).

Paper cumulative values: Dir1NB 0.3210, WTI 0.1466, Dir0B 0.0491,
Dragon 0.0336; Dir0B's non-overlapped directory-access component is 0.0041,
and a Berkeley estimate derived by zeroing directory accesses lands between
Dir0B and Dragon.
"""

import pytest

from conftest import PAPER_CYCLES_PIPELINED
from repro.analysis.tables import table5
from repro.interconnect import Table5Category

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


def test_table5_cycle_breakdown(benchmark, comparison, pipe_bus, save_result):
    result = benchmark(table5, comparison, pipe_bus, SCHEMES)

    lines = [result.render(), "", "Cumulative vs paper:"]
    for scheme in SCHEMES:
        lines.append(
            f"  {scheme:<8} {result.cumulative(scheme):.4f} "
            f"(paper {PAPER_CYCLES_PIPELINED[scheme]:.4f})"
        )
    save_result("table5_cycle_breakdown", "\n".join(lines))

    # Structural claims from the paper's Table 5 discussion:
    # Dir1NB's directory accesses always overlap memory accesses.
    assert result.by_category["dir1nb"][Table5Category.DIR_ACCESS] == 0
    # Dir0B's standalone directory component exists but is small relative to
    # its total — "the directory itself is not a major bottleneck".
    dir0b = result.by_category["dir0b"]
    assert 0 < dir0b[Table5Category.DIR_ACCESS] < 0.2 * result.cumulative("dir0b")
    # WTI's cycles are dominated by write-throughs.
    wti = result.by_category["wti"]
    assert wti[Table5Category.WT_OR_WUP] > 0.5 * result.cumulative("wti")
    # Dragon splits cycles between loading caches and write updates.
    dragon = result.by_category["dragon"]
    assert dragon[Table5Category.WT_OR_WUP] > 0
    assert dragon[Table5Category.MEM_ACCESS] > 0
    # Invalidation cycles are a small fraction for Dir0B — the observation
    # motivating sequential invalidation (Section 6).
    assert dir0b[Table5Category.INVALIDATE] < 0.2 * result.cumulative("dir0b")


def test_berkeley_estimate(benchmark, comparison, pipe_bus, save_result):
    """The paper estimates Berkeley from Dir0B's event frequencies by
    zeroing the directory-access cost; we also implement the real state
    machine.  Both land between Dir0B and Dragon."""

    def berkeley_numbers():
        dir0b = comparison.average_category_cycles("dir0b", pipe_bus)
        estimate = sum(
            cycles
            for category, cycles in dir0b.items()
            if category is not Table5Category.DIR_ACCESS
        )
        implemented = comparison.average_cycles("berkeley", pipe_bus)
        return estimate, implemented

    estimate, implemented = benchmark(berkeley_numbers)
    dir0b_total = comparison.average_cycles("dir0b", pipe_bus)
    dragon_total = comparison.average_cycles("dragon", pipe_bus)
    save_result(
        "table5_berkeley_estimate",
        "Berkeley ownership (paper aside, Section 5):\n"
        f"  cost-model estimate (Dir0B minus dir access): {estimate:.4f}\n"
        f"  full state machine:                           {implemented:.4f}\n"
        f"  Dir0B {dir0b_total:.4f}  Dragon {dragon_total:.4f}  "
        "(paper: estimate 0.0499* vs Dir0B 0.0491, Dragon 0.0336;\n"
        "   *the paper calls it 'roughly midway between DiroB and Dragon')",
    )
    assert dragon_total < estimate <= dir0b_total
    assert dragon_total < implemented <= dir0b_total * 1.02
    assert implemented == pytest.approx(estimate, rel=0.25)
