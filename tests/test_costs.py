"""Unit tests for bus-operation counting and cost summaries."""

import pytest

from repro.interconnect.bus import BusOp, Table5Category, pipelined_bus
from repro.interconnect.costs import BusOpCounts, summarize_costs


def _counts(ops, references, transactions):
    counts = BusOpCounts()
    for op, n in ops.items():
        counts.add(op, n)
    counts.references = references
    counts.transactions = transactions
    return counts


class TestBusOpCounts:
    def test_add_accumulates(self):
        counts = BusOpCounts()
        counts.add(BusOp.MEM_ACCESS)
        counts.add(BusOp.MEM_ACCESS, 2)
        assert counts.ops[BusOp.MEM_ACCESS] == 3

    def test_add_zero_is_noop(self):
        counts = BusOpCounts()
        counts.add(BusOp.MEM_ACCESS, 0)
        assert BusOp.MEM_ACCESS not in counts.ops

    def test_rate(self):
        counts = _counts({BusOp.INVALIDATE: 5}, references=100, transactions=5)
        assert counts.rate(BusOp.INVALIDATE) == 0.05
        assert counts.rate(BusOp.MEM_ACCESS) == 0.0

    def test_rate_of_empty_run_is_zero(self):
        assert BusOpCounts().rate(BusOp.MEM_ACCESS) == 0.0

    def test_transactions_per_reference(self):
        counts = _counts({}, references=200, transactions=10)
        assert counts.transactions_per_reference == 0.05

    def test_merge(self):
        a = _counts({BusOp.MEM_ACCESS: 1}, references=10, transactions=1)
        b = _counts({BusOp.MEM_ACCESS: 2, BusOp.INVALIDATE: 1}, 20, 3)
        a.merge(b)
        assert a.ops[BusOp.MEM_ACCESS] == 3
        assert a.ops[BusOp.INVALIDATE] == 1
        assert a.references == 30
        assert a.transactions == 4


class TestCostSummary:
    def test_cycles_per_reference(self):
        counts = _counts(
            {BusOp.MEM_ACCESS: 10, BusOp.INVALIDATE: 10}, 1000, 20
        )
        summary = summarize_costs("X", counts, pipelined_bus())
        assert summary.cycles_per_reference == pytest.approx(
            (10 * 5 + 10 * 1) / 1000
        )

    def test_category_breakdown(self):
        counts = _counts(
            {BusOp.FLUSH_REQUEST: 4, BusOp.WRITE_BACK: 4, BusOp.DIR_CHECK: 2},
            1000,
            6,
        )
        summary = summarize_costs("X", counts, pipelined_bus())
        assert summary.by_category[Table5Category.MEM_ACCESS] == pytest.approx(
            4 / 1000
        )
        assert summary.by_category[Table5Category.WRITE_BACK] == pytest.approx(
            16 / 1000
        )
        assert summary.by_category[Table5Category.DIR_ACCESS] == pytest.approx(
            2 / 1000
        )

    def test_cycles_per_transaction(self):
        counts = _counts({BusOp.MEM_ACCESS: 10}, 1000, 10)
        summary = summarize_costs("X", counts, pipelined_bus())
        assert summary.cycles_per_transaction == pytest.approx(5.0)

    def test_overhead_model(self):
        counts = _counts({BusOp.MEM_ACCESS: 10}, 1000, 10)
        summary = summarize_costs("X", counts, pipelined_bus())
        base = summary.cycles_per_reference
        assert summary.cycles_per_reference_with_overhead(0) == base
        assert summary.cycles_per_reference_with_overhead(2) == pytest.approx(
            base + 2 * 0.01
        )

    def test_overhead_rejects_negative_q(self):
        counts = _counts({BusOp.MEM_ACCESS: 1}, 10, 1)
        summary = summarize_costs("X", counts, pipelined_bus())
        with pytest.raises(ValueError):
            summary.cycles_per_reference_with_overhead(-1)

    def test_category_fractions_sum_to_one(self):
        counts = _counts(
            {BusOp.MEM_ACCESS: 3, BusOp.WRITE_BACK: 2, BusOp.INVALIDATE: 7},
            500,
            12,
        )
        summary = summarize_costs("X", counts, pipelined_bus())
        assert sum(summary.category_fractions().values()) == pytest.approx(1.0)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError, match="empty run"):
            summarize_costs("X", BusOpCounts(), pipelined_bus())

    def test_zero_transactions_gives_zero_per_transaction(self):
        counts = _counts({}, references=100, transactions=0)
        summary = summarize_costs("X", counts, pipelined_bus())
        assert summary.cycles_per_transaction == 0.0
