"""Unit tests for DiriB (i pointers plus a broadcast bit)."""

import random

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.directory.dirib import Dir1B, DiriB
from repro.protocols.events import Event
from repro.trace.record import AccessType


class TestInvalidationDispatch:
    def test_fanout_within_pointer_budget_is_directed(self):
        proto = DiriB(4, pointers=2)
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.op_count(BusOp.INVALIDATE) == 1
        assert hit.op_count(BusOp.BROADCAST_INVALIDATE) == 0
        assert proto.directed_invalidations == 1

    def test_fanout_beyond_pointers_broadcasts(self):
        proto = DiriB(4, pointers=1)
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5), (0, "w", 5)]
        )
        hit = outcomes[3]
        assert hit.event is Event.WH_BLK_CLEAN
        assert hit.op_count(BusOp.BROADCAST_INVALIDATE) == 1
        assert hit.op_count(BusOp.INVALIDATE) == 0
        assert hit.invalidation_fanout == 2
        assert proto.broadcasts == 1

    def test_fanout_exactly_i_is_directed(self):
        proto = DiriB(4, pointers=2)
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5), (0, "w", 5)]
        )
        hit = outcomes[3]
        assert hit.op_count(BusOp.INVALIDATE) == 2
        assert hit.op_count(BusOp.BROADCAST_INVALIDATE) == 0

    def test_dirty_flush_is_always_directed(self):
        # A dirty block has exactly one copy: the owner pointer suffices.
        proto = DiriB(4, pointers=1)
        outcomes = run_ops(proto, [(1, "w", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_DIRTY
        assert miss.op_count(BusOp.INVALIDATE) == 1
        assert miss.op_count(BusOp.BROADCAST_INVALIDATE) == 0

    def test_rejects_zero_pointers(self):
        with pytest.raises(ValueError):
            DiriB(4, pointers=0)


class TestDir1B:
    def test_is_one_pointer_dirib(self):
        proto = Dir1B(4)
        assert proto.pointers == 1

    def test_single_remote_copy_is_a_directed_invalidate(self):
        # The paper's model: "a single invalidation request is issued if the
        # broadcast bit is clear" — one remote copy fits the pointer.
        proto = Dir1B(4)
        outcomes = run_ops(proto, [(0, "r", 5), (1, "r", 5), (0, "w", 5)])
        hit = outcomes[2]
        assert hit.op_count(BusOp.INVALIDATE) == 1
        assert hit.op_count(BusOp.BROADCAST_INVALIDATE) == 0

    def test_two_remote_copies_broadcast(self):
        proto = Dir1B(4)
        outcomes = run_ops(
            proto, [(1, "r", 5), (2, "r", 5), (0, "w", 5)]
        )
        miss = outcomes[2]
        assert miss.event is Event.WM_BLK_CLEAN
        assert miss.op_count(BusOp.BROADCAST_INVALIDATE) == 1

    def test_storage_bits(self):
        assert Dir1B.directory_bits_per_block(4) == 4  # 2-bit ptr + bcast + dirty
        assert DiriB.directory_bits_per_block(256, pointers=4) == 34


class TestEventEquivalenceWithDir0B:
    """DiriB never restricts copies, so events match Dir0B exactly."""

    @pytest.mark.parametrize("pointers", [1, 2, 4])
    def test_events_match(self, pointers):
        rng = random.Random(31)
        a, b = DiriB(4, pointers=pointers), Dir0B(4)
        for _ in range(4000):
            cache = rng.randrange(4)
            access = rng.choice((AccessType.READ, AccessType.WRITE))
            block = rng.randrange(30)
            assert a.access(cache, access, block).event is b.access(
                cache, access, block
            ).event

    def test_more_pointers_mean_fewer_broadcasts(self):
        rng = random.Random(33)
        ops = [
            (
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(30),
            )
            for _ in range(6000)
        ]

        def broadcasts(pointers):
            proto = DiriB(4, pointers=pointers)
            for op in ops:
                proto.access(*op)
            return proto.broadcasts

        assert broadcasts(1) >= broadcasts(2) >= broadcasts(3)
        assert broadcasts(3) == 0  # 3 pointers cover any remote set of 4 caches

    def test_dir3b_matches_dirnnb_cost_on_four_caches(self):
        """With i = n-1 pointers every invalidation is directed, so DiriB
        collapses to the full map's behaviour."""
        from repro.interconnect.bus import pipelined_bus
        from repro.protocols.directory.dirnnb import DirnNB

        rng = random.Random(35)
        bus = pipelined_bus()
        a, b = DiriB(4, pointers=3), DirnNB(4)
        cost_a = cost_b = 0.0
        for _ in range(5000):
            op = (
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(25),
            )
            out_a, out_b = a.access(*op), b.access(*op)
            cost_a += sum(bus.cost_of(k) * n for k, n in out_a.ops)
            cost_b += sum(bus.cost_of(k) * n for k, n in out_b.ops)
        assert cost_a == cost_b
