"""Unit tests for Dir0B (Archibald & Baer two-bit broadcast directory)."""

import pytest

from conftest import run_ops
from repro.interconnect.bus import BusOp
from repro.protocols.directory.dir0b import Dir0B
from repro.protocols.events import Event


@pytest.fixture
def proto():
    return Dir0B(4)


class TestReads:
    def test_multiple_clean_copies_allowed(self, proto):
        run_ops(proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
        assert proto.sharing.holder_count(5) == 3

    def test_read_miss_clean_comes_from_memory(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_CLEAN
        assert dict(miss.ops) == {
            BusOp.MEM_ACCESS: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert proto.sharing.is_held(5, 1)  # remote copy survives

    def test_read_miss_dirty_flushes_and_both_end_clean(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "r", 5)])
        miss = outcomes[1]
        assert miss.event is Event.RM_BLK_DIRTY
        assert dict(miss.ops) == {
            BusOp.FLUSH_REQUEST: 1,
            BusOp.WRITE_BACK: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert not proto.sharing.is_dirty(5)
        assert proto.sharing.holder_count(5) == 2


class TestWriteHits:
    def test_dirty_write_hit_is_free(self, proto):
        outcomes = run_ops(proto, [(0, "w", 5), (0, "w", 5)])
        assert outcomes[1].event is Event.WH_BLK_DIRTY
        assert outcomes[1].ops == ()

    def test_clean_write_hit_sole_copy_checks_directory_only(self, proto):
        # "Block clean in exactly one cache" obviates the broadcast.
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        hit = outcomes[1]
        assert hit.event is Event.WH_BLK_CLEAN
        assert dict(hit.ops) == {BusOp.DIR_CHECK: 1}
        assert hit.invalidation_fanout == 0

    def test_clean_write_hit_shared_broadcasts(self, proto):
        outcomes = run_ops(
            proto, [(0, "r", 5), (1, "r", 5), (2, "r", 5), (0, "w", 5)]
        )
        hit = outcomes[3]
        assert hit.event is Event.WH_BLK_CLEAN
        assert dict(hit.ops) == {
            BusOp.DIR_CHECK: 1,
            BusOp.BROADCAST_INVALIDATE: 1,
        }
        assert hit.invalidation_fanout == 2
        assert proto.sharing.holders(5) == 0b0001
        assert proto.sharing.is_dirty_in(5, 0)

    def test_directory_check_is_standalone_not_overlapped(self, proto):
        # A write hit performs no memory access, so the check costs a cycle.
        outcomes = run_ops(proto, [(0, "r", 5), (0, "w", 5)])
        assert (BusOp.DIR_CHECK, 1) in outcomes[1].ops


class TestWriteMisses:
    def test_write_miss_clean_remote(self, proto):
        outcomes = run_ops(proto, [(1, "r", 5), (2, "r", 5), (0, "w", 5)])
        miss = outcomes[2]
        assert miss.event is Event.WM_BLK_CLEAN
        assert dict(miss.ops) == {
            BusOp.MEM_ACCESS: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
            BusOp.BROADCAST_INVALIDATE: 1,
        }
        assert miss.invalidation_fanout == 2
        assert proto.sharing.is_dirty_in(5, 0)
        assert proto.sharing.holder_count(5) == 1

    def test_write_miss_dirty_remote_snarfs_writeback(self, proto):
        outcomes = run_ops(proto, [(1, "w", 5), (0, "w", 5)])
        miss = outcomes[1]
        assert miss.event is Event.WM_BLK_DIRTY
        assert dict(miss.ops) == {
            BusOp.FLUSH_REQUEST: 1,
            BusOp.WRITE_BACK: 1,
            BusOp.INVALIDATE: 1,
            BusOp.DIR_CHECK_OVERLAPPED: 1,
        }
        assert miss.invalidation_fanout is None  # not a write-to-clean event
        assert proto.sharing.is_dirty_in(5, 0)

    def test_first_write_installs_dirty_for_free(self, proto):
        (outcome,) = run_ops(proto, [(0, "w", 5)])
        assert outcome.event is Event.WM_FIRST_REF
        assert outcome.ops == ()
        assert proto.sharing.is_dirty_in(5, 0)


class TestInvariants:
    def test_single_writer(self, proto):
        import random

        from repro.trace.record import AccessType

        rng = random.Random(5)
        for _ in range(3000):
            proto.access(
                rng.randrange(4),
                rng.choice((AccessType.READ, AccessType.WRITE)),
                rng.randrange(30),
            )
        proto.sharing.check_invariants()
        for block in range(30):
            if proto.sharing.is_dirty(block):
                assert proto.sharing.holder_count(block) == 1

    def test_directory_bits_constant(self):
        assert Dir0B.directory_bits_per_block(4) == 2
        assert Dir0B.directory_bits_per_block(1024) == 2
